//! Cross-crate physics integration: trajectories, conservation laws and
//! algorithmic agreement across every force backend.

use gpu_kernels::force::OptLevel;
use gpu_sim::DriverModel;
use gravit_app::backend::Backend;
use gravit_app::config::{Integrator, SimConfig, SpawnKind};
use gravit_app::sim::Simulation;
use nbody::barnes_hut::Octree;
use nbody::direct::accelerations;
use nbody::energy::{angular_momentum, total_energy};
use nbody::model::ForceParams;
use nbody::spawn;

fn config(n: usize, backend: Backend) -> SimConfig {
    SimConfig {
        n,
        spawn: SpawnKind::DiskGalaxy { radius: 4.0 },
        seed: 77,
        dt: 0.002,
        integrator: Integrator::Leapfrog,
        backend,
        ..SimConfig::default()
    }
}

/// A multi-step trajectory on the simulated GPU (full optimization) is
/// bit-identical to the serial CPU trajectory: the whole optimization ladder
/// is semantics-preserving, end to end, over time.
#[test]
fn ten_step_trajectory_identical_cpu_vs_optimized_gpu() {
    let mut cpu = Simulation::new(config(384, Backend::CpuSerial)).unwrap();
    let mut gpu = Simulation::new(config(
        384,
        Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda22,
        },
    ))
    .unwrap();
    for _ in 0..10 {
        cpu.step().unwrap();
        gpu.step().unwrap();
    }
    assert_eq!(cpu.bodies, gpu.bodies);
    assert_eq!(cpu.accels, gpu.accels);
}

/// Energy and angular momentum stay bounded for a disk under leapfrog, on
/// both a CPU and a GPU backend.
#[test]
fn conservation_laws_hold_across_backends() {
    for backend in [
        Backend::CpuParallel,
        Backend::GpuSim {
            level: OptLevel::SoAoaS,
            driver: DriverModel::Cuda10,
        },
    ] {
        let mut sim = Simulation::new(config(256, backend)).unwrap();
        let l0 = angular_momentum(&sim.bodies);
        sim.run(150).unwrap();
        let l1 = angular_momentum(&sim.bodies);
        assert!(
            sim.energy_drift() < 0.05,
            "{}: drift {}",
            backend.label(),
            sim.energy_drift()
        );
        let scale = l0.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1e-9);
        for k in 0..3 {
            assert!(
                (l1[k] - l0[k]).abs() < 0.05 * scale,
                "{}: angular momentum component {k} drifted {} -> {}",
                backend.label(),
                l0[k],
                l1[k]
            );
        }
    }
}

/// Barnes–Hut with a tight θ tracks the direct sum through an actual
/// simulation (not just a single force evaluation).
#[test]
fn barnes_hut_trajectory_tracks_direct() {
    let mut exact = Simulation::new(config(300, Backend::CpuSerial)).unwrap();
    let mut tree = Simulation::new(config(300, Backend::BarnesHut { theta: 0.25 })).unwrap();
    exact.run(20).unwrap();
    tree.run(20).unwrap();
    let mut max_err = 0.0f32;
    for i in 0..exact.bodies.len() {
        let d = exact.bodies.pos[i].distance(tree.bodies.pos[i]);
        max_err = max_err.max(d);
    }
    assert!(max_err < 0.05, "trajectories diverged by {max_err}");
}

/// The tree's bulk properties match the direct solver's inputs at scale.
#[test]
fn octree_scales_logarithmically() {
    let small = spawn::plummer(1_000, 1.0, 1.0, 5);
    let large = spawn::plummer(16_000, 1.0, 1.0, 5);
    let ts = Octree::build(&small);
    let tl = Octree::build(&large);
    // Depth grows slowly (log-ish), node count roughly linearly.
    assert!(
        tl.depth() <= ts.depth() + 6,
        "depth {} vs {}",
        tl.depth(),
        ts.depth()
    );
    assert!(tl.n_nodes() < 16 * ts.n_nodes());
    assert!((tl.root_mass() - 1.0).abs() < 1e-2);
}

/// The energy of a spawned system is negative (bound) for the self-
/// gravitating workloads — a sanity property of the generators + force law.
#[test]
fn spawned_systems_are_gravitationally_bound() {
    let fp = ForceParams::default();
    for (name, bodies) in [
        ("ball", spawn::uniform_ball(500, 2.0, 5.0, 3)),
        ("plummer", spawn::plummer(500, 0.5, 5.0, 3)),
    ] {
        let e = total_energy(&bodies, &fp);
        assert!(e < 0.0, "{name}: total energy {e} not bound");
        // And the direct solver pulls everything inward on average.
        let acc = accelerations(&bodies, &fp);
        let inward = (0..bodies.len())
            .filter(|&i| acc[i].dot(bodies.pos[i]) < 0.0)
            .count();
        assert!(
            inward * 10 > bodies.len() * 8,
            "{name}: only {inward} inward accelerations"
        );
    }
}
