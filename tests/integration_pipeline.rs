//! Integration of the optimization pipeline with the experiment harness:
//! the paper's headline claims, asserted end to end as *shape* invariants
//! (see EXPERIMENTS.md for the measured-vs-paper tables).

use bench::gravit_harness::model_frame;
use bench::membench_harness::{fig11_speedups, run_membench};
use bench::tables::{occupancy_ladder, unroll_sweep};
use gpu_kernels::force::OptLevel;
use gpu_sim::DriverModel;
use particle_layouts::Layout;

/// Fig. 10/11 shape: under every driver, the paper's ordering holds —
/// unoptimized slowest, SoAoaS fastest, SoA strictly between.
#[test]
fn fig10_shape_holds_under_every_driver() {
    for driver in DriverModel::ALL {
        let unopt = run_membench(Layout::Unopt, driver).avg_cycles_per_read;
        let soa = run_membench(Layout::SoA, driver).avg_cycles_per_read;
        let aoas = run_membench(Layout::AoaS, driver).avg_cycles_per_read;
        let soaoas = run_membench(Layout::SoAoaS, driver).avg_cycles_per_read;
        assert!(soa < unopt, "{driver}: SoA {soa} !< unopt {unopt}");
        assert!(
            aoas < soa,
            "{driver}: AoaS {aoas} !< SoA {soa} (alignment beats pure coalescing)"
        );
        assert!(soaoas < aoas, "{driver}: SoAoaS {soaoas} !< AoaS {aoas}");
    }
}

/// The CUDA 1.1 anomaly (paper Sec. III-A): the gap between the unoptimized
/// and optimized layouts shrinks markedly versus CUDA 1.0.
#[test]
fn cuda11_flattens_the_unoptimized_penalty() {
    let sweep: Vec<_> = DriverModel::ALL
        .iter()
        .flat_map(|&d| Layout::ALL.map(|l| run_membench(l, d)))
        .collect();
    let ratio = |d: DriverModel| {
        let get = |l: Layout| {
            sweep
                .iter()
                .find(|r| r.driver == d && r.layout == l)
                .unwrap()
                .avg_cycles_per_read
        };
        get(Layout::Unopt) / get(Layout::SoAoaS)
    };
    assert!(
        ratio(DriverModel::Cuda11) < ratio(DriverModel::Cuda10),
        "CUDA 1.1 should compress the spread: {} vs {}",
        ratio(DriverModel::Cuda11),
        ratio(DriverModel::Cuda10)
    );
    // The sharper 1.1 signature: coalescing alone (SoA) stops paying — its
    // speedup collapses toward 1 while the vector layouts keep theirs
    // ("the impact on the performance has a completely different pattern").
    let sp = fig11_speedups(&sweep);
    let gain = |d: DriverModel, l: Layout| {
        sp.iter()
            .find(|(dd, ll, _)| *dd == d && *ll == l)
            .unwrap()
            .2
    };
    assert!(
        gain(DriverModel::Cuda11, Layout::SoA) < 0.6 * gain(DriverModel::Cuda10, Layout::SoA)
            || gain(DriverModel::Cuda11, Layout::SoA) < 1.15,
        "SoA's advantage should flatten under CUDA 1.1"
    );
    // Fig. 11 companion: speedups are > 1 everywhere.
    assert!(sp.iter().all(|(_, _, s)| *s > 1.0));
}

/// Sec. IV-A: the unroll ladder's instruction reduction sits in the paper's
/// band and the register ladder is exactly 18 → 17 (+ICM → 16).
#[test]
fn unroll_and_register_ladders_match_paper() {
    let rows = unroll_sweep(128 * 256);
    let rolled = &rows[0];
    let full = rows.last().unwrap();
    assert_eq!(rolled.regs, 18);
    assert_eq!(full.regs, 17);
    let reduction = 1.0 - full.instrs_per_element / rolled.instrs_per_element;
    assert!((0.15..0.25).contains(&reduction), "reduction {reduction}");

    let ladder = occupancy_ladder();
    assert_eq!(
        ladder.iter().map(|r| r.regs).collect::<Vec<_>>(),
        vec![18, 17, 16, 16],
        "the paper's register story"
    );
    assert_eq!(ladder.last().unwrap().warps, 16, "67% of 24 warps");
}

/// Fig. 12 / abstract: the full optimization ladder is worth ≈ 1.27× over the
/// baseline GPU port, dominated by the unroll step, with layout steps small.
#[test]
fn fig12_speedup_decomposition() {
    let n = 200_000;
    let t = |lvl: OptLevel| model_frame(lvl, n, DriverModel::Cuda10).total_s();
    let base = t(OptLevel::Baseline);
    let soaoas = t(OptLevel::SoAoaS);
    let unrolled = t(OptLevel::SoAoaSUnrolled);
    let full = t(OptLevel::Full);

    let layout_gain = base / soaoas;
    let unroll_gain = soaoas / unrolled;
    let occ_gain = unrolled / full;
    let total = base / full;

    assert!(
        (1.0..1.10).contains(&layout_gain),
        "layout gain {layout_gain} (paper: a few %)"
    );
    assert!(
        (1.10..1.30).contains(&unroll_gain),
        "unroll gain {unroll_gain} (paper: ~18%)"
    );
    assert!(
        (1.0..1.12).contains(&occ_gain),
        "occupancy gain {occ_gain} (paper: ~6%)"
    );
    assert!(
        (1.15..1.40).contains(&total),
        "total {total} (paper: 1.27x)"
    );
}

/// Frame time is transfer-bound at small N and kernel-bound at large N; the
/// kernel share must dominate at the paper's sizes.
#[test]
fn kernel_dominates_transfers_at_paper_sizes() {
    let p = model_frame(OptLevel::Full, 40_000, DriverModel::Cuda10);
    assert!(p.kernel_s > 10.0 * (p.upload_s + p.download_s));
}
