//! Cross-crate integration: layouts × kernels × the simulated GPU.
//!
//! These tests exercise the full path a downstream user takes — declare a
//! schema, get a layout, build kernels over device images, execute them —
//! and pin the cross-crate contracts the reproduction rests on.

use gpu_kernels::force::{build_force_kernel, force_params, ForceKernelConfig};
use gpu_kernels::membench::{build_membench_kernel, MembenchConfig};
use gpu_sim::exec::functional::run_grid;
use gpu_sim::exec::timed::time_resident;
use gpu_sim::ir::count::dynamic_instructions;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
use gravit_core::layout_advisor::{optimize_layout, StructSchema};
use nbody::direct::accelerations_tiled;
use nbody::model::ForceParams;
use nbody::spawn;
use particle_layouts::device::{alloc_accel_out, download_accels};
use particle_layouts::{DeviceImage, Layout, Particle};

/// The layout advisor's output for the Gravit particle must agree with the
/// hand-built SoAoaS layout the kernels use.
#[test]
fn advisor_and_layout_crate_agree_on_soaoas() {
    let plan = optimize_layout(&StructSchema::gravit_particle());
    // Two groups of 4 words = the PosMass4 + Velocity4 buffers.
    let buffers = Layout::SoAoaS.buffers();
    assert_eq!(plan.groups.len(), buffers.len());
    for (g, b) in plan.groups.iter().zip(&buffers) {
        assert_eq!(g.padded_words as u64 * 4, b.stride());
    }
    // And the advisor's transaction prediction matches the coalescer's count
    // for the real layout (Figs. 3 vs 9).
    let analysis = particle_layouts::streams::analyze_layout(Layout::SoAoaS, DriverModel::Cuda10);
    assert_eq!(plan.optimized_transactions as usize, analysis.transactions);
}

/// Functional execution of the force kernel across every layout must equal
/// the CPU tiled reference bit-for-bit — including through upload/download.
#[test]
fn end_to_end_force_matches_cpu_for_all_layouts_and_blocks() {
    let bodies = spawn::colliding_galaxies(150, 15.0, 0.3, 8); // 300 bodies
    let fp = ForceParams {
        g: 1.0,
        softening: 0.05,
    };
    for layout in Layout::ALL {
        for block in [64u32, 128] {
            let cfg = ForceKernelConfig {
                layout,
                block,
                unroll: 1,
                icm: false,
            };
            let kernel = build_force_kernel(cfg);
            let mut gmem = GlobalMemory::new(32 << 20);
            let ps: Vec<Particle> = (0..bodies.len())
                .map(|i| Particle {
                    pos: bodies.pos[i],
                    vel: bodies.vel[i],
                    mass: bodies.mass[i],
                })
                .collect();
            let img = DeviceImage::upload(&mut gmem, layout, &ps, block).unwrap();
            let out = alloc_accel_out(&mut gmem, img.padded_n).unwrap();
            let params = force_params(&img, out, fp.softening);
            run_grid(&kernel, img.padded_n / block, block, &params, &mut gmem).unwrap();
            let gpu = download_accels(&gmem, out, img.n).unwrap();
            // CPU sums in the same (padded, ascending) order; padding is
            // zero-mass so the unpadded tiled sum matches exactly.
            let cpu = accelerations_tiled(&bodies, &fp, block as usize);
            assert_eq!(cpu, gpu, "{layout} block {block}");
        }
    }
}

/// The membench kernel must be *timeable* under every driver and produce
/// non-trivial deltas that order the layouts as Fig. 10 does.
#[test]
fn membench_orders_layouts_under_every_driver() {
    let dev = DeviceConfig::g8800gtx();
    for driver in DriverModel::ALL {
        let tp = TimingParams::for_driver(driver);
        let mut worst = 0.0f64;
        let mut best = f64::INFINITY;
        let mut unopt = 0.0f64;
        let mut soaoas = 0.0f64;
        for layout in Layout::ALL {
            let cfg = MembenchConfig { layout, iters: 8 };
            let kernel = build_membench_kernel(cfg);
            let n = cfg.particles_needed(1, 128) as usize;
            let ps: Vec<Particle> = (0..n).map(|_| Particle::SENTINEL).collect();
            let mut gmem = GlobalMemory::new(64 << 20);
            let img = DeviceImage::upload(&mut gmem, layout, &ps, 128).unwrap();
            let out_delta = gmem.alloc(128 * 4).unwrap();
            let out_sum = gmem.alloc(128 * 4).unwrap();
            let mut params = img.base_params();
            params.push(out_delta.0 as u32);
            params.push(out_sum.0 as u32);
            let run = time_resident(&kernel, &[0], 128, 1, &params, &mut gmem, &dev, driver, &tp)
                .unwrap();
            let cycles = run.cycles as f64;
            worst = worst.max(cycles);
            best = best.min(cycles);
            if layout == Layout::Unopt {
                unopt = cycles;
            }
            if layout == Layout::SoAoaS {
                soaoas = cycles;
            }
        }
        assert!(soaoas < unopt, "{driver}: SoAoaS must beat unopt");
        assert!(
            worst / best > 1.05,
            "{driver}: layouts must be distinguishable"
        );
    }
}

/// Instruction counts must be consistent between the structured counter and
/// the timed executor's issued-instruction tally (same kernel, same work).
#[test]
fn static_count_matches_executed_instructions() {
    let cfg = ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 64,
        unroll: 1,
        icm: false,
    };
    let kernel = build_force_kernel(cfg);
    let n = 128u32; // 2 tiles
    let ps: Vec<Particle> = (0..n)
        .map(|i| Particle {
            pos: simcore::Vec3::splat(i as f32),
            vel: simcore::Vec3::ZERO,
            mass: 1.0,
        })
        .collect();
    let mut gmem = GlobalMemory::new(8 << 20);
    let img = DeviceImage::upload(&mut gmem, Layout::SoAoaS, &ps, 64).unwrap();
    let out = alloc_accel_out(&mut gmem, img.padded_n).unwrap();
    let params = force_params(&img, out, 0.05);
    let run = run_grid(&kernel, 2, 64, &params, &mut gmem).unwrap();
    // Counter counts per-thread; executor counts per-warp. One block has 2
    // warps, grid has 2 blocks → 4 warps; every warp executes the same
    // uniform stream. (Thread 0's tile-loop trip count applies to all.)
    let per_thread = dynamic_instructions(&kernel, &params).unwrap();
    assert_eq!(run.warp_instructions, per_thread * 4);
}
