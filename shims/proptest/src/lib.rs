//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use — `proptest!`, `prop_assert!`, `prop_oneof!`, ranges, `Just`,
//! `any`, `collection::vec`, `option::of`, `prop_map` — sampled by a
//! deterministic SplitMix64 generator. No shrinking: a failing case reports
//! its inputs via the case seed instead. Semantics match real proptest
//! closely enough that swapping the real crate back is a Cargo.toml change.

// Vendored offline stand-in: lint cleanliness is not meaningful here.
#![allow(clippy::all)]
pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Sample one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f` (resamples, bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Box a strategy, erasing its concrete type (drives inference in
    /// `prop_oneof!` better than an `as` cast).
    pub fn boxed_strategy<T, S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
        Box::new(s)
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// `prop_filter` combinator.
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from boxed alternatives (at least one).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo + 1;
                    (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D) (0 A, 1 B, 2 C, 3 D, 4 E) (0 A, 1 B, 2 C, 3 D, 4 E, 5 F));
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            ((rng.next_f64() - 0.5) * 2e9) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_f64() - 0.5) * 2e18
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>` (~10% `None`, mirrors proptest's default).
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy (mirrors `proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 10 == 0 {
                None
            } else {
                Some(self.0.gen_value(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded generator (same seed ⇒ same case).
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// `prop::` path alias used by some proptest idioms.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// `cases` times with deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(
                        case ^ 0xd6e8_feb8_6659_fd93u64.wrapping_mul(case + 1),
                    );
                    #[allow(unused_parens, unused_mut)]
                    let ( $($pat),+ ) = (
                        $( $crate::strategy::Strategy::gen_value(&($strat), &mut rng) ),+
                    );
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = result {
                        panic!("proptest `{}` failed at case {}: {}", stringify!($name), case, message);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside `proptest!`, reporting the failing case instead of panicking
/// mid-sample.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(left == right) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
                        stringify!($a), stringify!($b), left, right, file!(), line!()
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(left == right) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: {} == {} (left: {:?}, right: {:?}) — {} ({}:{})",
                        stringify!($a), stringify!($b), left, right, format!($($fmt)+), file!(), line!()
                    ));
                }
            }
        }
    };
}

/// Inequality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if left == right {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: {} != {} (both: {:?}) ({}:{})",
                        stringify!($a),
                        stringify!($b),
                        left,
                        file!(),
                        line!()
                    ));
                }
            }
        }
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_strategy($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.0f64..2.0, z in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u64..100, 1..8),
                               choice in prop_oneof![Just(1u32), Just(2)],
                               mapped in (0u32..5).prop_map(|x| x * 10)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(choice == 1 || choice == 2);
            prop_assert_eq!(mapped % 10, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
