//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! parallel-iterator *API* the workspace uses (`into_par_iter`, `par_iter`,
//! `par_iter_mut`) backed by ordinary sequential iterators. Results are
//! identical to real rayon for the deterministic map/collect pipelines this
//! repo runs — rayon's contribution is wall-clock speed, not semantics — so
//! swapping the real crate back in later is a Cargo.toml-only change.

// Vendored offline stand-in: lint cleanliness is not meaningful here.
#![allow(clippy::all)]
pub mod prelude {
    /// `into_par_iter()` for any owning iterable (ranges, vectors, ...).
    pub trait IntoParallelIterator {
        /// The underlying iterator type.
        type Iter;
        /// Sequential stand-in for rayon's `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter()` over a borrowed collection.
    pub trait IntoParallelRefIterator<'a> {
        /// The underlying iterator type.
        type Iter;
        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Iter = <&'a T as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` over a mutably borrowed collection.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The underlying iterator type.
        type Iter;
        /// Sequential stand-in for rayon's `par_iter_mut`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Iter = <&'a mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Run two closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_pipelines_match_sequential() {
        let squares: Vec<u64> = (0u64..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[99], 99 * 99);
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let mut w = vec![1u32, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(w, vec![11, 12, 13]);
    }
}
