//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment is offline). Supports the shapes this workspace uses:
//! unit/tuple/named structs and enums whose variants are unit, tuple, or
//! struct-like. Generic types are intentionally rejected.

// Vendored offline stand-in: lint cleanliness is not meaningful here.
#![allow(clippy::all)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parse the item into (type name, shape), panicking with a clear message on
/// anything this stub does not support.
fn parse(input: TokenStream) -> (String, Shape) {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility.
    let kind = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // pub / crate / etc.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next(); // pub(crate)
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("serde stub derive: no struct/enum found"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` not supported");
        }
    }
    if kind == "struct" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
            other => panic!("serde stub derive: unsupported struct body {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("serde stub derive: expected enum body, got {other:?}"),
        }
    }
}

/// Field names of a `{ a: T, b: U }` body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip attrs + visibility, then read the field name.
        let name = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde stub derive: unexpected token in fields: {other:?}"),
                None => return fields,
            }
        };
        fields.push(name);
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Number of fields in a `(T, U, ...)` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut seen_any = false;
    let mut angle = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => n += 1,
            _ => seen_any = true,
        }
    }
    if seen_any {
        n + 1
    } else {
        n
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        let name = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => panic!("serde stub derive: unexpected token in enum: {other:?}"),
                None => return variants,
            }
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                it.next();
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                it.next();
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`); serialization uses the
        // variant name, matching serde's behavior for unit variants.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '=' {
                for tt in it.by_ref() {
                    if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
        }
        variants.push(Variant { name, fields });
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("{name}::{vn} => serde::Value::Str({vn:?}.to_string()),")
                        }
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::Value::Map(vec![({vn:?}.to_string(), \
                             serde::Serialize::to_value(x0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({b}) => serde::Value::Map(vec![({vn:?}.to_string(), \
                                 serde::Value::Seq(vec![{e}]))]),",
                                b = binds.join(", "),
                                e = elems.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Map(vec![\
                                 ({vn:?}.to_string(), serde::Value::Map(vec![{e}]))]),",
                                e = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("serde stub derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::TupleStruct(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::seq_elem(s, {i})?"))
                .collect();
            format!(
                "match v {{ serde::Value::Seq(s) => Ok({name}({e})), _ => \
                 Err(serde::DeError::custom(format!(\"expected sequence for {name}, got \
                 {{v:?}}\"))) }}",
                e = elems.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::field(m, {f:?})?"))
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| serde::DeError::custom(format!(\"expected map \
                 for {name}, got {{v:?}}\")))?; Ok({name} {{ {i} }})",
                i = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(pv)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::seq_elem(s, {i})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => match pv {{ serde::Value::Seq(s) => \
                                 Ok({name}::{vn}({e})), _ => Err(serde::DeError::custom(\
                                 \"expected sequence payload\")) }},",
                                e = elems.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: serde::field(pm, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let pm = pv.as_map().ok_or_else(|| \
                                 serde::DeError::custom(\"expected map payload\"))?; \
                                 Ok({name}::{vn} {{ {i} }}) }},",
                                i = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                 serde::Value::Str(s) => match s.as_str() {{ {unit} _ => \
                 Err(serde::DeError::custom(format!(\"unknown variant {{s}} of {name}\"))) }}, \
                 serde::Value::Map(m) if m.len() == 1 => {{ let (k, pv) = &m[0]; match \
                 k.as_str() {{ {data} _ => Err(serde::DeError::custom(format!(\"unknown variant \
                 {{k}} of {name}\"))) }} }}, \
                 _ => Err(serde::DeError::custom(format!(\"expected variant of {name}, got \
                 {{v:?}}\"))) }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{ fn from_value(v: &serde::Value) -> \
         Result<Self, serde::DeError> {{ {body} }} }}"
    )
    .parse()
    .expect("serde stub derive: generated Deserialize impl parses")
}
