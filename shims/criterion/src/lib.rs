//! Offline stand-in for `criterion`.
//!
//! Supports the benchmark-definition surface this workspace uses
//! (`criterion_group!`, `criterion_main!`, benchmark groups, throughput,
//! `bench_with_input`). Instead of statistical sampling it runs each
//! benchmark body a handful of times and prints the best wall time — enough
//! to compare layouts locally while the real crate is unavailable.

// Vendored offline stand-in: lint cleanliness is not meaningful here.
#![allow(clippy::all)]
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {}
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            best: Duration::MAX,
        };
        f(&mut b);
        println!("  {name}: {:?}", b.best);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub ignores warm-up tuning.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores measurement tuning.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores throughput labels.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` against one prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            best: Duration::MAX,
        };
        f(&mut b, input);
        println!("  {}: {:?}", id.0, b.best);
        self
    }

    /// Benchmark a function with no prepared input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            best: Duration::MAX,
        };
        f(&mut b);
        println!("  {name}: {:?}", b.best);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Work-rate label for a benchmark.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs the measured body.
pub struct Bencher {
    best: Duration,
}

impl Bencher {
    /// Measure `f`, keeping the best of a few runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
