//! Offline stand-in for `serde_json`: prints and parses the vendored serde
//! [`Value`] model as JSON.

// Vendored offline stand-in: lint cleanliness is not meaningful here.
#![allow(clippy::all)]
pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats (serde_json prints 1.0).
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => write_block(
            items.iter().map(|x| (None, x)),
            indent,
            depth,
            '[',
            ']',
            out,
        ),
        Value::Map(entries) => write_block(
            entries.iter().map(|(k, x)| (Some(k.as_str()), x)),
            indent,
            depth,
            '{',
            '}',
            out,
        ),
    }
}

fn write_block<'a>(
    items: impl ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    out: &mut String,
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, (key, v)) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        if let Some(k) = key {
            write_json_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_value(v, indent, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    entries.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad float {text}: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad int {text}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(128)),
            (
                "b".into(),
                Value::Seq(vec![Value::Float(1.5), Value::Str("x\"y".into())]),
            ),
            ("c".into(), Value::Null),
            ("d".into(), Value::Bool(true)),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\": 128"));
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn float_stays_float() {
        let s = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<Value>(&s).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn index_and_accessors() {
        let v: Value = from_str(r#"{"n": 3, "xs": [1, 2.5, "s"]}"#).unwrap();
        assert_eq!(v["n"], 3);
        assert_eq!(v["xs"].as_array().unwrap().len(), 3);
        assert_eq!(v["xs"][1].as_f64(), Some(2.5));
        assert_eq!(v["xs"][2].as_str(), Some("s"));
        assert_eq!(v["missing"], Value::Null);
    }
}
