//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serialization substrate with the same surface the repo uses:
//! `Serialize`/`Deserialize` traits, `#[derive(Serialize, Deserialize)]`, and
//! a self-describing [`Value`] tree that `serde_json` (also vendored) prints
//! and parses. It is not wire-compatible with real serde beyond JSON objects
//! for structs, strings for unit enum variants, and externally-tagged maps
//! for data-carrying variants — which is exactly what the repo relies on.

// Vendored offline stand-in: lint cleanliness is not meaningful here.
#![allow(clippy::all)]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (covers u64 and i64).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer contents as u64, if non-negative and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Integer contents as i64, if in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Boolean contents.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Map lookup by key (None if not a map or key absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(i) if *i == *other as i128)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Value`].
pub trait Serialize {
    /// Convert to the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the self-describing value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by the derive expansion ----

/// Look up a struct field by name; a missing field deserializes from `Null`
/// (so `Option` fields tolerate omission).
pub fn field<T: Deserialize>(m: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match m.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

/// Sequence element at `i`, required.
pub fn seq_elem<T: Deserialize>(s: &[Value], i: usize) -> Result<T, DeError> {
    let v = s
        .get(i)
        .ok_or_else(|| DeError(format!("missing tuple element {i}")))?;
    T::from_value(v).map_err(|e| DeError(format!("tuple element {i}: {e}")))
}

// ---- primitive impls ----

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError(format!("expected integer, got {v:?}"))),
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::Float(f) => Ok(*f as $t),
                    _ => Err(DeError(format!("expected number, got {v:?}"))),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(DeError(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_value(v)?;
        let n = vec.len();
        vec.try_into()
            .map_err(|_| DeError(format!("expected array of {N}, got {n} elements")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(s) => Ok(($(seq_elem::<$t>(s, $n)?,)+)),
                    _ => Err(DeError(format!("expected tuple sequence, got {v:?}"))),
                }
            }
        }
    )*};
}
ser_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
