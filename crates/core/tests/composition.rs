//! Pass-composition validation (Sec. IV-A ordering): both orders of
//! LICM ∘ unroll are *proved* equivalent to the rolled kernel, and the
//! advisor's licm-before-unroll preference is grounded in the register
//! ladder the paper exploits — 18 regs rolled, 17 after a bare full unroll,
//! 16 when invariants are hoisted first (the 17→16 occupancy trick).

use gpu_kernels::force::{build_force_kernel, ForceKernelConfig};
use gpu_sim::analyze::verify::{verify_pass, PassId, VerifyConfig};
use gpu_sim::ir::passes::{licm, unroll_innermost};
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::DeviceConfig;
use gravit_core::unroll_advisor::advise_unroll;
use particle_layouts::Layout;

fn regs(unroll: u32, icm: bool) -> u16 {
    let k = build_force_kernel(ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 128,
        unroll,
        icm,
    });
    register_demand(&k).regs_per_thread
}

#[test]
fn the_register_ladder_is_18_17_16() {
    assert_eq!(regs(1, false), 18, "rolled baseline");
    assert_eq!(regs(128, false), 17, "full unroll drops the loop counter");
    assert_eq!(
        regs(128, true),
        16,
        "hoisting before unrolling frees one more"
    );
}

#[test]
fn licm_before_unroll_needs_fewer_registers_than_after() {
    let base = build_force_kernel(ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 128,
        unroll: 1,
        icm: false,
    });
    let licm_first = unroll_innermost(&licm(&base), 128);
    let unroll_first = licm(&unroll_innermost(&base, 128));
    assert_eq!(register_demand(&licm_first).regs_per_thread, 16);
    assert_eq!(register_demand(&unroll_first).regs_per_thread, 17);
}

#[test]
fn both_composition_orders_are_proved_equivalent() {
    let cfg = ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 32,
        unroll: 1,
        icm: false,
    };
    let k = build_force_kernel(cfg);
    let mut params: Vec<u32> = (0..cfg.layout.buffers().len() as u32)
        .map(|i| 0x1_0000 * (i + 1))
        .collect();
    params.push(0x20_0000); // out
    params.push(64); // n = grid * block
    params.push(0.5f32.to_bits()); // eps
    params.push(0); // smem0
    let vcfg = VerifyConfig::new(2, 32, params);
    for pass in [PassId::LicmThenUnroll(32), PassId::UnrollThenLicm(32)] {
        let r = verify_pass(&k, pass, &vcfg);
        assert!(r.is_proved(), "{}: {r}", pass.label());
    }
}

#[test]
fn the_advisor_recommends_licm_plus_full_unroll() {
    let dev = DeviceConfig::g8800gtx();
    let with_icm = advise_unroll(&dev, Layout::SoAoaS, 128, true);
    let without = advise_unroll(&dev, Layout::SoAoaS, 128, false);
    assert_eq!(with_icm.best().factor, 128);
    assert_eq!(
        with_icm.best().regs,
        16,
        "licm-first reaches the 16-reg point"
    );
    assert_eq!(without.best().regs, 17, "unroll alone stops at 17");
    assert!(
        with_icm.best().occupancy.active_warps >= without.best().occupancy.active_warps,
        "the freed register must never cost occupancy"
    );
}
