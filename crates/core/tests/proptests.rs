//! Property-based tests for the layout advisor (the paper's 3-step
//! procedure) over arbitrary struct schemas.

use gravit_core::layout_advisor::{optimize_layout, AccessFreq, FieldSpec, StructSchema};
use proptest::prelude::*;

fn schema_strategy() -> impl Strategy<Value = StructSchema> {
    proptest::collection::vec(
        (
            1u32..=4,
            prop_oneof![
                Just(AccessFreq::Hot),
                Just(AccessFreq::Warm),
                Just(AccessFreq::Cold)
            ],
        ),
        1..24,
    )
    .prop_map(|fields| {
        StructSchema::new(
            fields
                .into_iter()
                .enumerate()
                .map(|(i, (w, f))| FieldSpec::wide(format!("f{i}"), w, f))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Step-2 invariants: every bin is alignable (1/2/4 words), never
    /// overfull, and every field is placed exactly once.
    #[test]
    fn bins_are_wellformed(schema in schema_strategy()) {
        let plan = optimize_layout(&schema);
        let mut placed: Vec<usize> = Vec::new();
        for g in &plan.groups {
            prop_assert!(matches!(g.padded_words, 1 | 2 | 4));
            prop_assert!(g.used_words <= g.padded_words);
            prop_assert!(g.used_words > 0);
            let sum: u32 = g.fields.iter().map(|&i| schema.fields[i].words).sum();
            prop_assert_eq!(sum, g.used_words);
            placed.extend(&g.fields);
        }
        placed.sort_unstable();
        let expect: Vec<usize> = (0..schema.fields.len()).collect();
        prop_assert_eq!(placed, expect);
    }

    /// Step-1 invariant: access-frequency classes never share a bin.
    #[test]
    fn frequencies_never_mix(schema in schema_strategy()) {
        let plan = optimize_layout(&schema);
        for g in &plan.groups {
            prop_assert!(g.fields.iter().all(|&i| schema.fields[i].freq == g.freq));
        }
    }

    /// The optimized layout never issues more transactions than the packed
    /// baseline.
    #[test]
    fn optimization_never_hurts(schema in schema_strategy()) {
        let plan = optimize_layout(&schema);
        prop_assert!(plan.optimized_transactions <= plan.baseline_transactions);
        prop_assert!(plan.transaction_improvement() >= 1.0);
        // Padding never exceeds 3 words per bin.
        prop_assert!(plan.padding_overhead() <= 3.0);
    }

    /// Idempotence: planning the same schema twice gives the same plan.
    #[test]
    fn planning_is_deterministic(schema in schema_strategy()) {
        prop_assert_eq!(optimize_layout(&schema), optimize_layout(&schema));
    }
}
