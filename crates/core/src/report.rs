//! A machine-readable optimization report.
//!
//! Bundles everything the paper's procedure produces for a given struct
//! schema and kernel shape — the layout plan, the unroll analysis, the
//! occupancy ladder — into one serializable structure, so downstream tooling
//! (CI dashboards, the `gravit report` subcommand) can consume the advisor
//! without re-running the analyses.

use crate::layout_advisor::{optimize_layout, LayoutPlan, StructSchema};
use crate::pipeline::optimization_ladder;
use crate::unroll_advisor::advise_unroll;
use gpu_sim::{DeviceConfig, DriverModel};
use particle_layouts::Layout;
use serde::Serialize;

/// One evaluated unroll factor, serialization-friendly.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct UnrollRow {
    /// The factor.
    pub factor: u32,
    /// Instructions per inner element.
    pub instrs_per_element: f64,
    /// Eq. 3 predicted speedup over rolled.
    pub eq3_speedup: f64,
    /// Registers per thread.
    pub regs: u16,
    /// Occupancy percent.
    pub occupancy_pct: f64,
}

/// One optimization-ladder step, serialization-friendly.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LadderRow {
    /// Level label.
    pub level: String,
    /// Per-half-warp transactions for the hot tile fetch.
    pub tile_fetch_transactions: usize,
    /// Instructions per inner element.
    pub instrs_per_element: f64,
    /// Registers per thread.
    pub regs: u16,
    /// Occupancy percent.
    pub occupancy_pct: f64,
}

/// The full report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OptimizationReport {
    /// Device the analysis targeted.
    pub device: String,
    /// Driver revision of the memory model.
    pub driver: String,
    /// The layout plan for the schema.
    pub layout: LayoutPlan,
    /// Unroll analysis of the tuned kernel.
    pub unroll: Vec<UnrollRow>,
    /// Recommended unroll factor.
    pub recommended_unroll: u32,
    /// The Fig. 12 optimization ladder.
    pub ladder: Vec<LadderRow>,
}

/// Produce the full report for a schema on a device.
pub fn build_report(
    dev: &DeviceConfig,
    driver: DriverModel,
    schema: &StructSchema,
) -> OptimizationReport {
    let layout = optimize_layout(schema);
    let advice = advise_unroll(dev, Layout::SoAoaS, 128, true);
    let unroll = advice
        .options
        .iter()
        .map(|o| UnrollRow {
            factor: o.factor,
            instrs_per_element: o.instrs_per_element,
            eq3_speedup: o.eq3_speedup,
            regs: o.regs,
            occupancy_pct: o.occupancy.percent(),
        })
        .collect();
    let ladder = optimization_ladder(dev, driver)
        .into_iter()
        .map(|s| LadderRow {
            level: s.level.label().to_string(),
            tile_fetch_transactions: s.tile_fetch_transactions,
            instrs_per_element: s.instrs_per_element,
            regs: s.regs,
            occupancy_pct: s.occupancy.percent(),
        })
        .collect();
    OptimizationReport {
        device: dev.name.clone(),
        driver: driver.label().to_string(),
        layout,
        unroll,
        recommended_unroll: advice.best().factor,
        ladder,
    }
}

impl OptimizationReport {
    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_complete_and_serializable() {
        let dev = DeviceConfig::g8800gtx();
        let r = build_report(&dev, DriverModel::Cuda10, &StructSchema::gravit_particle());
        assert_eq!(r.layout.groups.len(), 2);
        assert_eq!(r.recommended_unroll, 128);
        assert_eq!(r.ladder.len(), 6);
        assert_eq!(r.unroll.len(), 8);
        let json = r.to_json();
        assert!(json.contains("\"recommended_unroll\": 128"));
        assert!(json.contains("SoAoaS"));
        // Round-trippable enough for tooling: valid JSON.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v["ladder"].as_array().unwrap().len() == 6);
    }
}
