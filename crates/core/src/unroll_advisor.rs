//! The Sec. IV-A unrolling analysis as an advisor.
//!
//! For a tiled kernel with innermost trip count K, the advisor evaluates
//! every unroll factor dividing K: per-element instruction budget (measured
//! on the transformed IR, not estimated), Eq. 3 predicted speedup, register
//! demand, and the resulting occupancy — then recommends the factor with the
//! best predicted speedup, breaking ties toward smaller code.

use gpu_kernels::force::{build_force_kernel, ForceKernelConfig};
use gpu_sim::analyze::{cost, AnalysisConfig};
use gpu_sim::ir::count::{dynamic_instructions, eq3_speedup};
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::occupancy::{occupancy, Occupancy};
use gpu_sim::DeviceConfig;
use particle_layouts::Layout;

/// Evaluation of one unroll factor.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrollOption {
    /// The factor.
    pub factor: u32,
    /// Per-element dynamic instructions (thread 0, reference size).
    pub instrs_per_element: f64,
    /// Eq. 3 predicted speedup over factor 1.
    pub eq3_speedup: f64,
    /// Registers per thread after the transformation.
    pub regs: u16,
    /// Occupancy at this register demand.
    pub occupancy: Occupancy,
    /// Whole-kernel predicted cycles from the full cost model
    /// ([`gpu_sim::analyze::cost::estimate`]) at a reference 2-block
    /// launch; `None` when the kernel is not exactly analyzable there.
    pub predicted_cycles: Option<f64>,
}

/// The advisor's output.
#[derive(Debug, Clone, PartialEq)]
pub struct UnrollAdvice {
    /// Every factor evaluated, ascending.
    pub options: Vec<UnrollOption>,
    /// Index of the recommended option.
    pub recommended: usize,
}

impl UnrollAdvice {
    /// The recommended option.
    pub fn best(&self) -> &UnrollOption {
        &self.options[self.recommended]
    }
}

/// Analyze unroll factors for the force kernel at a given layout/block/ICM
/// setting on a device.
pub fn advise_unroll(dev: &DeviceConfig, layout: Layout, block: u32, icm: bool) -> UnrollAdvice {
    let n = block * 64; // reference size; per-element budgets are size-stable
    let factors: Vec<u32> = (0..=block.ilog2())
        .map(|e| 1 << e)
        .filter(|f| block.is_multiple_of(*f))
        .collect();
    let mut options = Vec::new();
    let mut rolled = None;
    for &factor in &factors {
        let cfg = ForceKernelConfig {
            layout,
            block,
            unroll: factor,
            icm,
        };
        let k = build_force_kernel(cfg);
        let mut params = vec![0u32; k.n_params as usize];
        params[k.n_params as usize - 3] = n;
        let per_elem = dynamic_instructions(&k, &params)
            .expect("force kernel loop bounds are launch constants") as f64
            / n as f64;
        if factor == 1 {
            rolled = Some(per_elem);
        }
        let regs = register_demand(&k).regs_per_thread;
        // Price the transformed kernel through the same cost model the
        // layout/schedule synthesizer ranks candidates with, at a small
        // reference launch (2 blocks, one tile pass per thread).
        let mut cost_params: Vec<u32> =
            (0..k.n_params as u32).map(|i| 0x1_0000 * (i + 1)).collect();
        cost_params[k.n_params as usize - 3] = 2 * block;
        cost_params[k.n_params as usize - 1] = 0; // smem0
        let acfg = AnalysisConfig::new(2, block, cost_params);
        let predicted_cycles = cost::estimate(&k, &acfg).ok().map(|c| c.total_cycles());
        options.push(UnrollOption {
            factor,
            instrs_per_element: per_elem,
            eq3_speedup: eq3_speedup(rolled.expect("factor 1 first"), per_elem)
                .expect("instruction budgets are positive"),
            regs,
            occupancy: occupancy(dev, block, regs as u32, k.smem_bytes),
            predicted_cycles,
        });
    }
    // Recommend the cheapest kernel under the full cost model (the same
    // yardstick `analyze::synth` ranks schedules with), preferring smaller
    // factors on a tie; fall back to the Eq. 3 × occupancy score when the
    // cost model abstains.
    let mut recommended = 0;
    if options.iter().all(|o| o.predicted_cycles.is_some()) {
        for (i, o) in options.iter().enumerate() {
            if o.predicted_cycles.unwrap() + 1e-9 < options[recommended].predicted_cycles.unwrap() {
                recommended = i;
            }
        }
    } else {
        let base_occ = options[0].occupancy.fraction();
        let mut best_score = 0.0f64;
        for (i, o) in options.iter().enumerate() {
            let score = o.eq3_speedup * (o.occupancy.fraction() / base_occ).max(1.0);
            if score > best_score + 1e-9 {
                best_score = score;
                recommended = i;
            }
        }
    }
    UnrollAdvice {
        options,
        recommended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_unroll_is_recommended_for_the_gravit_kernel() {
        let dev = DeviceConfig::g8800gtx();
        let advice = advise_unroll(&dev, Layout::SoAoaS, 128, false);
        assert_eq!(advice.options.len(), 8); // 1,2,4,...,128
        let best = advice.best();
        assert_eq!(best.factor, 128, "the paper's conclusion: unroll fully");
        assert!(best.eq3_speedup > 1.15 && best.eq3_speedup < 1.3);
    }

    #[test]
    fn speedup_is_monotone_in_factor() {
        let dev = DeviceConfig::g8800gtx();
        let advice = advise_unroll(&dev, Layout::SoAoaS, 128, false);
        for w in advice.options.windows(2) {
            assert!(
                w[1].eq3_speedup >= w[0].eq3_speedup - 1e-9,
                "factor {} worse than {}",
                w[1].factor,
                w[0].factor
            );
        }
    }

    #[test]
    fn register_effects_of_unrolling() {
        let dev = DeviceConfig::g8800gtx();
        let advice = advise_unroll(&dev, Layout::SoAoaS, 128, true);
        let rolled = advice.options[0].regs;
        // Partial unrolling costs a couple of extra registers (the CSE'd
        // address base shared by the copies, plus copy-boundary temporaries)
        // — the classic register-pressure cost of partial unrolling.
        for o in &advice.options {
            assert!(
                o.regs <= rolled + 2,
                "factor {} uses {} vs rolled {}",
                o.factor,
                o.regs,
                rolled
            );
        }
        // Full unroll frees the iterator — the paper's point.
        assert!(advice.options.last().unwrap().regs < rolled);
    }
}
