//! The paper's three-step layout procedure (Sec. IV), generalized from the
//! Gravit particle to arbitrary large structures:
//!
//! 1. **Group** data in portions with similar access frequencies.
//! 2. **Split** structures that exceed the alignment boundary into smaller
//!    sub-structures of 64 or 128 bits that can be aligned.
//! 3. **Organize** the aligned sub-structures in arrays to allow for
//!    coalesced reads.
//!
//! The output is a [`LayoutPlan`]: one array of aligned sub-structures per
//! bin, plus a transaction analysis (via [`gpu_sim::coalesce`]) comparing it
//! against the naive packed array-of-structures baseline.

use gpu_sim::coalesce::{coalesce_half_warp, AccessWidth};
use gpu_sim::DriverModel;
use serde::{Deserialize, Serialize};

/// Access-frequency class of a field — the grouping key of step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessFreq {
    /// Read in the innermost loop (every element-interaction).
    Hot,
    /// Read once per outer iteration.
    Warm,
    /// Rarely read (e.g. only during integration).
    Cold,
}

/// One field of the structure being optimized.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name, for reports.
    pub name: String,
    /// Width in 32-bit words (1–4).
    pub words: u32,
    /// Access-frequency class.
    pub freq: AccessFreq,
}

impl FieldSpec {
    /// A 32-bit scalar field.
    pub fn scalar(name: impl Into<String>, freq: AccessFreq) -> FieldSpec {
        FieldSpec {
            name: name.into(),
            words: 1,
            freq,
        }
    }

    /// A wider field (2–4 words, e.g. a double or a small vector).
    pub fn wide(name: impl Into<String>, words: u32, freq: AccessFreq) -> FieldSpec {
        assert!((1..=4).contains(&words), "field width must be 1–4 words");
        FieldSpec {
            name: name.into(),
            words,
            freq,
        }
    }
}

/// The structure to optimize.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructSchema {
    /// Fields in declaration order.
    pub fields: Vec<FieldSpec>,
}

impl StructSchema {
    /// Build a schema; panics on empty or oversized-field schemas.
    pub fn new(fields: Vec<FieldSpec>) -> StructSchema {
        assert!(!fields.is_empty(), "empty schema");
        for f in &fields {
            assert!(
                (1..=4).contains(&f.words),
                "field {} has invalid width",
                f.name
            );
        }
        StructSchema { fields }
    }

    /// Total payload words.
    pub fn words(&self) -> u32 {
        self.fields.iter().map(|f| f.words).sum()
    }

    /// Gravit's particle record (7 floats), the paper's running example.
    pub fn gravit_particle() -> StructSchema {
        StructSchema::new(vec![
            FieldSpec::scalar("px", AccessFreq::Hot),
            FieldSpec::scalar("py", AccessFreq::Hot),
            FieldSpec::scalar("pz", AccessFreq::Hot),
            FieldSpec::scalar("vx", AccessFreq::Cold),
            FieldSpec::scalar("vy", AccessFreq::Cold),
            FieldSpec::scalar("vz", AccessFreq::Cold),
            FieldSpec::scalar("mass", AccessFreq::Hot),
        ])
    }
}

/// Derive the record schema of the dominant packed buffer straight from an
/// analysis report — the access-summary path that replaces the hand-coded
/// Gravit schema whenever the interpreter attributed the loads.
///
/// Load sites are grouped by [`buffer_param`]
/// ([`gpu_sim::analyze::AccessSummary::buffer_param`]); the buffer with the
/// widest record whose sites agree on one positive lane stride becomes the
/// schema: each read word is a hot scalar field (named by its byte offset),
/// each never-read word a cold one. Field *identity* (px vs. mass) is
/// unknowable statically, but the three-step procedure only needs widths
/// and frequencies, so the derived plan prices identically to the
/// hand-written one.
pub fn schema_from_report(report: &gpu_sim::analyze::AnalysisReport) -> Option<StructSchema> {
    use std::collections::BTreeMap;
    /// Stride plus raw `(site lo, word offset)` pairs; `None` = poisoned.
    type BufAcc = Option<(u32, Vec<(u64, u32)>)>;
    let mut bufs: BTreeMap<u16, BufAcc> = BTreeMap::new();
    let mut lo_by_param: BTreeMap<u16, u64> = BTreeMap::new();
    for acc in &report.accesses {
        if acc.space != gpu_sim::ir::MemSpace::Global || !acc.is_load {
            continue;
        }
        let Some(p) = acc.buffer_param else { continue };
        let (Some(stride), Some((lo, _)), true) = (acc.lane_stride, acc.addr_range, acc.exact)
        else {
            bufs.insert(p, None);
            continue;
        };
        if stride <= 0 || stride % 4 != 0 {
            bufs.insert(p, None);
            continue;
        }
        let e = lo_by_param.entry(p).or_insert(lo);
        *e = (*e).min(lo);
        match bufs
            .entry(p)
            .or_insert_with(|| Some((stride as u32, Vec::new())))
        {
            Some((s, words)) if *s == stride as u32 => {
                for w in 0..acc.width_bytes / 4 {
                    words.push((lo, 4 * w));
                }
            }
            slot => *slot = None,
        }
    }
    // Offsets relative to the lowest site of the buffer (the record base,
    // assuming the first field is among the reads — true of every packed
    // AoS kernel the workspace builds).
    let mut best: Option<(u32, Vec<u32>)> = None;
    for (p, slot) in bufs {
        let Some((stride, raw)) = slot else { continue };
        let base = lo_by_param[&p];
        let mut hot: Vec<u32> = raw
            .iter()
            .map(|&(lo, w)| (((lo - base) as u32) % stride) + w)
            .collect();
        hot.sort_unstable();
        hot.dedup();
        if hot.iter().any(|&o| o + 4 > stride) {
            continue;
        }
        if best.as_ref().is_none_or(|(s, _)| stride > *s) {
            best = Some((stride, hot));
        }
    }
    let (stride, hot) = best?;
    if stride < 8 {
        return None; // single-word records have no layout to optimize
    }
    let fields = (0..stride / 4)
        .map(|w| {
            let off = 4 * w;
            FieldSpec::scalar(
                format!("+{off}"),
                if hot.contains(&off) {
                    AccessFreq::Hot
                } else {
                    AccessFreq::Cold
                },
            )
        })
        .collect();
    Some(StructSchema::new(fields))
}

/// One aligned sub-structure (step 2): a bin of fields padded to an
/// alignable size (1, 2 or 4 words), stored as its own array (step 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubStruct {
    /// Indices into the schema's field list, in placement order.
    pub fields: Vec<usize>,
    /// Access-frequency class of every member.
    pub freq: AccessFreq,
    /// Payload words.
    pub used_words: u32,
    /// Padded (alignable) words: 1, 2 or 4.
    pub padded_words: u32,
}

impl SubStruct {
    /// Padding words added for alignment.
    pub fn padding(&self) -> u32 {
        self.padded_words - self.used_words
    }
}

/// The optimized layout (the SoAoaS of the input schema).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutPlan {
    /// The input schema.
    pub schema: StructSchema,
    /// The aligned sub-structures, hot groups first.
    pub groups: Vec<SubStruct>,
    /// Per-half-warp transactions for a full-record fetch, naive packed AoS.
    pub baseline_transactions: u32,
    /// Per-half-warp transactions for a full-record fetch, optimized layout.
    pub optimized_transactions: u32,
}

impl LayoutPlan {
    /// Predicted improvement factor in transactions per full-record fetch —
    /// the first-order effect behind the paper's Fig. 10.
    pub fn transaction_improvement(&self) -> f64 {
        self.baseline_transactions as f64 / self.optimized_transactions.max(1) as f64
    }

    /// Extra storage from padding, as a fraction of the payload ("the memory
    /// usage is slightly increased").
    pub fn padding_overhead(&self) -> f64 {
        let used: u32 = self.groups.iter().map(|g| g.used_words).sum();
        let padded: u32 = self.groups.iter().map(|g| g.padded_words).sum();
        (padded - used) as f64 / used as f64
    }

    /// Loads a thread issues per full-record fetch under the plan.
    pub fn loads_per_record(&self) -> usize {
        self.groups.len()
    }
}

/// Run the three-step procedure on a schema.
pub fn optimize_layout(schema: &StructSchema) -> LayoutPlan {
    // Step 1: group by access frequency (stable, hot first).
    let mut by_freq: Vec<(AccessFreq, Vec<usize>)> = Vec::new();
    for freq in [AccessFreq::Hot, AccessFreq::Warm, AccessFreq::Cold] {
        let members: Vec<usize> = schema
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.freq == freq)
            .map(|(i, _)| i)
            .collect();
        if !members.is_empty() {
            by_freq.push((freq, members));
        }
    }

    // Step 2: split each group into 128-bit bins (first-fit decreasing),
    // padding each bin to the next alignable size (1, 2 or 4 words).
    let mut groups: Vec<SubStruct> = Vec::new();
    for (freq, mut members) in by_freq {
        members.sort_by_key(|&i| std::cmp::Reverse(schema.fields[i].words));
        let mut bins: Vec<(Vec<usize>, u32)> = Vec::new();
        for i in members {
            let w = schema.fields[i].words;
            match bins.iter_mut().find(|(_, used)| used + w <= 4) {
                Some((bin, used)) => {
                    bin.push(i);
                    *used += w;
                }
                None => bins.push((vec![i], w)),
            }
        }
        for (fields, used) in bins {
            let padded = used.next_power_of_two().max(1);
            groups.push(SubStruct {
                fields,
                freq,
                used_words: used,
                padded_words: padded,
            });
        }
    }

    // Step 3 is implicit: each group becomes an array of aligned records.
    // Score both layouts through the real coalescer (CC 1.0 protocol, the
    // hardware rule the paper's figures assume).
    let baseline_transactions = packed_aos_transactions(schema);
    let optimized_transactions = groups.iter().map(group_transactions).sum::<u32>();

    LayoutPlan {
        schema: schema.clone(),
        groups,
        baseline_transactions,
        optimized_transactions,
    }
}

/// Transactions per half-warp for a full-record fetch from the naive packed
/// array of structures (scalar reads, record stride = payload bytes).
fn packed_aos_transactions(schema: &StructSchema) -> u32 {
    let stride = schema.words() as u64 * 4;
    let mut offset = 0u64;
    let mut total = 0u32;
    for f in &schema.fields {
        // Wide fields in a packed struct may be misaligned for vector access,
        // so the baseline reads them as scalars — exactly what the original
        // Gravit code does.
        for w in 0..f.words {
            let addrs: Vec<Option<u64>> = (0..16)
                .map(|k| Some(k * stride + offset + 4 * w as u64))
                .collect();
            total +=
                coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4).count() as u32;
        }
        offset += f.words as u64 * 4;
    }
    total
}

/// Transactions per half-warp for fetching one aligned sub-structure from its
/// array.
fn group_transactions(g: &SubStruct) -> u32 {
    let width = AccessWidth::from_bytes(g.padded_words * 4).expect("alignable width");
    let stride = g.padded_words as u64 * 4;
    let addrs: Vec<Option<u64>> = (0..16).map(|k| Some(k * stride)).collect();
    coalesce_half_warp(DriverModel::Cuda10, &addrs, width).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravit_particle_becomes_the_papers_soaoas() {
        let plan = optimize_layout(&StructSchema::gravit_particle());
        assert_eq!(plan.groups.len(), 2, "hot posmass + cold velocity");
        let hot = &plan.groups[0];
        assert_eq!(hot.freq, AccessFreq::Hot);
        assert_eq!(hot.used_words, 4); // px py pz mass
        assert_eq!(hot.padded_words, 4);
        assert_eq!(hot.padding(), 0);
        let cold = &plan.groups[1];
        assert_eq!(cold.used_words, 3); // vx vy vz
        assert_eq!(cold.padded_words, 4); // + the hidden padding element
        assert_eq!(cold.padding(), 1);
        // Fig. 3 vs Fig. 9: 7×16 = 112 transactions down to 2×2 = 4.
        assert_eq!(plan.baseline_transactions, 112);
        assert_eq!(plan.optimized_transactions, 4);
        assert!((plan.transaction_improvement() - 28.0).abs() < 1e-9);
        assert_eq!(plan.loads_per_record(), 2);
        assert!((plan.padding_overhead() - 1.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn single_hot_scalar_stays_one_array() {
        let plan = optimize_layout(&StructSchema::new(vec![FieldSpec::scalar(
            "x",
            AccessFreq::Hot,
        )]));
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].padded_words, 1);
        // A single coalesced scalar array: 1 transaction either way.
        assert_eq!(plan.optimized_transactions, 1);
    }

    #[test]
    fn large_structure_splits_into_multiple_bins() {
        // 9 hot scalars: 3 bins (4+4+1).
        let fields: Vec<FieldSpec> = (0..9)
            .map(|i| FieldSpec::scalar(format!("f{i}"), AccessFreq::Hot))
            .collect();
        let plan = optimize_layout(&StructSchema::new(fields));
        assert_eq!(plan.groups.len(), 3);
        let sizes: Vec<u32> = plan.groups.iter().map(|g| g.used_words).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 9);
        assert!(plan.groups.iter().all(|g| g.padded_words <= 4));
    }

    #[test]
    fn wide_fields_pack_first_fit_decreasing() {
        let plan = optimize_layout(&StructSchema::new(vec![
            FieldSpec::scalar("a", AccessFreq::Hot),
            FieldSpec::wide("v", 3, AccessFreq::Hot),
            FieldSpec::wide("w", 2, AccessFreq::Hot),
        ]));
        // FFD: v(3)+a(1) → bin of 4; w(2) → bin of 2. No padding at all.
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.padding_overhead(), 0.0);
    }

    #[test]
    fn frequency_classes_never_mix() {
        let plan = optimize_layout(&StructSchema::new(vec![
            FieldSpec::scalar("h1", AccessFreq::Hot),
            FieldSpec::scalar("c1", AccessFreq::Cold),
            FieldSpec::scalar("h2", AccessFreq::Hot),
            FieldSpec::scalar("w1", AccessFreq::Warm),
        ]));
        for g in &plan.groups {
            let freqs: Vec<AccessFreq> = g
                .fields
                .iter()
                .map(|&i| plan.schema.fields[i].freq)
                .collect();
            assert!(
                freqs.iter().all(|&f| f == g.freq),
                "mixed-frequency bin: {g:?}"
            );
        }
        // Hot groups come first.
        assert_eq!(plan.groups[0].freq, AccessFreq::Hot);
    }

    #[test]
    fn every_field_is_placed_exactly_once() {
        let schema = StructSchema::new(
            (0..13)
                .map(|i| {
                    FieldSpec::scalar(
                        format!("f{i}"),
                        if i % 3 == 0 {
                            AccessFreq::Hot
                        } else {
                            AccessFreq::Cold
                        },
                    )
                })
                .collect(),
        );
        let plan = optimize_layout(&schema);
        let mut placed: Vec<usize> = plan.groups.iter().flat_map(|g| g.fields.clone()).collect();
        placed.sort_unstable();
        assert_eq!(placed, (0..13).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn empty_schema_rejected() {
        StructSchema::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn oversized_field_rejected() {
        FieldSpec::wide("huge", 5, AccessFreq::Hot);
    }
}
