//! Advisor enrichment of static-analysis reports.
//!
//! `gpu_sim::analyze` diagnoses *that* an access pattern is bad; this module
//! wires those diagnostics to the paper's *remedies*: an uncoalesced access
//! with a packed-record lane stride gets the concrete [`LayoutPlan`] the
//! Sec. IV three-step procedure produces (the 28-byte Gravit record →
//! SoAoaS, 112 → 4 transactions), and invariant/register findings get the
//! Sec. IV-A unroll + ICM guidance. The `kernel-lint` CLI renders both.

use gpu_sim::analyze::{AnalysisReport, LintKind};
use serde::Serialize;

use crate::layout_advisor::{optimize_layout, schema_from_report, LayoutPlan, StructSchema};

/// A layout remedy attached to one diagnostic of the report.
#[derive(Debug, Clone, Serialize)]
pub struct LayoutAdvice {
    /// Index into `report.diagnostics` of the finding this addresses.
    pub diagnostic: usize,
    /// Lane stride (bytes) that triggered the advice.
    pub lane_stride: i64,
    /// The concrete split the three-step procedure recommends.
    pub plan: LayoutPlan,
    /// One-line human summary.
    pub summary: String,
}

/// An analysis report plus the advisor remedies for its findings.
#[derive(Debug, Clone, Serialize)]
pub struct EnrichedReport {
    /// The underlying static-analysis report.
    pub report: AnalysisReport,
    /// Layout remedies for uncoalesced packed-record accesses.
    pub layout_advice: Vec<LayoutAdvice>,
    /// Compiler-pass guidance for invariant/register findings.
    pub pass_advice: Vec<String>,
}

impl EnrichedReport {
    /// Render report + remedies for humans.
    pub fn render(&self) -> String {
        let mut s = self.report.render();
        for a in &self.layout_advice {
            s.push_str(&format!("  advice: {}\n", a.summary));
        }
        for a in &self.pass_advice {
            s.push_str(&format!("  advice: {a}\n"));
        }
        s
    }
}

/// Attach the paper's remedies to a report.
///
/// * Every error-severity [`LintKind::UncoalescedAccess`] whose access has a
///   constant lane stride wider than one 128-bit vector (17..=63 bytes — the
///   packed-record regime; Gravit's record is 28, classic AoS is 32) gets
///   the [`LayoutPlan`] for the Gravit particle schema.
/// * [`LintKind::UnhoistedInvariant`] and [`LintKind::RegisterPressure`]
///   findings get the Sec. IV-A pass ordering (licm before unroll; the
///   17 → 16 register drop that buys 50 % → 67 % occupancy).
pub fn enrich_report(report: AnalysisReport) -> EnrichedReport {
    let mut layout_advice = Vec::new();
    let mut pass_advice = Vec::new();
    // The schema comes from the report's own access summaries when the
    // interpreter could attribute the loads (the synthesis path); the
    // hand-written Gravit schema is only the fallback.
    let schema = schema_from_report(&report).unwrap_or_else(StructSchema::gravit_particle);
    for (i, d) in report.diagnostics.iter().enumerate() {
        match d.kind {
            LintKind::UncoalescedAccess => {
                let stride = report
                    .accesses
                    .iter()
                    .find(|a| Some(a.instruction) == d.site.instruction)
                    .and_then(|a| a.lane_stride);
                if let Some(stride @ 17..=63) = stride {
                    let plan = optimize_layout(&schema);
                    layout_advice.push(LayoutAdvice {
                        diagnostic: i,
                        lane_stride: stride,
                        summary: format!(
                            "regroup the {stride}-byte record into {} aligned sub-structures \
                             ({} loads/record): {} -> {} transactions per half-warp full-record \
                             fetch ({:.0}x)",
                            plan.groups.len(),
                            plan.loads_per_record(),
                            plan.baseline_transactions,
                            plan.optimized_transactions,
                            plan.transaction_improvement()
                        ),
                        plan,
                    });
                }
            }
            LintKind::UnhoistedInvariant => {
                pass_advice.push(
                    "run `passes::licm` before `passes::unroll_innermost`: hoisting the \
                     invariant frees its register in every unrolled copy (the paper's \
                     ICM step)"
                        .to_string(),
                );
            }
            LintKind::RegisterPressure => {
                pass_advice.push(
                    "registers gate occupancy: combine ICM with a smaller block (the paper \
                     moves 192 -> 128 threads at 16 regs for 50% -> 67% occupancy)"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
    EnrichedReport {
        report,
        layout_advice,
        pass_advice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_kernels::lintset::workspace_lint_targets;
    use gpu_sim::analyze::Severity;

    #[test]
    fn packed_record_findings_carry_the_layout_plan() {
        // The Fig. 12 baseline (Unopt layout) is the first lintset target.
        let target = &workspace_lint_targets()[0];
        let enriched = enrich_report(target.analyze());
        assert!(enriched.report.has_errors());
        assert!(
            !enriched.layout_advice.is_empty(),
            "28-byte stride must get a plan"
        );
        let a = &enriched.layout_advice[0];
        assert_eq!(a.lane_stride, 28, "Gravit's packed record");
        assert_eq!(a.plan.baseline_transactions, 112);
        assert_eq!(a.plan.optimized_transactions, 4);
        assert_eq!(
            enriched.report.diagnostics[a.diagnostic].severity,
            Severity::Error,
            "advice indexes the uncoalesced error"
        );
        assert!(
            enriched.render().contains("112 -> 4 transactions"),
            "{}",
            enriched.render()
        );
    }

    #[test]
    fn rolled_force_kernel_gets_pass_advice() {
        // Any rolled force target warns about the recomputed eps² and the
        // enrichment names the pass ordering.
        let target = &workspace_lint_targets()[0];
        let enriched = enrich_report(target.analyze());
        assert!(
            enriched.pass_advice.iter().any(|a| a.contains("licm")),
            "{:?}",
            enriched.pass_advice
        );
    }

    #[test]
    fn clean_reports_are_not_decorated() {
        // The tuned Full-level kernel: no advice to give.
        let clean = workspace_lint_targets()
            .into_iter()
            .find(|t| t.kernel.name.contains("b128") && t.kernel.name.contains("icm"))
            .expect("Full-level target");
        let enriched = enrich_report(clean.analyze());
        assert!(enriched.layout_advice.is_empty());
        assert!(enriched.pass_advice.is_empty());
    }
}
