//! # gravit-core — the paper's optimization techniques as a library
//!
//! This is the facade crate of the reproduction of *"CUDA Memory
//! Optimizations for Large Data-Structures in the Gravit Simulator"*
//! (Siegel, Ributzka, Li — ICPP 2009 workshops). It packages the paper's two
//! contributions as reusable components over the [`gpu_sim`] machine model:
//!
//! * [`layout_advisor`] — the Sec. IV three-step memory-layout procedure for
//!   structures larger than the 128-bit alignment boundary:
//!   **group** fields by access frequency, **split** groups into 64/128-bit
//!   alignable sub-structures, **arrange** the sub-structures in arrays
//!   (SoAoaS). Given a declared struct schema it produces the optimized
//!   layout plan plus the predicted per-half-warp transaction improvement.
//! * [`unroll_advisor`] — the Sec. IV-A loop-unrolling analysis: Eq. 3
//!   (`speedup ≈ P₁/P₂`), measured per-iteration instruction budgets,
//!   register-pressure and occupancy feedback, and a recommended factor.
//! * [`pipeline`] — applies the full ladder to the Gravit force kernel and
//!   reports each step (the programmatic form of Fig. 12's levels).
//!
//! Downstream crates (`gravit-app`, `bench`, the examples) use this crate as
//! their single entry point; the substrates are re-exported under
//! [`substrates`].
//!
//! ## Quickstart
//!
//! ```
//! use gravit_core::layout_advisor::{AccessFreq, FieldSpec, StructSchema};
//!
//! // Gravit's particle record, as the paper describes it.
//! let schema = StructSchema::new(vec![
//!     FieldSpec::scalar("px", AccessFreq::Hot),
//!     FieldSpec::scalar("py", AccessFreq::Hot),
//!     FieldSpec::scalar("pz", AccessFreq::Hot),
//!     FieldSpec::scalar("vx", AccessFreq::Cold),
//!     FieldSpec::scalar("vy", AccessFreq::Cold),
//!     FieldSpec::scalar("vz", AccessFreq::Cold),
//!     FieldSpec::scalar("mass", AccessFreq::Hot),
//! ]);
//! let plan = gravit_core::layout_advisor::optimize_layout(&schema);
//! // The paper's SoAoaS: {x,y,z,mass} hot float4 + {vx,vy,vz,pad} cold float4.
//! assert_eq!(plan.groups.len(), 2);
//! assert!(plan.transaction_improvement() > 20.0);
//! ```

#![warn(missing_docs)]

pub mod layout_advisor;
pub mod lint;
pub mod pipeline;
pub mod report;
pub mod unroll_advisor;

/// Re-exports of the substrate crates, so downstream users need only one
/// dependency.
pub mod substrates {
    pub use gpu_kernels;
    pub use gpu_sim;
    pub use nbody;
    pub use particle_layouts;
    pub use simcore;
}

pub use layout_advisor::{optimize_layout, LayoutPlan, StructSchema};
pub use pipeline::{optimization_ladder, LadderStep};
pub use report::{build_report, OptimizationReport};
pub use unroll_advisor::{advise_unroll, UnrollAdvice};
