//! The full optimization ladder, programmatically.
//!
//! [`optimization_ladder`] evaluates each of the paper's optimization levels
//! (Fig. 12) on the machine model and reports the per-step properties —
//! layout traffic, instruction budget, registers, occupancy — in one
//! structure. This is the "what did each optimization buy" view that the
//! examples and the gravit application print.

use gpu_kernels::force::{build_force_kernel, OptLevel};
use gpu_sim::ir::count::dynamic_instructions;
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::occupancy::{occupancy, Occupancy};
use gpu_sim::DeviceConfig;
use gpu_sim::DriverModel;
use particle_layouts::streams::analyze_plan;

/// One step of the ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderStep {
    /// The optimization level.
    pub level: OptLevel,
    /// Per-half-warp transactions to fetch the hot fields of one tile element.
    pub tile_fetch_transactions: usize,
    /// Dynamic instructions per element of the inner loop (thread 0 at the
    /// reference size).
    pub instrs_per_element: f64,
    /// Registers per thread.
    pub regs: u16,
    /// Occupancy.
    pub occupancy: Occupancy,
}

/// Evaluate the whole ladder on a device under a driver revision.
pub fn optimization_ladder(dev: &DeviceConfig, driver: DriverModel) -> Vec<LadderStep> {
    OptLevel::ALL
        .iter()
        .map(|&level| {
            let cfg = level.config();
            let kernel = build_force_kernel(cfg);
            let n = cfg.block * 64;
            let mut params = vec![0u32; kernel.n_params as usize];
            params[kernel.n_params as usize - 3] = n;
            let regs = register_demand(&kernel).regs_per_thread;
            LadderStep {
                level,
                tile_fetch_transactions: analyze_plan(&cfg.layout.read_plan_posmass(), driver)
                    .transactions,
                instrs_per_element: dynamic_instructions(&kernel, &params)
                    .expect("force kernel loop bounds are launch constants")
                    as f64
                    / n as f64,
                regs,
                occupancy: occupancy(dev, cfg.block, regs as u32, kernel.smem_bytes),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_improves_monotonically_where_the_paper_says() {
        let dev = DeviceConfig::g8800gtx();
        let steps = optimization_ladder(&dev, DriverModel::Cuda10);
        assert_eq!(steps.len(), 6);
        // Layout steps cut tile-fetch transactions.
        assert!(steps[3].tile_fetch_transactions < steps[0].tile_fetch_transactions);
        // The unroll step cuts instructions.
        assert!(steps[4].instrs_per_element < steps[3].instrs_per_element);
        // The final step raises occupancy.
        assert!(steps[5].occupancy.fraction() > steps[4].occupancy.fraction());
        // And the register ladder is 18 → 17 → 16.
        assert_eq!(steps[3].regs, 18);
        assert_eq!(steps[4].regs, 17);
        assert_eq!(steps[5].regs, 16);
    }

    #[test]
    fn layout_steps_do_not_change_the_inner_loop() {
        let dev = DeviceConfig::g8800gtx();
        let steps = optimization_ladder(&dev, DriverModel::Cuda10);
        // Baseline vs SoAoaS: same rolled inner loop, different tile fetch.
        // (The instruction difference between scalar/vector tile loads is in
        // the per-tile term, which is tiny per element.)
        let diff = (steps[0].instrs_per_element - steps[3].instrs_per_element).abs();
        assert!(
            diff < 0.2,
            "layout must not touch the hot loop (diff {diff})"
        );
    }
}
