//! Property-based tests for the substrate: RNG determinism, statistics and
//! vector algebra.

use proptest::prelude::*;
use simcore::{geometric_mean, linear_fit, Rng64, Summary, Vec3, Xoshiro256pp};

proptest! {
    /// Same seed ⇒ same stream; different seeds diverge quickly.
    #[test]
    fn rng_is_a_pure_function_of_seed(seed in any::<u64>()) {
        let a: Vec<u64> = { let mut g = Xoshiro256pp::seeded(seed); (0..32).map(|_| g.next_u64()).collect() };
        let b: Vec<u64> = { let mut g = Xoshiro256pp::seeded(seed); (0..32).map(|_| g.next_u64()).collect() };
        prop_assert_eq!(a, b);
    }

    /// `below(n)` is always in range for any n ≥ 1.
    #[test]
    fn below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut g = Xoshiro256pp::seeded(seed);
        for _ in 0..32 {
            prop_assert!(g.below(n) < n);
        }
    }

    /// Sampling helpers stay in their domains.
    #[test]
    fn samples_in_domain(seed in any::<u64>()) {
        let mut g = Xoshiro256pp::seeded(seed);
        for _ in 0..64 {
            let f = g.next_f32();
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(g.in_unit_ball().norm_sq() <= 1.0 + 1e-6);
            prop_assert!((g.on_unit_sphere().norm() - 1.0).abs() < 1e-3);
        }
    }

    /// Summary statistics bound the data.
    #[test]
    fn summary_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..128)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.n, xs.len());
    }

    /// A linear fit through exactly-linear data recovers the coefficients.
    #[test]
    fn linear_fit_exact(a in -100.0f64..100.0, b in -100.0f64..100.0, n in 3usize..32) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, a + b * i as f64)).collect();
        let (fa, fb) = linear_fit(&pts);
        prop_assert!((fa - a).abs() < 1e-6 * (1.0 + a.abs()), "intercept {fa} vs {a}");
        prop_assert!((fb - b).abs() < 1e-6 * (1.0 + b.abs()), "slope {fb} vs {b}");
    }

    /// Geometric mean is between min and max for positive samples.
    #[test]
    fn geometric_mean_bounds(xs in proptest::collection::vec(1e-6f64..1e6, 1..64)) {
        let g = geometric_mean(&xs).unwrap();
        let (mn, mx) = xs.iter().fold((f64::INFINITY, 0.0f64), |(a, b), &x| (a.min(x), b.max(x)));
        prop_assert!(g >= mn * 0.999999 && g <= mx * 1.000001);
    }

    /// Vector algebra identities on arbitrary finite vectors.
    #[test]
    fn vec3_identities(ax in -1e3f32..1e3, ay in -1e3f32..1e3, az in -1e3f32..1e3,
                       bx in -1e3f32..1e3, by in -1e3f32..1e3, bz in -1e3f32..1e3) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        // Cross product orthogonality (relative to the magnitudes involved).
        let c = a.cross(b);
        let scale = a.norm() * b.norm() * (a.norm() + b.norm());
        prop_assert!(c.dot(a).abs() <= 1e-3 * scale.max(1e-6));
        // Dot symmetry and norm consistency.
        prop_assert_eq!(a.dot(b), b.dot(a));
        prop_assert!((a.norm_sq() - a.dot(a)).abs() < 1e-3 * a.norm_sq().max(1e-6));
        // Triangle inequality (with float slack).
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-3);
    }
}
