//! CRC-32 (IEEE 802.3 polynomial), implemented from the reference
//! specification with a compile-time lookup table.
//!
//! Used to protect on-disk artifacts (simulation checkpoints) against
//! truncation and bit rot: the checkpoint header stores the CRC of the
//! payload, and a mismatch on load is a typed error instead of a silently
//! corrupted resume. Implemented here rather than pulled from a crate for
//! the same reason as [`crate::rng`]: bit-reproducibility independent of
//! external version churn.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFF_FFFF`) — the
/// polynomial and conventions of zlib's `crc32()`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips_and_truncation() {
        let data = b"checkpoint payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
        assert_ne!(crc32(&data[..data.len() - 1]), base);
    }
}
