//! Summary statistics and least-squares helpers.
//!
//! The timing engine extrapolates full-grid kernel time from measurements at
//! a few tile counts via [`linear_fit`]; the benchmark harness summarizes
//! repeated runs via [`Summary`].

/// Summary statistics over a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    /// Relative standard deviation (coefficient of variation); 0 if mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// Ordinary least squares fit `y ≈ a + b·x`.
///
/// Returns `(intercept a, slope b)`. Panics if fewer than two points or if
/// all `x` are identical (degenerate design matrix).
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "linear_fit needs at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(
        denom.abs() > f64::EPSILON * sxx.max(1.0),
        "degenerate x values in linear_fit"
    );
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Geometric mean of strictly positive values. Returns `None` if the slice is
/// empty or any value is non-positive.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Relative error `|measured - expected| / |expected|`; infinity when the
/// expected value is zero but the measurement is not.
pub fn relative_error(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((measured - expected) / expected).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        assert!(Summary::of(&[]).is_none());
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.5 * i as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn linear_fit_rejects_degenerate_x() {
        linear_fit(&[(1.0, 2.0), (1.0, 3.0)]);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
    }
}

/// Percentile of a sample (nearest-rank method). `q` in `[0, 1]`.
/// Returns `None` for an empty sample.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// A histogram with `n_bins` equal bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Histogram {
        assert!(hi > lo && n_bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let b = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[b.min(n - 1)] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Total recorded samples (including out-of-range ones).
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// A one-line spark rendering (for terminal reports).
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .map(|&c| BARS[((c * 7).div_ceil(max)) as usize])
            .collect()
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 11.0] {
            h.record(x);
        }
        assert_eq!(h.bin(0), 2); // 0.0, 1.9
        assert_eq!(h.bin(1), 1); // 2.0
        assert_eq!(h.bin(4), 1); // 9.99
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.sparkline().chars().count(), 5);
    }
}
