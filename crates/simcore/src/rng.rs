//! Deterministic pseudo-random number generation.
//!
//! Two small, well-known generators are implemented from their reference
//! descriptions:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. Used for seeding and
//!   for cheap stateless hashing of indices.
//! * [`Xoshiro256pp`] — Blackman/Vigna's xoshiro256++ generator; the general
//!   purpose workhorse for workload generation.
//!
//! Every experiment in this workspace derives its randomness from a `u64`
//! seed through these types, so results are reproducible across platforms and
//! toolchain versions (the reason we avoid an external RNG crate).

use crate::vec3::Vec3;

/// Common interface for the 64-bit generators in this module.
pub trait Rng64 {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`Self::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)` using Lemire's widening-multiply method
    /// with rejection of the biased region (no modulo bias).
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut m = (self.next_u64() as u128) * (n as u128);
        if (m as u64) < n {
            // 2^64 mod n, computed without 128-bit division.
            let t = n.wrapping_neg() % n;
            while (m as u64) < t {
                m = (self.next_u64() as u128) * (n as u128);
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal deviate (Box–Muller, one value per call; the twin is
    /// discarded for simplicity — workload generation is not perf-critical).
    fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.next_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.next_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            return (r * (2.0 * core::f64::consts::PI * u2).cos()) as f32;
        }
    }

    /// Uniform point in the unit ball (rejection sampling).
    fn in_unit_ball(&mut self) -> Vec3 {
        loop {
            let v = Vec3::new(
                self.range_f32(-1.0, 1.0),
                self.range_f32(-1.0, 1.0),
                self.range_f32(-1.0, 1.0),
            );
            if v.norm_sq() <= 1.0 {
                return v;
            }
        }
    }

    /// Uniform point on the unit sphere surface.
    fn on_unit_sphere(&mut self) -> Vec3 {
        loop {
            let v = Vec3::new(self.normal(), self.normal(), self.normal());
            if let Some(u) = v.normalized() {
                return u;
            }
        }
    }

    /// Uniform point in the unit disk in the XY plane.
    fn in_unit_disk_xy(&mut self) -> Vec3 {
        loop {
            let v = Vec3::new(self.range_f32(-1.0, 1.0), self.range_f32(-1.0, 1.0), 0.0);
            if v.norm_sq() <= 1.0 {
                return v;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// SplitMix64: a fixed-increment 64-bit mixer.
///
/// Passes BigCrush when used as a generator; here it mostly seeds
/// [`Xoshiro256pp`] and hashes indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Stateless mix of a single value — handy for hashing indices into
    /// pseudo-random but reproducible values.
    #[inline]
    pub fn mix(z: u64) -> u64 {
        let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — general-purpose 256-bit-state generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion (the construction the authors recommend).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp { s }
    }

    /// The 2^128-step jump, for carving independent parallel streams out of
    /// one seed (used when sweeps run under Rayon).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= si;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }

    /// A generator `n` jumps ahead of this one (does not advance `self`).
    pub fn stream(&self, n: usize) -> Self {
        let mut g = self.clone();
        for _ in 0..n {
            g.jump();
        }
        g
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_determinism_and_spread() {
        let mut g = SplitMix64::new(1234567);
        let xs: Vec<u64> = (0..8).map(|_| g.next_u64()).collect();
        let mut h = SplitMix64::new(1234567);
        for &x in &xs {
            assert_eq!(h.next_u64(), x);
        }
        // All eight outputs distinct (a stuck mixer would repeat).
        let mut dedup = xs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), xs.len());
    }

    #[test]
    fn xoshiro_determinism_and_divergence() {
        let mut a = Xoshiro256pp::seeded(42);
        let mut b = Xoshiro256pp::seeded(42);
        let mut c = Xoshiro256pp::seeded(43);
        let av: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn jump_streams_do_not_overlap_shortly() {
        let base = Xoshiro256pp::seeded(7);
        let mut s0 = base.stream(0);
        let mut s1 = base.stream(1);
        let a: Vec<u64> = (0..256).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..256).map(|_| s1.next_u64()).collect();
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut g = Xoshiro256pp::seeded(1);
        for _ in 0..10_000 {
            let x = g.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut g = Xoshiro256pp::seeded(99);
        let n = 10u64;
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = g.below(n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        // Each bucket should be within 10% of the expected 10_000.
        for &c in &counts {
            assert!(
                (9_000..=11_000).contains(&c),
                "bucket count {c} out of tolerance"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut g = Xoshiro256pp::seeded(5);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = g.normal() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ball_sphere_disk_samples_in_domain() {
        let mut g = Xoshiro256pp::seeded(11);
        for _ in 0..1000 {
            assert!(g.in_unit_ball().norm_sq() <= 1.0 + 1e-6);
            assert!((g.on_unit_sphere().norm() - 1.0).abs() < 1e-3);
            let d = g.in_unit_disk_xy();
            assert_eq!(d.z, 0.0);
            assert!(d.norm_sq() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = Xoshiro256pp::seeded(3);
        let mut xs: Vec<u32> = (0..100).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity shuffle"
        );
    }

    #[test]
    fn mix_is_stateless_and_stable() {
        assert_eq!(SplitMix64::mix(0), SplitMix64::mix(0));
        assert_ne!(SplitMix64::mix(1), SplitMix64::mix(2));
    }
}
