//! A minimal `f32` 3-vector.
//!
//! Single precision is deliberate: the paper's kernels (and the 2007-era GPU
//! they ran on) are `float` throughout, and the CPU reference must use the
//! same precision for the functional cross-checks between the simulated GPU
//! kernels and the native implementation to be meaningful.

use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A 3-component single-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// All components one.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > f32::EPSILON {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// `true` if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f32 {
        (self - rhs).norm()
    }

    /// The components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f32) {
        *self = *self * s;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f32) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a * 1.0, a);
        assert_eq!(a / 1.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(Vec3::new(1.0, 0.0, 0.0)), 3.0);
    }

    #[test]
    fn cross_is_orthogonal_and_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = x.cross(y);
        assert_eq!(z, Vec3::new(0.0, 0.0, 1.0));
        let a = Vec3::new(1.5, -2.0, 0.25);
        let b = Vec3::new(-0.5, 3.0, 7.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-5);
        assert!(c.dot(b).abs() < 1e-5);
    }

    #[test]
    fn normalized_unit_length_or_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 2.0, 0.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, -3.0);
        let b = Vec3::new(2.0, 4.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn conversions_roundtrip() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Vec3::from(a.to_array()), a);
    }

    #[test]
    fn finite_detection() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
