//! # simcore — shared substrate for the Gravit CUDA-optimization reproduction
//!
//! This crate holds the pieces every other crate in the workspace leans on:
//!
//! * [`vec3`] — a small `f32` 3-vector, the currency of the N-body code.
//! * [`crc`] — CRC-32 (IEEE) for integrity-protecting on-disk artifacts
//!   (checkpoints, recordings) against truncation and bit rot.
//! * [`rng`] — deterministic pseudo-random number generation (SplitMix64 and
//!   Xoshiro256++) plus sampling helpers. We implement these ourselves rather
//!   than depending on `rand` so that every workload, kernel run and timing
//!   experiment in the reproduction is bit-reproducible from a `u64` seed,
//!   independent of external crate version churn.
//! * [`stats`] — summary statistics and least-squares fitting, used by the
//!   timing extrapolation and by the benchmark harness.
//! * [`table`] — markdown/CSV table rendering for the experiment binaries.
//! * [`units`] — cycle/time/byte quantities and pretty-printing.
//!
//! Nothing in here knows about GPUs or gravity; it is deliberately the
//! dependency-free bottom of the stack.

#![warn(missing_docs)]

pub mod crc;
pub mod rng;
pub mod stats;
pub mod table;
pub mod units;
pub mod vec3;

pub use crc::crc32;
pub use rng::{Rng64, SplitMix64, Xoshiro256pp};
pub use stats::{geometric_mean, linear_fit, percentile, Histogram, Summary};
pub use table::Table;
pub use units::{format_bytes, format_duration_s, Cycles};
pub use vec3::Vec3;
