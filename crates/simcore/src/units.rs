//! Quantities and pretty-printing: GPU cycles, seconds, bytes.

use serde::{Deserialize, Serialize};

/// A count of GPU core clock cycles.
///
/// A newtype rather than a bare `u64` so that cycle arithmetic in the timing
/// engine cannot be silently mixed with byte counts or instruction counts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Raw count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Convert to seconds at a given core clock (Hz).
    #[inline]
    pub fn to_seconds(self, clock_hz: f64) -> f64 {
        assert!(clock_hz > 0.0, "clock must be positive");
        self.0 as f64 / clock_hz
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl core::ops::Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_sub(rhs.0).expect("cycle underflow"))
    }
}

impl core::ops::Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl core::fmt::Display for Cycles {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// Human-readable byte count (binary prefixes).
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut i = 0;
    while v >= 1024.0 && i + 1 < UNITS.len() {
        v /= 1024.0;
        i += 1;
    }
    if i == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[i])
    }
}

/// Human-readable duration from seconds.
pub fn format_duration_s(secs: f64) -> String {
    if secs < 0.0 {
        return format!("-{}", format_duration_s(-secs));
    }
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2} s")
    } else {
        format!("{:.1} min", secs / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(100) + Cycles(50);
        assert_eq!(a, Cycles(150));
        assert_eq!(a - Cycles(50), Cycles(100));
        assert_eq!(a * 2, Cycles(300));
        assert_eq!(Cycles(10).saturating_sub(Cycles(20)), Cycles::ZERO);
    }

    #[test]
    #[should_panic]
    fn cycles_sub_underflow_panics() {
        let _ = Cycles(1) - Cycles(2);
    }

    #[test]
    fn cycles_to_seconds() {
        // 1.35 GHz (8800 GTX shader clock): 1.35e9 cycles == 1 s.
        let s = Cycles(1_350_000_000).to_seconds(1.35e9);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn duration_formatting_bands() {
        assert!(format_duration_s(5e-9).ends_with("ns"));
        assert!(format_duration_s(5e-6).ends_with("µs"));
        assert!(format_duration_s(5e-3).ends_with("ms"));
        assert!(format_duration_s(5.0).ends_with(" s"));
        assert!(format_duration_s(600.0).ends_with("min"));
    }
}
