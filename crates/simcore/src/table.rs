//! Lightweight table rendering for the experiment harness.
//!
//! The benchmark binaries print markdown tables to stdout and write CSV files
//! into `results/`; both come from the same [`Table`] value so the two views
//! cannot drift apart.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular table of strings with a header row and a title.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Append a row of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Render as a GitHub-flavored markdown table (with title as a heading).
    pub fn to_markdown(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        let _ = writeln!(out);
        debug_assert_eq!(ncol, widths.len());
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV form to `path`, creating parent directories as needed.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a float with a fixed number of significant decimal places, trimming
/// noise — used by the experiment binaries for consistent table cells.
pub fn fnum(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["layout", "cycles"]);
        t.row(vec!["AoS".into(), "480".into()]);
        t.row(vec!["SoAoaS".into(), "320".into()]);
        t
    }

    #[test]
    fn markdown_contains_all_cells_and_alignment_rule() {
        let md = sample().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| layout |"));
        assert!(md.contains("AoS"));
        assert!(md.contains("SoAoaS"));
        assert!(md
            .lines()
            .any(|l| l.starts_with("|--") || l.starts_with("| -") || l.contains("---")));
    }

    #[test]
    fn csv_roundtrip_simple() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "layout,cycles");
        assert_eq!(lines.next().unwrap(), "AoS,480");
        assert_eq!(lines.next().unwrap(), "SoAoaS,320");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("q", &["a"]);
        t.row(vec!["has,comma".into()]);
        t.row(vec!["has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("simcore_table_test_{}", std::process::id()));
        let path = dir.join("nested/out.csv");
        sample().write_csv(&path).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(2.0, 0), "2");
    }
}
