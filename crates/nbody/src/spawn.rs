//! Deterministic workload generators — stand-ins for Gravit's spawn scripts.
//!
//! Every generator is a pure function of its parameters and a `u64` seed
//! (see the simcore RNG), so benchmark workloads are reproducible across
//! machines and runs.

use crate::model::Bodies;
use simcore::{Rng64, Vec3, Xoshiro256pp};

/// Uniform ball of radius `r`, bodies at rest, equal masses summing to
/// `total_mass`.
pub fn uniform_ball(n: usize, r: f32, total_mass: f32, seed: u64) -> Bodies {
    assert!(n > 0 && r > 0.0 && total_mass > 0.0);
    let mut rng = Xoshiro256pp::seeded(seed);
    let m = total_mass / n as f32;
    let mut b = Bodies::with_capacity(n);
    for _ in 0..n {
        b.push(rng.in_unit_ball() * r, Vec3::ZERO, m);
    }
    b
}

/// Plummer-like sphere: radius distribution `r = a / sqrt(u^(-2/3) − 1)`
/// (truncated at `10 a`), isotropic positions, bodies at rest.
pub fn plummer(n: usize, a: f32, total_mass: f32, seed: u64) -> Bodies {
    assert!(n > 0 && a > 0.0 && total_mass > 0.0);
    let mut rng = Xoshiro256pp::seeded(seed);
    let m = total_mass / n as f32;
    let mut b = Bodies::with_capacity(n);
    for _ in 0..n {
        let r = loop {
            let u = rng.next_f64().max(1e-9);
            let r = a
                * ((u.powf(-2.0 / 3.0) - 1.0) as f32)
                    .max(1e-12)
                    .sqrt()
                    .recip();
            if r.is_finite() && r < 10.0 * a {
                break r;
            }
        };
        b.push(rng.on_unit_sphere() * r, Vec3::ZERO, m);
    }
    b
}

/// A rotating disk "galaxy": a heavy central body plus `n − 1` light bodies
/// on near-circular orbits in the XY plane, the classic Gravit screenshot
/// workload.
///
/// `g` must match the force parameters used for the simulation, so the
/// circular speeds `v = sqrt(G·M_enc / r)` are consistent.
pub fn disk_galaxy(n: usize, radius: f32, central_mass: f32, g: f32, seed: u64) -> Bodies {
    assert!(n >= 2 && radius > 0.0 && central_mass > 0.0 && g > 0.0);
    let mut rng = Xoshiro256pp::seeded(seed);
    let mut b = Bodies::with_capacity(n);
    let disk_mass = central_mass * 0.1;
    let m = disk_mass / (n - 1) as f32;
    b.push(Vec3::ZERO, Vec3::ZERO, central_mass);
    for _ in 1..n {
        let d = rng.in_unit_disk_xy();
        // Avoid the singular center; bias outward a little.
        let rr = (d.norm().max(0.08)) * radius;
        let dir = d.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0));
        let pos = dir * rr + Vec3::new(0.0, 0.0, 0.02 * radius * rng.normal());
        // Circular speed about the central mass (disk self-gravity is a
        // perturbation at 10% mass).
        let v = (g * central_mass / rr).sqrt();
        let tangent = Vec3::new(-dir.y, dir.x, 0.0);
        b.push(pos, tangent * v, m);
    }
    b
}

/// Two disk galaxies on a collision course — the paper's "beautiful looking
/// gravity patterns" workload, and our largest-scale example scenario.
pub fn colliding_galaxies(
    n_each: usize,
    separation: f32,
    approach_speed: f32,
    seed: u64,
) -> Bodies {
    let g = 1.0;
    let a = disk_galaxy(n_each, separation * 0.25, 1.0, g, seed);
    let b2 = disk_galaxy(n_each, separation * 0.25, 1.0, g, seed.wrapping_add(1));
    let offset = Vec3::new(separation, separation * 0.15, 0.0);
    let kick = Vec3::new(-approach_speed, 0.0, 0.0);
    let mut merged = Bodies::with_capacity(2 * n_each);
    merged.extend(&a);
    for i in 0..b2.len() {
        merged.push(b2.pos[i] + offset, b2.vel[i] + kick, b2.mass[i]);
    }
    a.validate();
    merged.validate();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_ball(100, 5.0, 1.0, 9);
        let b = uniform_ball(100, 5.0, 1.0, 9);
        let c = uniform_ball(100, 5.0, 1.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ball_respects_radius_and_mass() {
        let b = uniform_ball(500, 3.0, 7.0, 1);
        assert_eq!(b.len(), 500);
        assert!((b.total_mass() - 7.0).abs() < 1e-3);
        assert!(b.pos.iter().all(|p| p.norm() <= 3.0 + 1e-4));
    }

    #[test]
    fn plummer_concentrates_mass_centrally() {
        let b = plummer(2000, 1.0, 1.0, 2);
        let inner = b.pos.iter().filter(|p| p.norm() < 1.0).count();
        let outer = b.pos.iter().filter(|p| p.norm() >= 1.0).count();
        assert!(
            inner > outer / 2,
            "Plummer half-mass radius ≈ 1.3a: inner {inner}, outer {outer}"
        );
        assert!(b.pos.iter().all(|p| p.norm() <= 10.0));
    }

    #[test]
    fn disk_orbits_are_roughly_circular() {
        let g = 1.0;
        let b = disk_galaxy(200, 4.0, 1.0, g, 3);
        assert_eq!(b.len(), 200);
        assert_eq!(b.mass[0], 1.0);
        for i in 1..b.len() {
            let r = Vec3::new(b.pos[i].x, b.pos[i].y, 0.0);
            let v = b.vel[i];
            // Velocity ⟂ radius and |v| ≈ sqrt(GM/r).
            let cosang = r.normalized().unwrap().dot(v.normalized().unwrap()).abs();
            assert!(cosang < 1e-3, "body {i} velocity not tangential");
            let vexp = (g * 1.0 / r.norm()).sqrt();
            assert!((v.norm() - vexp).abs() / vexp < 1e-3, "body {i} speed off");
        }
    }

    #[test]
    fn collision_workload_is_two_separated_groups() {
        let b = colliding_galaxies(300, 20.0, 0.5, 4);
        assert_eq!(b.len(), 600);
        let left = b.pos.iter().filter(|p| p.x < 10.0).count();
        let right = b.pos.iter().filter(|p| p.x >= 10.0).count();
        assert!(left >= 290 && right >= 290, "split {left}/{right}");
        // The second galaxy approaches.
        let mean_vx_right: f32 = b
            .pos
            .iter()
            .zip(&b.vel)
            .filter(|(p, _)| p.x >= 10.0)
            .map(|(_, v)| v.x)
            .sum::<f32>()
            / right as f32;
        assert!(mean_vx_right < -0.2);
    }
}
