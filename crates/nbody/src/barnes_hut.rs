//! Barnes–Hut octree force calculation (paper Sec. I-C).
//!
//! The classic O(n log n) scheme the paper describes:
//!
//! 1. build an octree over the bodies;
//! 2. compute total mass and center of mass per cell, bottom-up;
//! 3. per body, walk the tree: a cell whose opening ratio `s/d < θ` is
//!    treated as a point mass, otherwise descend.
//!
//! Both a recursive and an explicit-stack **iterative** traversal are
//! provided: Sec. I-D's point is precisely that CC-1.x CUDA has no recursion,
//! so a GPU port would need the iterative form. Forces use the same softened
//! law as every other solver ([`crate::model::accel_one_exact`]).

use crate::model::{accel_one_exact, Bodies, ForceParams};
use rayon::prelude::*;
use simcore::Vec3;

/// Bodies per leaf before a cell splits. Small buckets keep the tree shallow
/// enough without per-body allocation.
const LEAF_CAP: usize = 8;

/// A node of the octree (indices into the arena).
#[derive(Debug, Clone)]
enum Node {
    /// A leaf holding body indices.
    Leaf { bodies: Vec<u32> },
    /// An internal cell with up to 8 children.
    Cell { children: [Option<u32>; 8] },
}

/// An octree over a body set.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    /// Per-node center of the cube.
    centers: Vec<Vec3>,
    /// Per-node cube side length.
    sides: Vec<f32>,
    /// Per-node total mass.
    masses: Vec<f32>,
    /// Per-node center of mass.
    coms: Vec<Vec3>,
    root: u32,
}

impl Octree {
    /// Build the tree over `b` (step 1) and compute mass moments (step 2).
    pub fn build(b: &Bodies) -> Octree {
        assert!(!b.is_empty(), "cannot build a tree over nothing");
        let (lo, hi) = b.bounds();
        let center = (lo + hi) * 0.5;
        let side = (hi - lo).max_component().max(1e-6) * 1.0001;
        let mut t = Octree {
            nodes: vec![Node::Leaf {
                bodies: (0..b.len() as u32).collect(),
            }],
            centers: vec![center],
            sides: vec![side],
            masses: vec![0.0],
            coms: vec![Vec3::ZERO],
            root: 0,
        };
        t.split(0, b, 0);
        t.compute_moments(t.root, b);
        t
    }

    /// Number of nodes in the arena.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (longest root→leaf path).
    pub fn depth(&self) -> usize {
        fn d(t: &Octree, n: u32) -> usize {
            match &t.nodes[n as usize] {
                Node::Leaf { .. } => 1,
                Node::Cell { children } => {
                    1 + children
                        .iter()
                        .flatten()
                        .map(|&c| d(t, c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        d(self, self.root)
    }

    /// Total mass at the root (should equal the body total).
    pub fn root_mass(&self) -> f32 {
        self.masses[self.root as usize]
    }

    /// Root center of mass.
    pub fn root_com(&self) -> Vec3 {
        self.coms[self.root as usize]
    }

    fn split(&mut self, node: u32, b: &Bodies, depth: usize) {
        let Node::Leaf { bodies } = &self.nodes[node as usize] else {
            return;
        };
        if bodies.len() <= LEAF_CAP || depth > 48 {
            return;
        }
        let bodies = bodies.clone();
        let center = self.centers[node as usize];
        let half = self.sides[node as usize] * 0.5;
        let quarter = half * 0.5;
        let mut buckets: [Vec<u32>; 8] = Default::default();
        for &bi in &bodies {
            buckets[octant(center, b.pos[bi as usize])].push(bi);
        }
        // A degenerate split (all bodies coincident) stays a leaf.
        if buckets.iter().filter(|x| !x.is_empty()).count() <= 1
            && buckets.iter().map(|x| x.len()).max().unwrap_or(0) == bodies.len()
        {
            return;
        }
        let mut children: [Option<u32>; 8] = [None; 8];
        for (o, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let id = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf { bodies: bucket });
            self.centers.push(center + octant_offset(o) * quarter);
            self.sides.push(half);
            self.masses.push(0.0);
            self.coms.push(Vec3::ZERO);
            children[o] = Some(id);
            self.split(id, b, depth + 1);
        }
        self.nodes[node as usize] = Node::Cell { children };
    }

    fn compute_moments(&mut self, node: u32, b: &Bodies) -> (f32, Vec3) {
        let (m, weighted) = match self.nodes[node as usize].clone() {
            Node::Leaf { bodies } => {
                let mut m = 0.0f32;
                let mut w = Vec3::ZERO;
                for bi in bodies {
                    let mass = b.mass[bi as usize];
                    m += mass;
                    w += b.pos[bi as usize] * mass;
                }
                (m, w)
            }
            Node::Cell { children } => {
                let mut m = 0.0f32;
                let mut w = Vec3::ZERO;
                for c in children.into_iter().flatten() {
                    let (cm, ccom) = self.compute_moments(c, b);
                    m += cm;
                    w += ccom * cm;
                }
                (m, w)
            }
        };
        let com = if m > 0.0 {
            weighted / m
        } else {
            self.centers[node as usize]
        };
        self.masses[node as usize] = m;
        self.coms[node as usize] = com;
        (m, com)
    }

    /// Acceleration on a probe at `p` via recursive traversal (step 3).
    pub fn accel_recursive(&self, b: &Bodies, params: &ForceParams, p: Vec3, theta: f32) -> Vec3 {
        let eps2 = params.eps_sq();
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        self.accel_rec(
            self.root, b, params.g, eps2, p, theta, &mut ax, &mut ay, &mut az,
        );
        Vec3::new(ax, ay, az)
    }

    #[allow(clippy::too_many_arguments)]
    fn accel_rec(
        &self,
        node: u32,
        b: &Bodies,
        g: f32,
        eps2: f32,
        p: Vec3,
        theta: f32,
        ax: &mut f32,
        ay: &mut f32,
        az: &mut f32,
    ) {
        let ni = node as usize;
        if self.masses[ni] == 0.0 {
            return;
        }
        let d = (self.coms[ni] - p).norm();
        let open = self.sides[ni] / d.max(1e-20);
        match &self.nodes[ni] {
            Node::Cell { children } if open >= theta => {
                for c in children.iter().flatten() {
                    self.accel_rec(*c, b, g, eps2, p, theta, ax, ay, az);
                }
            }
            Node::Leaf { bodies } => {
                for &bi in bodies {
                    accel_one_exact(
                        p,
                        b.pos[bi as usize],
                        g * b.mass[bi as usize],
                        eps2,
                        ax,
                        ay,
                        az,
                    );
                }
            }
            _ => {
                // Far enough: the whole cell acts as a point mass at its COM.
                accel_one_exact(p, self.coms[ni], g * self.masses[ni], eps2, ax, ay, az);
            }
        }
    }

    /// Acceleration via an explicit-stack iterative traversal — the
    /// recursion-free form a CC-1.x GPU port would need (paper Sec. I-D).
    pub fn accel_iterative(&self, b: &Bodies, params: &ForceParams, p: Vec3, theta: f32) -> Vec3 {
        let eps2 = params.eps_sq();
        let g = params.g;
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        let mut stack: Vec<u32> = vec![self.root];
        while let Some(node) = stack.pop() {
            let ni = node as usize;
            if self.masses[ni] == 0.0 {
                continue;
            }
            let d = (self.coms[ni] - p).norm();
            let open = self.sides[ni] / d.max(1e-20);
            match &self.nodes[ni] {
                Node::Cell { children } if open >= theta => {
                    // Push in reverse so traversal order matches recursion.
                    for c in children.iter().rev().flatten() {
                        stack.push(*c);
                    }
                }
                Node::Leaf { bodies } => {
                    for &bi in bodies {
                        accel_one_exact(
                            p,
                            b.pos[bi as usize],
                            g * b.mass[bi as usize],
                            eps2,
                            &mut ax,
                            &mut ay,
                            &mut az,
                        );
                    }
                }
                _ => {
                    accel_one_exact(
                        p,
                        self.coms[ni],
                        g * self.masses[ni],
                        eps2,
                        &mut ax,
                        &mut ay,
                        &mut az,
                    );
                }
            }
        }
        Vec3::new(ax, ay, az)
    }
}

/// All-body accelerations via Barnes–Hut, Rayon-parallel over targets.
pub fn accelerations_bh(b: &Bodies, params: &ForceParams, theta: f32) -> Vec<Vec3> {
    let tree = Octree::build(b);
    b.pos
        .par_iter()
        .map(|&p| tree.accel_recursive(b, params, p, theta))
        .collect()
}

fn octant(center: Vec3, p: Vec3) -> usize {
    ((p.x >= center.x) as usize)
        | (((p.y >= center.y) as usize) << 1)
        | (((p.z >= center.z) as usize) << 2)
}

fn octant_offset(o: usize) -> Vec3 {
    Vec3::new(
        if o & 1 != 0 { 1.0 } else { -1.0 },
        if o & 2 != 0 { 1.0 } else { -1.0 },
        if o & 4 != 0 { 1.0 } else { -1.0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::accelerations;
    use crate::spawn;

    #[test]
    fn moments_match_body_totals() {
        let b = spawn::uniform_ball(500, 5.0, 2.0, 1);
        let t = Octree::build(&b);
        assert!((t.root_mass() as f64 - b.total_mass()).abs() < 1e-2);
        assert!((t.root_com() - b.center_of_mass()).norm() < 1e-3);
        assert!(t.n_nodes() > 1);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn theta_zero_equals_direct_sum() {
        // θ = 0 never opens a cell by the s/d < θ criterion... it always
        // opens (open >= 0 is true), so every interaction is exact.
        let b = spawn::uniform_ball(200, 3.0, 1.0, 2);
        let p = ForceParams::default();
        let t = Octree::build(&b);
        let direct = accelerations(&b, &p);
        for (i, d) in direct.iter().enumerate() {
            let a = t.accel_recursive(&b, &p, b.pos[i], 0.0);
            let err = (a - *d).norm() / d.norm().max(1e-12);
            assert!(err < 1e-5, "body {i}: err {err}");
        }
    }

    #[test]
    fn moderate_theta_approximates_direct() {
        let b = spawn::uniform_ball(800, 10.0, 1.0, 3);
        let p = ForceParams::default();
        let direct = accelerations(&b, &p);
        let bh = accelerations_bh(&b, &p, 0.5);
        let mut worst = 0.0f32;
        for i in 0..b.len() {
            let err = (bh[i] - direct[i]).norm() / direct[i].norm().max(1e-9);
            worst = worst.max(err);
        }
        assert!(
            worst < 0.05,
            "worst relative error {worst} too large for θ=0.5"
        );
    }

    #[test]
    fn iterative_matches_recursive_exactly() {
        let b = spawn::uniform_ball(300, 8.0, 1.0, 4);
        let p = ForceParams::default();
        let t = Octree::build(&b);
        for i in (0..b.len()).step_by(17) {
            let r = t.accel_recursive(&b, &p, b.pos[i], 0.7);
            let it = t.accel_iterative(&b, &p, b.pos[i], 0.7);
            assert_eq!(r, it, "body {i}: traversal order must match");
        }
    }

    #[test]
    fn coincident_bodies_do_not_recurse_forever() {
        let mut b = Bodies::default();
        for _ in 0..50 {
            b.push(Vec3::new(1.0, 1.0, 1.0), Vec3::ZERO, 1.0);
        }
        // A couple elsewhere so bounds are non-degenerate.
        b.push(Vec3::ZERO, Vec3::ZERO, 1.0);
        let t = Octree::build(&b);
        assert!(t.depth() < 60);
    }

    #[test]
    fn bigger_theta_is_cheaper_but_less_accurate() {
        let b = spawn::uniform_ball(600, 10.0, 1.0, 6);
        let p = ForceParams::default();
        let direct = accelerations(&b, &p);
        let err_at = |theta: f32| {
            let bh = accelerations_bh(&b, &p, theta);
            let mut s = 0.0f64;
            for i in 0..b.len() {
                s += ((bh[i] - direct[i]).norm() / direct[i].norm().max(1e-9)) as f64;
            }
            s / b.len() as f64
        };
        let tight = err_at(0.3);
        let loose = err_at(1.2);
        assert!(
            tight < loose,
            "θ=0.3 err {tight} should beat θ=1.2 err {loose}"
        );
    }
}

// ---------------------------------------------------------------------------
// Linearized tree — the GPU-consumable form (paper Sec. I-D)
// ---------------------------------------------------------------------------

/// Maximum bodies per linearized leaf (the GPU kernel's fixed inner bound).
pub const LINEAR_LEAF_CAP: usize = 8;
/// Maximum children per linearized internal node.
pub const LINEAR_FANOUT: usize = 8;

/// An octree flattened into arrays — the form a recursion-free, iterative
/// traversal (CPU or GPU) consumes. Children of a node are contiguous;
/// oversized leaves are split into sub-trees so every leaf holds at most
/// [`LINEAR_LEAF_CAP`] bodies.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTree {
    /// Per node: center of mass x, y, z and total mass.
    pub com: Vec<[f32; 4]>,
    /// Per node: cell side length squared (for the s² ≥ θ²·d² opening test).
    pub side_sq: Vec<f32>,
    /// Per node: `[first_child, n_children, body_start, n_bodies]` — internal
    /// nodes have `n_children > 0`, leaves have `n_bodies > 0`.
    pub meta: Vec<[u32; 4]>,
    /// Leaf bodies, contiguous per leaf: x, y, z, mass (mass may be
    /// pre-scaled by G for device use).
    pub bodies: Vec<[f32; 4]>,
}

impl LinearTree {
    /// Flatten an octree. `g` pre-scales the stored masses (both the node
    /// COM masses and the leaf bodies), matching the GPU kernels' convention.
    pub fn build(tree: &Octree, b: &Bodies, g: f32) -> LinearTree {
        let mut lt = LinearTree {
            com: Vec::new(),
            side_sq: Vec::new(),
            meta: Vec::new(),
            bodies: Vec::new(),
        };
        lt.emit(tree, b, g, tree.root);
        lt
    }

    /// Flatten directly from bodies (builds the octree internally).
    pub fn from_bodies(b: &Bodies, g: f32) -> LinearTree {
        LinearTree::build(&Octree::build(b), b, g)
    }

    /// Number of linearized nodes.
    pub fn n_nodes(&self) -> usize {
        self.com.len()
    }

    fn push_node(&mut self, com: Vec3, mass: f32, side_sq: f32) -> usize {
        let id = self.com.len();
        self.com.push([com.x, com.y, com.z, mass]);
        self.side_sq.push(side_sq);
        self.meta.push([0, 0, 0, 0]);
        id
    }

    /// Emit node `node` of the octree; returns its linear id.
    fn emit(&mut self, tree: &Octree, b: &Bodies, g: f32, node: u32) -> usize {
        let ni = node as usize;
        let side = tree.sides[ni];
        let id = self.push_node(tree.coms[ni], g * tree.masses[ni], side * side);
        match &tree.nodes[ni] {
            Node::Leaf { bodies } => {
                if bodies.len() <= LINEAR_LEAF_CAP {
                    self.fill_leaf(id, bodies, b, g);
                } else {
                    // Oversized (degenerate) leaf: split into pseudo-children.
                    self.split_oversized(id, bodies.clone(), b, g, side);
                }
            }
            Node::Cell { children } => {
                let kids: Vec<u32> = children.iter().flatten().copied().collect();
                // Children must be contiguous: reserve by emitting into a
                // scratch then record ids — emission is depth-first, so ids
                // of siblings are NOT contiguous in general. Fix: emit
                // children breadth-contiguously by first pushing placeholder
                // nodes, then filling them.
                let first = self.com.len();
                for &k in &kids {
                    let kni = k as usize;
                    let ks = tree.sides[kni];
                    self.push_node(tree.coms[kni], g * tree.masses[kni], ks * ks);
                }
                self.meta[id] = [first as u32, kids.len() as u32, 0, 0];
                for (slot, &k) in kids.iter().enumerate() {
                    self.fill_from(tree, b, g, k, first + slot);
                }
            }
        }
        id
    }

    /// Fill the already-allocated linear node `id` with octree node `node`'s
    /// contents (children are appended at the end of the arrays).
    fn fill_from(&mut self, tree: &Octree, b: &Bodies, g: f32, node: u32, id: usize) {
        let ni = node as usize;
        match &tree.nodes[ni] {
            Node::Leaf { bodies } => {
                if bodies.len() <= LINEAR_LEAF_CAP {
                    self.fill_leaf(id, bodies, b, g);
                } else {
                    self.split_oversized(id, bodies.clone(), b, g, tree.sides[ni]);
                }
            }
            Node::Cell { children } => {
                let kids: Vec<u32> = children.iter().flatten().copied().collect();
                let first = self.com.len();
                for &k in &kids {
                    let kni = k as usize;
                    let ks = tree.sides[kni];
                    self.push_node(tree.coms[kni], g * tree.masses[kni], ks * ks);
                }
                self.meta[id] = [first as u32, kids.len() as u32, 0, 0];
                for (slot, &k) in kids.iter().enumerate() {
                    self.fill_from(tree, b, g, k, first + slot);
                }
            }
        }
    }

    fn fill_leaf(&mut self, id: usize, members: &[u32], b: &Bodies, g: f32) {
        let start = self.bodies.len() as u32;
        for &bi in members {
            let p = b.pos[bi as usize];
            self.bodies.push([p.x, p.y, p.z, g * b.mass[bi as usize]]);
        }
        self.meta[id] = [0, 0, start, members.len() as u32];
    }

    /// Split an oversized leaf into chains of pseudo-internal nodes whose
    /// leaves hold ≤ LINEAR_LEAF_CAP bodies each. The pseudo-children share
    /// the parent's cell geometry (conservative for the opening test).
    fn split_oversized(&mut self, id: usize, members: Vec<u32>, b: &Bodies, g: f32, side: f32) {
        let chunks: Vec<Vec<u32>> = members
            .chunks(LINEAR_LEAF_CAP)
            .map(|c| c.to_vec())
            .collect();
        if chunks.len() == 1 {
            self.fill_leaf(id, &chunks[0], b, g);
            return;
        }
        // Up to 8 direct chunks; more recurses (very rare).
        let groups: Vec<Vec<u32>> = if chunks.len() <= LINEAR_FANOUT {
            chunks
        } else {
            let per = members.len().div_ceil(LINEAR_FANOUT);
            members.chunks(per).map(|c| c.to_vec()).collect()
        };
        let first = self.com.len();
        for grp in &groups {
            let (com, mass) = group_com(grp, b);
            self.push_node(com, g * mass, side * side);
        }
        self.meta[id] = [first as u32, groups.len() as u32, 0, 0];
        for (slot, grp) in groups.into_iter().enumerate() {
            if grp.len() <= LINEAR_LEAF_CAP {
                self.fill_leaf(first + slot, &grp, b, g);
            } else {
                self.split_oversized(first + slot, grp, b, g, side);
            }
        }
    }

    /// Iterative traversal of the linear tree, in **exactly the order the
    /// GPU kernel uses** (push children ascending, pop LIFO; same operation
    /// order in the force accumulation). This is the bit-exact CPU reference
    /// for the GPU Barnes–Hut kernel. Masses are already G-scaled.
    // Statements mirror the BH kernel's fmad operand order for bit parity;
    // see `nbody::model::accel_one_exact`.
    #[allow(clippy::assign_op_pattern)]
    pub fn accel_kernel_order(&self, p: Vec3, theta_sq: f32, eps_sq: f32) -> Vec3 {
        let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
        let mut stack: Vec<u32> = vec![0];
        while let Some(node) = stack.pop() {
            let ni = node as usize;
            let c = self.com[ni];
            let dx = c[0] - p.x;
            let dy = c[1] - p.y;
            let dz = c[2] - p.z;
            let mut t = dx * dx;
            t = dy * dy + t;
            t = dz * dz + t;
            let thr = theta_sq * t;
            let meta = self.meta[ni];
            // "Far" when s² < θ²·d²; leaves and near-internal nodes descend.
            if self.side_sq[ni] < thr {
                let mut r2 = t + eps_sq;
                r2 = r2.max(crate::model::MIN_DIST_SQ);
                let rinv = 1.0 / r2.sqrt();
                let mut rc = rinv * rinv;
                rc = rc * rinv;
                let s = c[3] * rc;
                ax = dx * s + ax;
                ay = dy * s + ay;
                az = dz * s + az;
            } else if meta[1] > 0 {
                // Internal: push children ascending (kernel order).
                for cidx in 0..meta[1] {
                    stack.push(meta[0] + cidx);
                }
            } else {
                // Leaf: accumulate members in order.
                for j in 0..meta[3] {
                    let bref = self.bodies[(meta[2] + j) as usize];
                    crate::model::accel_one_exact(
                        p,
                        Vec3::new(bref[0], bref[1], bref[2]),
                        bref[3],
                        eps_sq,
                        &mut ax,
                        &mut ay,
                        &mut az,
                    );
                }
            }
        }
        Vec3::new(ax, ay, az)
    }

    /// Worst-case traversal stack depth over a body sample (for sizing the
    /// GPU kernel's shared-memory stack).
    pub fn max_stack_depth(&self, probes: &[Vec3], theta_sq: f32) -> usize {
        let mut worst = 0usize;
        for &p in probes {
            let mut depth = 1usize;
            let mut stack: Vec<u32> = vec![0];
            while let Some(node) = stack.pop() {
                let ni = node as usize;
                let c = self.com[ni];
                let d2 = (Vec3::new(c[0], c[1], c[2]) - p).norm_sq();
                let meta = self.meta[ni];
                if self.side_sq[ni] >= theta_sq * d2 && meta[1] > 0 {
                    for cidx in 0..meta[1] {
                        stack.push(meta[0] + cidx);
                    }
                }
                depth = depth.max(stack.len());
            }
            worst = worst.max(depth);
        }
        worst
    }
}

fn group_com(members: &[u32], b: &Bodies) -> (Vec3, f32) {
    let mut m = 0.0f32;
    let mut w = Vec3::ZERO;
    for &bi in members {
        m += b.mass[bi as usize];
        w += b.pos[bi as usize] * b.mass[bi as usize];
    }
    (if m > 0.0 { w / m } else { Vec3::ZERO }, m)
}

#[cfg(test)]
mod linear_tests {
    use super::*;
    use crate::direct::accelerations;
    use crate::model::ForceParams;
    use crate::spawn;

    #[test]
    fn linear_tree_conserves_mass_and_bodies() {
        let b = spawn::plummer(700, 1.0, 5.0, 9);
        let lt = LinearTree::from_bodies(&b, 1.0);
        assert_eq!(
            lt.bodies.len(),
            b.len(),
            "every body lands in exactly one leaf"
        );
        let leaf_mass: f64 = lt.bodies.iter().map(|x| x[3] as f64).sum();
        assert!((leaf_mass - b.total_mass()).abs() < 1e-2);
        // Every leaf within cap; children ranges valid.
        for (i, m) in lt.meta.iter().enumerate() {
            assert!(m[3] as usize <= LINEAR_LEAF_CAP, "node {i} leaf too big");
            assert!(m[0] as usize + m[1] as usize <= lt.n_nodes());
            assert!(m[2] as usize + m[3] as usize <= lt.bodies.len());
            assert!(
                m[1] > 0 || m[3] > 0 || lt.com[i][3] == 0.0,
                "node {i} is empty but massive"
            );
        }
    }

    #[test]
    fn oversized_degenerate_leaves_are_split() {
        let mut b = Bodies::default();
        for _ in 0..100 {
            b.push(Vec3::new(1.0, 1.0, 1.0), Vec3::ZERO, 1.0);
        }
        b.push(Vec3::ZERO, Vec3::ZERO, 1.0);
        let lt = LinearTree::from_bodies(&b, 1.0);
        assert_eq!(lt.bodies.len(), 101);
        assert!(lt.meta.iter().all(|m| m[3] as usize <= LINEAR_LEAF_CAP));
    }

    #[test]
    fn kernel_order_traversal_approximates_direct() {
        let b = spawn::uniform_ball(600, 8.0, 1.0, 21);
        let fp = ForceParams::default();
        let direct = accelerations(&b, &fp);
        let lt = LinearTree::from_bodies(&b, fp.g);
        let theta = 0.4f32;
        let mut worst = 0.0f32;
        for i in (0..b.len()).step_by(11) {
            let a = lt.accel_kernel_order(b.pos[i], theta * theta, fp.eps_sq());
            let err = (a - direct[i]).norm() / direct[i].norm().max(1e-9);
            worst = worst.max(err);
        }
        assert!(worst < 0.05, "worst error {worst} at θ=0.4");
    }

    #[test]
    fn theta_zero_kernel_order_is_exact_vs_direct_order_tolerance() {
        let b = spawn::uniform_ball(150, 3.0, 1.0, 2);
        let fp = ForceParams::default();
        let direct = accelerations(&b, &fp);
        let lt = LinearTree::from_bodies(&b, fp.g);
        for (i, d) in direct.iter().enumerate() {
            let a = lt.accel_kernel_order(b.pos[i], 0.0, fp.eps_sq());
            let err = (a - *d).norm() / d.norm().max(1e-12);
            assert!(err < 1e-4, "body {i}: {err}");
        }
    }

    #[test]
    fn stack_depth_is_bounded_for_realistic_workloads() {
        let b = spawn::plummer(4000, 1.0, 1.0, 5);
        let lt = LinearTree::from_bodies(&b, 1.0);
        let depth = lt.max_stack_depth(&b.pos, 0.25);
        assert!(depth > 1);
        assert!(depth <= 48, "depth {depth} exceeds the GPU stack budget");
    }
}
