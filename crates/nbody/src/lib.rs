//! # nbody — the physics substrate of the Gravit reproduction
//!
//! Gravit (Sec. I-B/I-C of the paper) is a Newtonian gravity simulator with
//! two far-field force algorithms: the O(n log n) Barnes–Hut tree code it
//! uses on CPUs, and the O(n²) all-pairs sum that maps perfectly onto a GPU.
//! This crate implements both, plus the supporting machinery:
//!
//! * [`model`] — the softened force law shared by every implementation
//!   (including the simulated GPU kernels, which must match it bit-for-bit);
//! * [`direct`] — O(n²) all-pairs solvers: serial, Rayon-parallel, and a
//!   cache-blocked variant mirroring the GPU tiling order;
//! * [`barnes_hut`] — octree construction, centers of mass, θ-criterion
//!   traversal (recursive and iterative — the paper notes the recursion is
//!   what makes the tree code hostile to CC-1.x CUDA);
//! * [`integrator`] — Euler and leapfrog (KDK) time stepping;
//! * [`energy`] — conservation diagnostics used by the test suite;
//! * [`spawn`] — deterministic workload generators (uniform ball, Plummer
//!   sphere, rotating disk, colliding galaxies) standing in for Gravit's
//!   spawn scripts.

#![warn(missing_docs)]

pub mod barnes_hut;
pub mod direct;
pub mod energy;
pub mod integrator;
pub mod model;
pub mod spawn;

pub use barnes_hut::Octree;
pub use direct::{accelerations, accelerations_par};
pub use integrator::{step_euler, step_leapfrog};
pub use model::{Bodies, ForceParams};
