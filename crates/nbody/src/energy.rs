//! Conservation diagnostics (f64 accumulation over the f32 state).

use crate::model::Bodies;
use crate::model::ForceParams;
use simcore::Vec3;

/// Total kinetic energy `Σ ½ m v²`.
pub fn kinetic_energy(b: &Bodies) -> f64 {
    (0..b.len())
        .map(|i| 0.5 * b.mass[i] as f64 * b.vel[i].norm_sq() as f64)
        .sum()
}

/// Total (softened) potential energy `−Σ_{i<j} G m_i m_j / sqrt(r² + ε²)`.
pub fn potential_energy(b: &Bodies, p: &ForceParams) -> f64 {
    let eps2 = p.eps_sq() as f64;
    let g = p.g as f64;
    let mut e = 0.0f64;
    for i in 0..b.len() {
        for j in (i + 1)..b.len() {
            let d = b.pos[i] - b.pos[j];
            let r2 = d.norm_sq() as f64 + eps2;
            e -= g * b.mass[i] as f64 * b.mass[j] as f64 / r2.sqrt();
        }
    }
    e
}

/// Total energy (kinetic + potential).
pub fn total_energy(b: &Bodies, p: &ForceParams) -> f64 {
    kinetic_energy(b) + potential_energy(b, p)
}

/// Total linear momentum `Σ m v` (f64 components).
pub fn momentum(b: &Bodies) -> [f64; 3] {
    let mut m = [0.0f64; 3];
    for i in 0..b.len() {
        m[0] += (b.mass[i] * b.vel[i].x) as f64;
        m[1] += (b.mass[i] * b.vel[i].y) as f64;
        m[2] += (b.mass[i] * b.vel[i].z) as f64;
    }
    m
}

/// Total angular momentum about the origin.
pub fn angular_momentum(b: &Bodies) -> [f64; 3] {
    let mut l = [0.0f64; 3];
    for i in 0..b.len() {
        let lv: Vec3 = b.pos[i].cross(b.vel[i]) * b.mass[i];
        l[0] += lv.x as f64;
        l[1] += lv.y as f64;
        l[2] += lv.z as f64;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinetic_of_known_state() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::new(3.0, 4.0, 0.0), 2.0);
        assert!((kinetic_energy(&b) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn potential_of_pair() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::ZERO, 2.0);
        b.push(Vec3::new(4.0, 0.0, 0.0), Vec3::ZERO, 3.0);
        let p = ForceParams {
            g: 1.0,
            softening: 0.0,
        };
        assert!((potential_energy(&b, &p) + 6.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn momentum_of_opposed_pair_is_zero() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 2.0);
        b.push(Vec3::ZERO, Vec3::new(-2.0, 0.0, 0.0), 1.0);
        assert_eq!(momentum(&b), [0.0; 3]);
    }

    #[test]
    fn angular_momentum_of_circular_motion() {
        let mut b = Bodies::default();
        b.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0), 3.0);
        let l = angular_momentum(&b);
        assert_eq!(l, [0.0, 0.0, 6.0]);
    }
}
