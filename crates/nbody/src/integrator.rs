//! Time integration — the "simple Newtonian physics" layer of Gravit.
//!
//! Two steppers:
//! * [`step_euler`] — the symplectic (semi-implicit) Euler step Gravit's
//!   simple update loop amounts to: kick then drift;
//! * [`step_leapfrog`] — kick-drift-kick, second order, the usual choice
//!   when energy conservation matters.
//!
//! Both also accept an optional **external force** field, covering the `F_E`
//! term of the paper's Eq. 1 (total = external + near + far field).

use crate::model::Bodies;
use simcore::Vec3;

/// An external acceleration field (the paper's `F_E`): evaluated per body.
pub type ExternalField<'a> = &'a dyn Fn(Vec3) -> Vec3;

/// Semi-implicit Euler: `v += a·dt; p += v·dt`.
pub fn step_euler(b: &mut Bodies, accels: &[Vec3], dt: f32, external: Option<ExternalField>) {
    assert_eq!(accels.len(), b.len());
    for (i, acc) in accels.iter().enumerate() {
        let mut a = *acc;
        if let Some(f) = external {
            a += f(b.pos[i]);
        }
        b.vel[i] += a * dt;
        b.pos[i] += b.vel[i] * dt;
    }
}

/// Leapfrog (kick-drift-kick). `accel` recomputes accelerations at the
/// drifted positions for the second half-kick.
pub fn step_leapfrog(
    b: &mut Bodies,
    accels: &[Vec3],
    dt: f32,
    external: Option<ExternalField>,
    accel: impl FnOnce(&Bodies) -> Vec<Vec3>,
) -> Vec<Vec3> {
    assert_eq!(accels.len(), b.len());
    let half = 0.5 * dt;
    for (i, acc) in accels.iter().enumerate() {
        let mut a = *acc;
        if let Some(f) = external {
            a += f(b.pos[i]);
        }
        b.vel[i] += a * half;
        b.pos[i] += b.vel[i] * dt;
    }
    let new_acc = accel(b);
    assert_eq!(new_acc.len(), b.len());
    for (i, acc) in new_acc.iter().enumerate() {
        let mut a = *acc;
        if let Some(f) = external {
            a += f(b.pos[i]);
        }
        b.vel[i] += a * half;
    }
    new_acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::accelerations;
    use crate::energy::total_energy;
    use crate::model::ForceParams;
    use crate::spawn;

    #[test]
    fn free_particle_moves_in_a_straight_line() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::new(1.0, 2.0, 0.0), 1.0);
        step_euler(&mut b, &[Vec3::ZERO], 0.5, None);
        assert_eq!(b.pos[0], Vec3::new(0.5, 1.0, 0.0));
    }

    #[test]
    fn external_field_accelerates() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::ZERO, 1.0);
        let g = |_p: Vec3| Vec3::new(0.0, -10.0, 0.0);
        step_euler(&mut b, &[Vec3::ZERO], 0.1, Some(&g));
        assert!((b.vel[0].y + 1.0).abs() < 1e-6);
    }

    #[test]
    fn circular_orbit_stays_circular_under_leapfrog() {
        // Central mass M=1 at origin (softening off), satellite on a circular
        // orbit at r=1: v = sqrt(GM/r) = 1.
        let p = ForceParams {
            g: 1.0,
            softening: 0.0,
        };
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::ZERO, 1.0);
        b.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 1e-9);
        let dt = 0.01;
        let mut acc = accelerations(&b, &p);
        for _ in 0..((2.0 * std::f32::consts::PI / dt) as usize) {
            acc = step_leapfrog(&mut b, &acc, dt, None, |bb| accelerations(bb, &p));
        }
        let r = (b.pos[1] - b.pos[0]).norm();
        assert!((r - 1.0).abs() < 0.02, "orbit radius drifted to {r}");
    }

    #[test]
    fn leapfrog_conserves_energy_better_than_euler() {
        let p = ForceParams {
            g: 1.0,
            softening: 0.1,
        };
        let dt = 0.01;
        let steps = 200;
        let run = |leap: bool| {
            let mut b = spawn::uniform_ball(60, 2.0, 1.0, 77);
            let e0 = total_energy(&b, &p);
            let mut acc = accelerations(&b, &p);
            for _ in 0..steps {
                if leap {
                    acc = step_leapfrog(&mut b, &acc, dt, None, |bb| accelerations(bb, &p));
                } else {
                    step_euler(&mut b, &acc, dt, None);
                    acc = accelerations(&b, &p);
                }
            }
            ((total_energy(&b, &p) - e0) / e0.abs()).abs()
        };
        let drift_euler = run(false);
        let drift_leap = run(true);
        assert!(
            drift_leap < drift_euler,
            "leapfrog drift {drift_leap} should beat euler drift {drift_euler}"
        );
        assert!(drift_leap < 0.05, "leapfrog drift {drift_leap} too large");
    }

    #[test]
    #[should_panic]
    fn mismatched_accel_slice_rejected() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::ZERO, 1.0);
        step_euler(&mut b, &[], 0.1, None);
    }
}
