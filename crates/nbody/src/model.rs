//! The shared force model and particle-set container.
//!
//! Every force implementation in the workspace — serial CPU, Rayon CPU,
//! Barnes–Hut, and the simulated GPU kernels — evaluates the same Plummer-
//! softened inverse-square law:
//!
//! ```text
//! a_i = Σ_j  G · m_j · (p_j − p_i) / (|p_j − p_i|² + ε²)^(3/2)
//! ```
//!
//! With softening the `i == j` term is exactly zero, so no branch is needed —
//! the same trick the GPU Gems n-body kernel (which the paper's kernel
//! structure follows) uses in place of Gravit's `if (i != j)`.
//!
//! [`accel_one_exact`] spells out the *operation order* of the GPU kernel's
//! inner loop; the direct CPU solver uses it verbatim so CPU and simulated
//! GPU results are bit-identical, which the integration tests assert.

use simcore::Vec3;

/// Floor applied to the squared distance — keeps the unsoftened (ε = 0)
/// configuration finite at exact overlap. The GPU kernels use the same
/// immediate in their `max` instruction.
pub const MIN_DIST_SQ: f32 = 1e-12;

/// Parameters of the force law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForceParams {
    /// Gravitational constant.
    pub g: f32,
    /// Plummer softening length ε.
    pub softening: f32,
}

impl Default for ForceParams {
    fn default() -> Self {
        // Gravit's dimensionless units: G = 1, with a small softening to keep
        // close encounters integrable.
        ForceParams {
            g: 1.0,
            softening: 0.05,
        }
    }
}

impl ForceParams {
    /// ε² as the kernels consume it.
    #[inline]
    pub fn eps_sq(&self) -> f32 {
        self.softening * self.softening
    }
}

/// A particle set in structure-of-arrays form (the natural shape for the CPU
/// solvers; conversions to the paper's GPU layouts live in the layouts crate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bodies {
    /// Positions.
    pub pos: Vec<Vec3>,
    /// Velocities.
    pub vel: Vec<Vec3>,
    /// Masses.
    pub mass: Vec<f32>,
}

impl Bodies {
    /// An empty set with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Bodies {
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            mass: Vec::with_capacity(n),
        }
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Append one body.
    pub fn push(&mut self, pos: Vec3, vel: Vec3, mass: f32) {
        assert!(
            mass >= 0.0 && mass.is_finite(),
            "mass must be finite and non-negative"
        );
        assert!(pos.is_finite() && vel.is_finite(), "non-finite body state");
        self.pos.push(pos);
        self.vel.push(vel);
        self.mass.push(mass);
    }

    /// Append all bodies of another set.
    pub fn extend(&mut self, other: &Bodies) {
        self.pos.extend_from_slice(&other.pos);
        self.vel.extend_from_slice(&other.vel);
        self.mass.extend_from_slice(&other.mass);
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().map(|&m| m as f64).sum()
    }

    /// Center of mass (f64 accumulation).
    pub fn center_of_mass(&self) -> Vec3 {
        let mut cx = 0.0f64;
        let mut cy = 0.0f64;
        let mut cz = 0.0f64;
        let mut m = 0.0f64;
        for i in 0..self.len() {
            let w = self.mass[i] as f64;
            cx += self.pos[i].x as f64 * w;
            cy += self.pos[i].y as f64 * w;
            cz += self.pos[i].z as f64 * w;
            m += w;
        }
        if m == 0.0 {
            Vec3::ZERO
        } else {
            Vec3::new((cx / m) as f32, (cy / m) as f32, (cz / m) as f32)
        }
    }

    /// Axis-aligned bounding box of all positions.
    pub fn bounds(&self) -> (Vec3, Vec3) {
        assert!(!self.is_empty());
        let mut lo = self.pos[0];
        let mut hi = self.pos[0];
        for p in &self.pos[1..] {
            lo = lo.min(*p);
            hi = hi.max(*p);
        }
        (lo, hi)
    }

    /// Validate invariants (finite state, consistent lengths).
    pub fn validate(&self) {
        assert_eq!(self.pos.len(), self.vel.len());
        assert_eq!(self.pos.len(), self.mass.len());
        for i in 0..self.len() {
            assert!(
                self.pos[i].is_finite() && self.vel[i].is_finite(),
                "body {i} non-finite"
            );
            assert!(
                self.mass[i].is_finite() && self.mass[i] >= 0.0,
                "body {i} bad mass"
            );
        }
    }
}

/// The pairwise acceleration contribution of a body at `pj` with mass `mj`
/// on a body at `pi`, accumulated into `(ax, ay, az)` — in **exactly** the
/// operation order of the GPU kernel's inner loop (see `gpu-kernels::force`):
/// mul, mad, mad, add, max, rsqrt, mul, mul, mul, mad ×3.
///
/// `g_mj` is `G · m_j` pre-multiplied (the kernels bake G into the masses at
/// upload; the CPU does the same for bit parity).
#[inline]
// The statement forms mirror the GPU kernel's fmad operand order exactly
// (bit-identical CPU/GPU physics is asserted by the equivalence tests), so
// clippy's `a += b` rewrite is intentionally not applied.
#[allow(clippy::too_many_arguments, clippy::assign_op_pattern)]
pub fn accel_one_exact(
    pi: Vec3,
    pj: Vec3,
    g_mj: f32,
    eps_sq: f32,
    ax: &mut f32,
    ay: &mut f32,
    az: &mut f32,
) {
    let dx = pj.x - pi.x;
    let dy = pj.y - pi.y;
    let dz = pj.z - pi.z;
    let mut t = dx * dx;
    t = dy * dy + t;
    t = dz * dz + t;
    let mut r2 = t + eps_sq;
    r2 = r2.max(MIN_DIST_SQ);
    let rinv = 1.0 / r2.sqrt();
    let mut rc = rinv * rinv;
    rc = rc * rinv;
    let s = g_mj * rc;
    *ax = dx * s + *ax;
    *ay = dy * s + *ay;
    *az = dz * s + *az;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_interaction_is_exactly_zero() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        accel_one_exact(p, p, 5.0, 0.0025, &mut ax, &mut ay, &mut az);
        assert_eq!((ax, ay, az), (0.0, 0.0, 0.0));
    }

    #[test]
    fn unsoftened_matches_newton_for_unit_case() {
        // Two unit masses 2 apart on x: |a| = G·m/r² = 0.25.
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        accel_one_exact(
            Vec3::ZERO,
            Vec3::new(2.0, 0.0, 0.0),
            1.0,
            0.0,
            &mut ax,
            &mut ay,
            &mut az,
        );
        assert!((ax - 0.25).abs() < 1e-6, "ax = {ax}");
        assert_eq!((ay, az), (0.0, 0.0));
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let eps2 = 0.01f32;
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        accel_one_exact(
            Vec3::ZERO,
            Vec3::new(1e-6, 0.0, 0.0),
            1.0,
            eps2,
            &mut ax,
            &mut ay,
            &mut az,
        );
        assert!(ax.is_finite());
        // Max possible |a| under Plummer softening is bounded by m·d/(ε²)^1.5.
        assert!(ax.abs() < 1.0 / eps2.powf(1.5));
    }

    #[test]
    fn force_is_attractive_toward_source() {
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        accel_one_exact(
            Vec3::ZERO,
            Vec3::new(-3.0, 4.0, 0.0),
            2.0,
            0.0,
            &mut ax,
            &mut ay,
            &mut az,
        );
        assert!(ax < 0.0 && ay > 0.0, "acceleration points at the source");
    }

    #[test]
    fn bodies_bookkeeping() {
        let mut b = Bodies::with_capacity(4);
        assert!(b.is_empty());
        b.push(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, 2.0);
        b.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::ZERO, 2.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_mass(), 4.0);
        assert_eq!(b.center_of_mass(), Vec3::ZERO);
        let (lo, hi) = b.bounds();
        assert_eq!(lo, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(hi, Vec3::new(1.0, 0.0, 0.0));
        b.validate();
    }

    #[test]
    #[should_panic]
    fn nan_position_rejected() {
        let mut b = Bodies::default();
        b.push(Vec3::new(f32::NAN, 0.0, 0.0), Vec3::ZERO, 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_mass_rejected() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::ZERO, -1.0);
    }

    #[test]
    fn default_params_are_gravit_like() {
        let p = ForceParams::default();
        assert_eq!(p.g, 1.0);
        assert!((p.eps_sq() - 0.0025).abs() < 1e-9);
    }
}
