//! O(n²) all-pairs force computation — the algorithm the paper ports to CUDA.
//!
//! Three variants share [`crate::model::accel_one_exact`]:
//!
//! * [`accelerations`] — the serial loop (paper Fig. 1), the "original CPU
//!   implementation" baseline of the 87× claim;
//! * [`accelerations_par`] — Rayon data-parallel over target bodies, the fair
//!   multi-core CPU comparator;
//! * [`accelerations_tiled`] — serial but iterating sources in K-sized tiles,
//!   mirroring the GPU kernel's shared-memory tiling. Because f32 addition is
//!   order-sensitive, bit-exact CPU↔GPU comparisons use this variant with the
//!   GPU's tile size (all variants iterate sources in ascending order, so
//!   they are in fact all bit-identical — a property the tests pin down).

use crate::model::{accel_one_exact, Bodies, ForceParams};
use rayon::prelude::*;
use simcore::Vec3;

/// Serial O(n²) accelerations.
pub fn accelerations(b: &Bodies, params: &ForceParams) -> Vec<Vec3> {
    let eps2 = params.eps_sq();
    let n = b.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(accel_on(b, params.g, eps2, b.pos[i], 0, n));
    }
    out
}

/// Rayon-parallel O(n²) accelerations (identical results to the serial
/// version: each body's source loop is still sequential and ascending).
pub fn accelerations_par(b: &Bodies, params: &ForceParams) -> Vec<Vec3> {
    let eps2 = params.eps_sq();
    let n = b.len();
    (0..n)
        .into_par_iter()
        .map(|i| accel_on(b, params.g, eps2, b.pos[i], 0, n))
        .collect()
}

/// Serial O(n²) with the source loop blocked into `tile`-sized chunks, the
/// exact summation order of the tiled GPU kernel.
pub fn accelerations_tiled(b: &Bodies, params: &ForceParams, tile: usize) -> Vec<Vec3> {
    assert!(tile > 0);
    let eps2 = params.eps_sq();
    let n = b.len();
    let mut out = vec![Vec3::ZERO; n];
    for (i, o) in out.iter_mut().enumerate() {
        let pi = b.pos[i];
        let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
        let mut t0 = 0;
        while t0 < n {
            let t1 = (t0 + tile).min(n);
            for j in t0..t1 {
                accel_one_exact(
                    pi,
                    b.pos[j],
                    params.g * b.mass[j],
                    eps2,
                    &mut ax,
                    &mut ay,
                    &mut az,
                );
            }
            t0 = t1;
        }
        *o = Vec3::new(ax, ay, az);
    }
    out
}

/// Acceleration on a probe at `pi` from sources `[j0, j1)`.
fn accel_on(b: &Bodies, g: f32, eps2: f32, pi: Vec3, j0: usize, j1: usize) -> Vec3 {
    let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
    for j in j0..j1 {
        accel_one_exact(pi, b.pos[j], g * b.mass[j], eps2, &mut ax, &mut ay, &mut az);
    }
    Vec3::new(ax, ay, az)
}

/// Acceleration at an arbitrary probe point (not a member body) — used by the
/// external-force hooks and by tests.
pub fn accel_at_point(b: &Bodies, params: &ForceParams, p: Vec3) -> Vec3 {
    accel_on(b, params.g, params.eps_sq(), p, 0, b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spawn;

    fn ball(n: usize, seed: u64) -> Bodies {
        spawn::uniform_ball(n, 10.0, 1.0, seed)
    }

    #[test]
    fn two_body_symmetry() {
        let mut b = Bodies::default();
        b.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::ZERO, 3.0);
        b.push(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, 1.0);
        let a = accelerations(
            &b,
            &ForceParams {
                g: 1.0,
                softening: 0.0,
            },
        );
        // m_i a_i must be equal and opposite.
        assert!((3.0 * a[0].x + 1.0 * a[1].x).abs() < 1e-6);
        assert!(a[0].x > 0.0 && a[1].x < 0.0);
        // |a_0| = G·m_1/4, |a_1| = G·m_0/4.
        assert!((a[0].x - 0.25).abs() < 1e-6);
        assert!((a[1].x + 0.75).abs() < 1e-6);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let b = ball(300, 42);
        let p = ForceParams::default();
        let s = accelerations(&b, &p);
        let r = accelerations_par(&b, &p);
        assert_eq!(s.len(), r.len());
        for i in 0..s.len() {
            assert_eq!(s[i].x.to_bits(), r[i].x.to_bits(), "body {i} x");
            assert_eq!(s[i].y.to_bits(), r[i].y.to_bits(), "body {i} y");
            assert_eq!(s[i].z.to_bits(), r[i].z.to_bits(), "body {i} z");
        }
    }

    #[test]
    fn tiled_matches_serial_bitwise_any_tile() {
        let b = ball(257, 7); // deliberately not a tile multiple
        let p = ForceParams::default();
        let s = accelerations(&b, &p);
        for tile in [1, 8, 64, 128, 1024] {
            let t = accelerations_tiled(&b, &p, tile);
            for i in 0..s.len() {
                assert_eq!(s[i], t[i], "tile {tile}, body {i}");
            }
        }
    }

    #[test]
    fn zero_mass_sources_contribute_nothing() {
        let mut b = ball(64, 3);
        let p = ForceParams::default();
        let before = accelerations(&b, &p);
        // Append sentinels like the GPU padding does.
        for _ in 0..64 {
            b.push(Vec3::ZERO, Vec3::ZERO, 0.0);
        }
        let after = accelerations(&b, &p);
        for i in 0..before.len() {
            assert_eq!(before[i], after[i], "padding changed physics for body {i}");
        }
    }

    #[test]
    fn momentum_is_conserved_by_pairwise_forces() {
        let b = ball(200, 11);
        let a = accelerations(&b, &ForceParams::default());
        let (mut fx, mut fy, mut fz) = (0.0f64, 0.0f64, 0.0f64);
        for (i, ai) in a.iter().enumerate() {
            fx += (b.mass[i] * ai.x) as f64;
            fy += (b.mass[i] * ai.y) as f64;
            fz += (b.mass[i] * ai.z) as f64;
        }
        let scale: f64 = a.iter().map(|v| v.norm() as f64).sum::<f64>();
        assert!(fx.abs() < 1e-3 * scale, "net force x {fx} vs scale {scale}");
        assert!(fy.abs() < 1e-3 * scale);
        assert!(fz.abs() < 1e-3 * scale);
    }

    #[test]
    fn probe_point_matches_member_result_when_far() {
        let b = ball(50, 9);
        let p = ForceParams::default();
        let probe = Vec3::new(100.0, 0.0, 0.0);
        let a = accel_at_point(&b, &p, probe);
        // Far away, the ball acts like a point of its total mass.
        let m = b.total_mass() as f32;
        let d = b.center_of_mass() - probe;
        let expected = d * (m / d.norm_sq() / d.norm());
        assert!((a - expected).norm() < 0.02 * expected.norm());
    }
}
