//! Property-based tests on the physics substrate's invariants.

use nbody::barnes_hut::Octree;
use nbody::direct::{accelerations, accelerations_par, accelerations_tiled};
use nbody::energy::momentum;
use nbody::integrator::step_leapfrog;
use nbody::model::{Bodies, ForceParams};
use proptest::prelude::*;
use simcore::Vec3;

fn bodies_strategy(max_n: usize) -> impl Strategy<Value = Bodies> {
    proptest::collection::vec(
        (
            (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0),
            (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
            0.0f32..5.0,
        ),
        2..max_n,
    )
    .prop_map(|rows| {
        let mut b = Bodies::default();
        for ((px, py, pz), (vx, vy, vz), m) in rows {
            b.push(Vec3::new(px, py, pz), Vec3::new(vx, vy, vz), m);
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial, parallel and tiled solvers agree bit-for-bit on arbitrary
    /// body sets (same summation order by construction).
    #[test]
    fn solvers_agree_bitwise(b in bodies_strategy(64), tile in 1usize..80) {
        let fp = ForceParams::default();
        let s = accelerations(&b, &fp);
        let p = accelerations_par(&b, &fp);
        let t = accelerations_tiled(&b, &fp, tile);
        prop_assert_eq!(&s, &p);
        prop_assert_eq!(&s, &t);
    }

    /// Accelerations are finite for any (softened) configuration, including
    /// coincident bodies.
    #[test]
    fn softened_forces_are_finite(mut b in bodies_strategy(32)) {
        // Force a coincident pair.
        let p0 = b.pos[0];
        b.push(p0, Vec3::ZERO, 1.0);
        let fp = ForceParams { g: 1.0, softening: 0.05 };
        let acc = accelerations(&b, &fp);
        prop_assert!(acc.iter().all(|a| a.is_finite()));
    }

    /// Net force (Σ mᵢaᵢ) vanishes relative to the force scale — Newton's
    /// third law through the pairwise sum.
    #[test]
    fn pairwise_forces_cancel(b in bodies_strategy(48)) {
        let fp = ForceParams::default();
        let acc = accelerations(&b, &fp);
        let (mut fx, mut fy, mut fz, mut scale) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, a) in acc.iter().enumerate() {
            fx += (b.mass[i] * a.x) as f64;
            fy += (b.mass[i] * a.y) as f64;
            fz += (b.mass[i] * a.z) as f64;
            scale += (b.mass[i] * a.norm()) as f64;
        }
        let tol = 1e-3 * scale.max(1e-12);
        prop_assert!(fx.abs() < tol && fy.abs() < tol && fz.abs() < tol,
            "net force ({fx}, {fy}, {fz}) vs scale {scale}");
    }

    /// The octree's mass moments equal the body totals regardless of the
    /// spatial distribution.
    #[test]
    fn octree_moments_are_exact(b in bodies_strategy(96)) {
        prop_assume!(b.total_mass() > 1e-3);
        let t = Octree::build(&b);
        let dm = (t.root_mass() as f64 - b.total_mass()).abs() / b.total_mass();
        prop_assert!(dm < 1e-3, "mass mismatch {dm}");
        let dc = (t.root_com() - b.center_of_mass()).norm();
        prop_assert!(dc < 1e-2, "com mismatch {dc}");
    }

    /// Iterative and recursive tree traversals agree exactly for any θ.
    #[test]
    fn traversals_agree(b in bodies_strategy(48), theta in 0.0f32..1.5) {
        let fp = ForceParams::default();
        let t = Octree::build(&b);
        for i in (0..b.len()).step_by(7) {
            let r = t.accel_recursive(&b, &fp, b.pos[i], theta);
            let it = t.accel_iterative(&b, &fp, b.pos[i], theta);
            prop_assert_eq!(r, it);
        }
    }

    /// One leapfrog step preserves total momentum (the kick is pairwise).
    #[test]
    fn leapfrog_preserves_momentum(mut b in bodies_strategy(32), dt in 0.001f32..0.02) {
        let fp = ForceParams::default();
        let m0 = momentum(&b);
        let acc = accelerations(&b, &fp);
        step_leapfrog(&mut b, &acc, dt, None, |bb| accelerations(bb, &fp));
        let m1 = momentum(&b);
        let scale: f64 = (0..b.len()).map(|i| (b.mass[i] * b.vel[i].norm()) as f64).sum::<f64>().max(1e-9);
        for k in 0..3 {
            prop_assert!((m1[k] - m0[k]).abs() < 2e-3 * scale,
                "momentum component {k}: {} -> {}", m0[k], m1[k]);
        }
    }
}
