//! Shared-memory bank-conflict microbenchmark.
//!
//! Sec. I-A of the paper introduces the bank-conflict rule ("when the same
//! shared memory banks are accessed by multiple threads at the same time …
//! the reads to the same memory bank will be serialized"); the force kernel
//! then deliberately reads the *same* word from all lanes (a broadcast,
//! conflict-free). This kernel makes the rule measurable: each thread reads
//! `smem[(tid · stride) mod words]` repeatedly, so the stride dials the
//! conflict degree on the 16-bank CC-1.x layout:
//!
//! | word stride | degree |
//! |---|---|
//! | 1 | 1 (conflict-free) |
//! | 2 | 2 |
//! | 4 | 4 |
//! | 8 | 8 |
//! | 16 | 16 (fully serialized) |
//! | odd (3, 5, …) | 1 (gcd with 16 is 1) |

use gpu_sim::ir::{AluOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};

/// Words of shared memory the benchmark cycles through (a multiple of every
/// interesting stride × 16 lanes).
pub const SMEM_WORDS: u32 = 1024;

/// Build the bank benchmark: `iters` strided shared-memory reads per thread,
/// clock()-timed, summed into a global output to keep them alive.
///
/// Parameters: `out_delta`, `out_sum`.
pub fn build_bank_kernel(stride_words: u32, iters: u32) -> Kernel {
    assert!(stride_words > 0 && iters > 0);
    let mut b = KernelBuilder::new(format!("banks_s{stride_words}"));
    b.shared_mem(SMEM_WORDS * 4);
    let out_delta = b.param();
    let out_sum = b.param();

    let tid = b.special(SpecialReg::TidX);
    // Seed shared memory (each thread writes its own word, conflict-free).
    let seed_addr = b.imul(tid.into(), Operand::ImmU(4));
    let tf = b.reg();
    b.emit(gpu_sim::ir::Instr::Unary {
        op: gpu_sim::ir::UnaryOp::U2F,
        dst: tf,
        a: tid.into(),
    });
    b.st(MemSpace::Shared, seed_addr, 0, vec![tf.into()]);
    b.sync();

    // The strided access address: (tid * stride mod SMEM_WORDS) * 4. The
    // modulo is a power-of-two mask.
    let scaled = b.imul(tid.into(), Operand::ImmU(stride_words));
    let masked = b.alu(AluOp::IAnd, scaled.into(), Operand::ImmU(SMEM_WORDS - 1));
    let addr = b.imul(masked.into(), Operand::ImmU(4));

    let acc = b.mov(Operand::ImmF(0.0));
    let t0 = b.clock();
    b.for_loop(Operand::ImmU(0), Operand::ImmU(iters), 1, |b, _it| {
        let v = b.ld(MemSpace::Shared, addr, 0, 1)[0];
        b.alu_into(acc, AluOp::FAdd, acc.into(), v.into());
    });
    let t1 = b.clock();

    let dt = b.alu(AluOp::ISub, t1.into(), t0.into());
    let da = b.mad_u(tid.into(), Operand::ImmU(4), out_delta.into());
    b.st(MemSpace::Global, da, 0, vec![dt.into()]);
    let sa = b.mad_u(tid.into(), Operand::ImmU(4), out_sum.into());
    b.st(MemSpace::Global, sa, 0, vec![acc.into()]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::banks::conflict_degree;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::exec::timed::time_resident;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::{DeviceConfig, DriverModel, TimingParams};

    fn timed_cycles(stride: u32) -> u64 {
        let dev = DeviceConfig::g8800gtx();
        let tp = TimingParams::for_driver(DriverModel::Cuda10);
        let k = build_bank_kernel(stride, 32);
        let mut gmem = GlobalMemory::new(1 << 16);
        let d = gmem.alloc(128 * 4).unwrap();
        let s = gmem.alloc(128 * 4).unwrap();
        let run = time_resident(
            &k,
            &[0],
            128,
            1,
            &[d.0 as u32, s.0 as u32],
            &mut gmem,
            &dev,
            DriverModel::Cuda10,
            &tp,
        )
        .unwrap();
        run.cycles
    }

    #[test]
    fn conflict_degree_drives_the_measured_cycles() {
        let free = timed_cycles(1);
        let four_way = timed_cycles(4);
        let full = timed_cycles(16);
        assert!(
            four_way > free,
            "4-way conflicts must cost more: {four_way} vs {free}"
        );
        assert!(
            full > four_way,
            "16-way must cost more than 4-way: {full} vs {four_way}"
        );
        // Odd strides are conflict-free regardless of magnitude.
        let odd = timed_cycles(5);
        assert!(
            (odd as f64) < 1.2 * free as f64,
            "odd stride should be near conflict-free: {odd} vs {free}"
        );
    }

    #[test]
    fn functional_sums_match_the_address_pattern() {
        let stride = 4u32;
        let iters = 8u32;
        let k = build_bank_kernel(stride, iters);
        let mut gmem = GlobalMemory::new(1 << 16);
        let d = gmem.alloc(64 * 4).unwrap();
        let s = gmem.alloc(64 * 4).unwrap();
        run_grid(&k, 1, 64, &[d.0 as u32, s.0 as u32], &mut gmem).unwrap();
        let sums = gmem.read_f32(s, 64).unwrap();
        for (t, v) in sums.iter().enumerate() {
            let word = (t as u32 * stride) & (SMEM_WORDS - 1);
            // smem[word] was seeded with `word as f32` (only the first 64
            // words are seeded here; strided targets ≥ 64 read zero).
            let expect = if word < 64 {
                iters as f32 * word as f32
            } else {
                0.0
            };
            assert_eq!(*v, expect, "thread {t}");
        }
    }

    #[test]
    fn kernel_pattern_matches_model_degree() {
        // The addresses the kernel generates have exactly the analytic
        // conflict degree for a half-warp.
        for (stride, expected) in [
            (1u32, 1u32),
            (2, 2),
            (4, 4),
            (8, 8),
            (16, 16),
            (3, 1),
            (5, 1),
        ] {
            let addrs: Vec<Option<u64>> = (0..16)
                .map(|t| Some((((t * stride) & (SMEM_WORDS - 1)) * 4) as u64))
                .collect();
            assert_eq!(conflict_degree(&addrs, 16), expected, "stride {stride}");
        }
    }
}
