//! Chunked-streaming variant of the force kernel, for working sets larger
//! than device memory.
//!
//! The paper assumes the particle buffers fit the 8800 GTX's global memory;
//! when they do not, the application tiles the O(n²) frame over *body
//! chunks*: the target bodies and the source bodies are uploaded a chunk at
//! a time, and one launch accumulates the partial accelerations of one
//! (target chunk, source chunk) pair. The kernel here is the standard tiled
//! force kernel (see [`crate::force`]) with two differences that make the
//! streaming composition **bit-identical** to an unconstrained run:
//!
//! 1. **Separate target and source buffers.** The standard kernel reads its
//!    own position and its tile stages from the same buffer set; the chunk
//!    kernel takes the target chunk's buffers and the source chunk's buffers
//!    as distinct parameters.
//! 2. **The accumulator is carried through `out`.** Instead of starting at
//!    zero, each thread seeds `(ax, ay, az)` from its `out` slot and the
//!    epilogue writes the running total back. f32 addition is not
//!    associative, so partial sums must not be combined on the host in a
//!    different order; launching the source chunks in ascending body order
//!    replays the *exact* addition sequence of the unconstrained kernel
//!    (zero-mass padding sentinels contribute exact no-ops, as in the
//!    unconstrained kernel's own padding).
//!
//! The same optimization ladder applies: `icm` runs LICM, `unroll` unrolls
//! the innermost loop — physics stay bit-identical throughout.

use gpu_sim::ir::passes::{licm, unroll_innermost};
use gpu_sim::ir::{AluOp, Kernel, KernelBuilder, MemSpace, Operand, Reg, SpecialReg};
use nbody::model::MIN_DIST_SQ;
use particle_layouts::DeviceImage;

use crate::force::ForceKernelConfig;

/// Build the chunk force kernel for a configuration.
///
/// Parameters, in order: the layout's buffers for the **target** chunk, the
/// layout's buffers for the **source** chunk, then `out` (float4 per target,
/// read *and* written — the carried accumulator), `n_src` (padded source
/// count, a multiple of `block`), `eps` (ε as raw f32 bits) and `smem0`.
pub fn build_chunk_force_kernel(cfg: ForceKernelConfig) -> Kernel {
    assert!(
        cfg.block > 0 && cfg.block.is_multiple_of(32),
        "block must be a warp multiple"
    );
    assert!(
        cfg.unroll >= 1 && cfg.block.is_multiple_of(cfg.unroll),
        "unroll must divide the block size"
    );
    let mut k = build_chunk_baseline(cfg);
    if cfg.icm {
        k = licm(&k);
    }
    if cfg.unroll > 1 {
        k = unroll_innermost(&k, cfg.unroll);
    }
    k
}

fn build_chunk_baseline(cfg: ForceKernelConfig) -> Kernel {
    let plan = cfg.layout.read_plan_posmass();
    let lanes = cfg.layout.posmass_lanes();
    let n_buffers = cfg.layout.buffers().len();
    let name = format!(
        "force_chunk_{}_b{}_u{}{}",
        cfg.layout.label(),
        cfg.block,
        cfg.unroll,
        if cfg.icm { "_icm" } else { "" }
    );
    let mut b = KernelBuilder::new(name);
    b.shared_mem(cfg.smem_bytes());
    let tgt_bufs: Vec<Reg> = (0..n_buffers).map(|_| b.param()).collect();
    let src_bufs: Vec<Reg> = (0..n_buffers).map(|_| b.param()).collect();
    let out = b.param();
    let n_src = b.param();
    let eps_param = b.param();
    let smem0 = b.param();

    // --- S: per-thread setup (as the standard kernel, target buffers) ----
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaidX);
    let ntid = b.special(SpecialReg::NtidX);
    let i = b.mad_u(ctaid.into(), ntid.into(), tid.into());
    let own = load_posmass(&mut b, &plan, &tgt_bufs, i);
    let (px, py, pz, _own_mass) = extract(&own, lanes);
    let oaddr = b.mad_u(i.into(), Operand::ImmU(16), out.into());
    let myslot = b.imul(tid.into(), Operand::ImmU(16));
    let eps = b.mov(eps_param.into());
    // Seed the accumulator from the carried partial sum (the w lane rides
    // along for the float4 access and is dead).
    let carried = b.ld(MemSpace::Global, oaddr, 0, 4);
    let (ax, ay, az) = (carried[0], carried[1], carried[2]);

    // --- B: tile loop over the *source* chunk ---------------------------
    b.for_loop(tid.into(), n_src.into(), cfg.block, |b, jj| {
        let tile = load_posmass(b, &plan, &src_bufs, jj);
        let (tpx, tpy, tpz, tm) = extract(&tile, lanes);
        b.st(
            MemSpace::Shared,
            myslot,
            0,
            vec![tpx.into(), tpy.into(), tpz.into(), tm.into()],
        );
        b.sync();

        // --- P: the innermost loop (identical to the standard kernel) ---
        b.for_loop(Operand::ImmU(0), Operand::ImmU(cfg.block), 1, |b, j| {
            let jaddr = b.mad_u(j.into(), Operand::ImmU(16), smem0.into());
            let v = b.ld(MemSpace::Shared, jaddr, 0, 4);
            let (bx, by, bz, bm) = (v[0], v[1], v[2], v[3]);
            let eps2 = b.fmul(eps.into(), eps.into());
            let dx = b.fsub(bx.into(), px.into());
            let dy = b.fsub(by.into(), py.into());
            let dz = b.fsub(bz.into(), pz.into());
            let t = b.fmul(dx.into(), dx.into());
            b.fmad_into(t, dy.into(), dy.into(), t.into());
            b.fmad_into(t, dz.into(), dz.into(), t.into());
            let r2 = b.fadd(t.into(), eps2.into());
            b.alu_into(r2, AluOp::FMax, r2.into(), Operand::ImmF(MIN_DIST_SQ));
            let rinv = b.frsqrt(r2.into());
            let rc = b.fmul(rinv.into(), rinv.into());
            b.alu_into(rc, AluOp::FMul, rc.into(), rinv.into());
            let s = b.fmul(bm.into(), rc.into());
            b.fmad_into(ax, dx.into(), s.into(), ax.into());
            b.fmad_into(ay, dy.into(), s.into(), ay.into());
            b.fmad_into(az, dz.into(), s.into(), az.into());
        });
        b.sync();
    });

    // --- epilogue: write the carried accumulator back -------------------
    b.st(
        MemSpace::Global,
        oaddr,
        0,
        vec![ax.into(), ay.into(), az.into(), Operand::ImmF(0.0)],
    );
    b.finish()
}

fn load_posmass(
    b: &mut KernelBuilder,
    plan: &particle_layouts::ReadPlan,
    bufs: &[Reg],
    idx: Reg,
) -> Vec<Vec<Reg>> {
    plan.reads
        .iter()
        .map(|r| {
            let addr = b.mad_u(idx.into(), Operand::ImmU(r.stride), bufs[r.buffer].into());
            b.ld(MemSpace::Global, addr, r.offset, r.words as usize)
        })
        .collect()
}

fn extract(
    reads: &[Vec<Reg>],
    lanes: particle_layouts::plan::PosMassLanes,
) -> (Reg, Reg, Reg, Reg) {
    (
        reads[lanes.px.0][lanes.px.1],
        reads[lanes.py.0][lanes.py.1],
        reads[lanes.pz.0][lanes.pz.1],
        reads[lanes.mass.0][lanes.mass.1],
    )
}

/// Assemble the launch parameter values for a chunk force kernel: target
/// chunk `tgt`, source chunk `src`, accumulator buffer `out`.
pub fn chunk_force_params(
    tgt: &DeviceImage,
    src: &DeviceImage,
    out: gpu_sim::mem::DevicePtr,
    eps: f32,
) -> Vec<u32> {
    assert_eq!(tgt.layout, src.layout, "chunks must share one layout");
    let mut p = tgt.base_params();
    p.extend(src.base_params());
    p.push(out.0 as u32);
    p.push(src.padded_n);
    p.push(eps.to_bits());
    p.push(0); // smem0
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::mem::GlobalMemory;
    use nbody::direct::accelerations;
    use nbody::model::{Bodies, ForceParams};
    use nbody::spawn;
    use particle_layouts::device::{alloc_accel_out, download_accels};
    use particle_layouts::{Layout, Particle};

    fn to_particles(bodies: &Bodies, g: f32) -> Vec<Particle> {
        (0..bodies.len())
            .map(|i| Particle {
                pos: bodies.pos[i],
                vel: bodies.vel[i],
                mass: g * bodies.mass[i],
            })
            .collect()
    }

    /// Stream a frame through the chunk kernel: all targets resident, the
    /// sources uploaded `chunk` bodies at a time in ascending order, the
    /// accumulator carried through `out` across launches.
    fn run_chunked(
        cfg: ForceKernelConfig,
        bodies: &Bodies,
        fp: &ForceParams,
        chunk: usize,
    ) -> Vec<simcore::Vec3> {
        assert!(chunk.is_multiple_of(cfg.block as usize));
        let k = build_chunk_force_kernel(cfg);
        let ps = to_particles(bodies, fp.g);
        let mut gmem = GlobalMemory::new(64 << 20);
        let tgt = DeviceImage::upload(&mut gmem, cfg.layout, &ps, cfg.block).unwrap();
        let out = alloc_accel_out(&mut gmem, tgt.padded_n).unwrap();
        let grid = tgt.padded_n / cfg.block;
        let mut lo = 0;
        while lo < ps.len() {
            let hi = (lo + chunk).min(ps.len());
            let src = DeviceImage::upload(&mut gmem, cfg.layout, &ps[lo..hi], cfg.block).unwrap();
            let params = chunk_force_params(&tgt, &src, out, fp.softening);
            run_grid(&k, grid, cfg.block, &params, &mut gmem).unwrap();
            // Free the source chunk LIFO so the next one reuses its space.
            for b in src.buffers.iter().rev() {
                gmem.free(*b).unwrap();
            }
            lo = hi;
        }
        download_accels(&gmem, out, tgt.n).unwrap()
    }

    fn assert_bitwise_eq(a: &[simcore::Vec3], b: &[simcore::Vec3], what: &str) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a[i].x.to_bits(), b[i].x.to_bits(), "{what}: body {i} x");
            assert_eq!(a[i].y.to_bits(), b[i].y.to_bits(), "{what}: body {i} y");
            assert_eq!(a[i].z.to_bits(), b[i].z.to_bits(), "{what}: body {i} z");
        }
    }

    /// The central chunking claim: for every layout, streaming the sources
    /// through the chunk kernel is bit-identical to the CPU reference (and
    /// hence to the unconstrained kernel, which equals the CPU bitwise).
    #[test]
    fn chunked_streaming_is_bit_identical_for_every_layout() {
        let bodies = spawn::uniform_ball(150, 5.0, 3.0, 42); // ragged vs 64
        let fp = ForceParams::default();
        let cpu = accelerations(&bodies, &fp);
        for layout in Layout::ALL {
            let cfg = ForceKernelConfig {
                layout,
                block: 64,
                unroll: 1,
                icm: false,
            };
            for chunk in [64usize, 128] {
                let gpu = run_chunked(cfg, &bodies, &fp, chunk);
                assert_bitwise_eq(&cpu, &gpu, &format!("{layout} chunk={chunk}"));
            }
        }
    }

    /// The optimization ladder applies to the chunk kernel unchanged.
    #[test]
    fn unroll_and_icm_preserve_chunked_results_bitwise() {
        let bodies = spawn::disk_galaxy(130, 4.0, 1.0, 1.0, 7);
        let fp = ForceParams {
            g: 1.0,
            softening: 0.02,
        };
        let cpu = accelerations(&bodies, &fp);
        for (unroll, icm) in [(1, true), (4, false), (64, true)] {
            let cfg = ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 64,
                unroll,
                icm,
            };
            let gpu = run_chunked(cfg, &bodies, &fp, 64);
            assert_bitwise_eq(&cpu, &gpu, &format!("unroll={unroll},icm={icm}"));
        }
    }

    /// A single all-bodies chunk reduces the chunk kernel to the standard
    /// kernel exactly (the degenerate streaming case).
    #[test]
    fn single_chunk_equals_the_standard_kernel() {
        let bodies = spawn::uniform_ball(96, 4.0, 2.0, 9);
        let fp = ForceParams::default();
        let cfg = ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: 32,
            unroll: 1,
            icm: false,
        };
        let chunked = run_chunked(cfg, &bodies, &fp, 96);
        let cpu = accelerations(&bodies, &fp);
        assert_bitwise_eq(&cpu, &chunked, "single chunk");
    }

    /// Chunk-kernel parameter shape: both buffer sets, then out/n/eps/smem0.
    #[test]
    fn param_count_matches_the_kernel() {
        for layout in Layout::ALL {
            let cfg = ForceKernelConfig {
                layout,
                block: 32,
                unroll: 1,
                icm: false,
            };
            let k = build_chunk_force_kernel(cfg);
            let expected = 2 * layout.buffers().len() + 4;
            assert_eq!(k.n_params as usize, expected, "{layout}");
        }
    }
}
