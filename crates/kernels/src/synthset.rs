//! The workspace synthesis targets: kernels `kernel-lint --suggest` and
//! `--fix` run the layout/schedule synthesizer over, with the launch
//! configurations and the acceptance yardstick.
//!
//! The headline target is the paper's own starting point: the naive GPU
//! port of the force kernel — 28-byte packed records, rolled tile loop,
//! ε² recomputed every iteration. Synthesis must rediscover Sec. III–IV's
//! answer from the access summaries alone: pack the four hot words
//! (px, py, pz, mass) into one 16-byte SoAoaS tile, drop the three cold
//! velocity words, and schedule invariant code motion before a full
//! unroll — and it must *prove* the rewrite before suggesting it.

use gpu_sim::analyze::synth::{synthesize, SynthConfig, SynthReport};
use gpu_sim::driver::DriverModel;
use gpu_sim::ir::layout::LayoutRewrite;
use gpu_sim::ir::Kernel;
use particle_layouts::plan::{SynthesizedField, SynthesizedLayout};
use particle_layouts::Layout;

use crate::force::{build_force_kernel, ForceKernelConfig};

/// The measured end-to-end speedup of the hand-derived ladder at the
/// paper's block sizes (`results/table_verify.csv`, SoAoaS+unroll+ICM over
/// the AoS baseline): the yardstick machine synthesis is held to.
pub const LADDER_MEASURED_SPEEDUP: f64 = 1.24;

/// Relative tolerance on [`LADDER_MEASURED_SPEEDUP`] for the synthesized
/// winner's *predicted* speedup. Synthesis works at the kernel's native
/// block size (it cannot retune the launch), so it reproduces the ladder's
/// layout + schedule steps, not the final 128-thread occupancy step.
pub const SPEEDUP_TOLERANCE: f64 = 0.05;

/// One kernel the synthesizer is pointed at.
pub struct SynthTarget {
    /// Stable identifier for reports and tables.
    pub name: &'static str,
    /// The kernel as written (pre-optimization).
    pub kernel: Kernel,
    /// Launch + pricing configuration.
    pub config: SynthConfig,
    /// Layout tag the winner is expected to carry (`None` = no layout
    /// expectation, schedule-only target).
    pub expect_layout: Option<&'static str>,
}

impl SynthTarget {
    /// Run the synthesizer on this target.
    pub fn synthesize(&self) -> Result<SynthReport, gpu_sim::analyze::synth::SynthError> {
        synthesize(&self.kernel, &self.config)
    }
}

/// Express a proven IR-level [`LayoutRewrite`] as the layouts crate's
/// [`SynthesizedLayout`] — the host-side artifact `kernel-lint --fix`
/// emits so allocation code can adopt the new buffers.
pub fn synthesized_layout(rw: &LayoutRewrite) -> SynthesizedLayout {
    let fields = rw
        .maps
        .iter()
        .flat_map(|m| {
            m.words
                .iter()
                .map(move |&(old_offset, dest)| SynthesizedField {
                    old_buffer: m.param as usize,
                    old_offset,
                    buffer: dest.buffer,
                    offset: dest.offset,
                })
        })
        .collect();
    SynthesizedLayout::new(rw.tag.clone(), rw.new_strides.clone(), fields)
}

/// Fake, 64 KiB-apart device buffer addresses (same scheme as
/// `lintset`/`verifyset`).
fn fake_buffers(n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| 0x1_0000 * (i + 1)).collect()
}

/// Force-kernel launch parameters under `layout`: buffers, out, n, eps,
/// smem0. `n` is a placeholder — the synthesizer re-derives it per launch
/// shape through [`SynthConfig::n_param`].
fn force_synth_params(layout: Layout, n: u32) -> Vec<u32> {
    let mut p = fake_buffers(layout.buffers().len());
    p.push(0x20_0000); // out
    p.push(n); // n
    p.push(0.5f32.to_bits()); // eps
    p.push(0); // smem0
    p
}

/// The naive force kernel under `layout` at its native block size, wired
/// up as a synthesis target for `driver`.
fn force_target(
    name: &'static str,
    layout: Layout,
    block: u32,
    driver: DriverModel,
    expect_layout: Option<&'static str>,
) -> SynthTarget {
    const GRID: u32 = 2;
    let kernel = build_force_kernel(ForceKernelConfig {
        layout,
        block,
        unroll: 1,
        icm: false,
    });
    let n_param = layout.buffers().len() + 1; // buffers…, out, then n
    let config = SynthConfig::new(
        driver,
        GRID,
        block,
        force_synth_params(layout, GRID * block),
    )
    .with_n_param(n_param)
    .with_max_suggestions(2);
    SynthTarget {
        name,
        kernel,
        config,
        expect_layout,
    }
}

/// The ladder's endpoint (SoAoaS layout, full unroll, invariant code
/// motion) at `block` — a fixed point synthesis must not move: property
/// tests assert `synthesize` proposes nothing above the gain threshold on
/// these, so `--fix` terminates after one application.
pub fn endpoint_target(block: u32, driver: DriverModel) -> SynthTarget {
    const GRID: u32 = 2;
    let kernel = build_force_kernel(ForceKernelConfig {
        layout: Layout::SoAoaS,
        block,
        unroll: block,
        icm: true,
    });
    let n_param = Layout::SoAoaS.buffers().len() + 1;
    let config = SynthConfig::new(
        driver,
        GRID,
        block,
        force_synth_params(Layout::SoAoaS, GRID * block),
    )
    .with_n_param(n_param);
    SynthTarget {
        name: "ladder-endpoint",
        kernel,
        config,
        expect_layout: None,
    }
}

/// The headline target: the paper's naive 28-byte AoS force kernel at the
/// original port's 192-thread blocks. Synthesis must find the SoAoaS-16
/// hot/cold split plus a licm-before-unroll schedule.
pub fn force_unopt_target(driver: DriverModel) -> SynthTarget {
    force_target(
        "force-unopt-b192",
        Layout::Unopt,
        192,
        driver,
        Some("soaoas-16"),
    )
}

/// Every kernel × launch the workspace runs synthesis over.
pub fn synth_targets(driver: DriverModel) -> Vec<SynthTarget> {
    vec![
        force_unopt_target(driver),
        // SoA at a small block: four stride-4 scalar arrays whose hot words
        // synthesis should re-pack into one float4 record (the SoA→SoAoaS
        // step of the ladder in isolation, cheap enough for the test gate).
        force_target("force-soa-b64", Layout::SoA, 64, driver, Some("soaoas-16")),
    ]
}

/// Does the winner's predicted speedup land within
/// [`SPEEDUP_TOLERANCE`] of the hand-derived ladder's measured
/// [`LADDER_MEASURED_SPEEDUP`]?
pub fn within_ladder_band(predicted_speedup: f64) -> bool {
    (predicted_speedup / LADDER_MEASURED_SPEEDUP - 1.0).abs() <= SPEEDUP_TOLERANCE
}
