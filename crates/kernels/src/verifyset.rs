//! The curated **translation-validation** target set: every workspace kernel
//! paired with every IR pass that applies to it, plus the cross-layout
//! equivalences of the force-kernel ladder — the inputs to
//! `kernel-lint --verify` and the CI `verify-kernels` gate.
//!
//! Launch shapes are deliberately small (the proof is per-thread and
//! symbolic in memory contents, so a 2-block × 32-thread launch already
//! exercises tiling, staging and grid striding); what matters is coverage of
//! kernel structure, not problem size.

use gpu_sim::analyze::verify::{InputMap, PassId, VerifyConfig, VerifyResult};
use gpu_sim::analyze::{analyze_kernel, cost, AnalysisConfig, BufferExtent, Severity};
use gpu_sim::ir::Kernel;
use particle_layouts::Layout;

use crate::banks::build_bank_kernel;
use crate::barnes_hut::{build_bh_kernel, traversal_budget, BhKernelConfig};
use crate::force::{build_force_kernel, build_force_kernel_prefetch, ForceKernelConfig};
use crate::integrate::build_integrate_kernel;
use crate::membench::{build_membench_kernel, MembenchConfig};

/// One kernel × pass application to prove equivalent.
pub struct PassVerifyTarget {
    /// The kernel before the pass.
    pub kernel: Kernel,
    /// The pass under validation.
    pub pass: PassId,
    /// Launch shape and parameters to verify under.
    pub cfg: VerifyConfig,
}

impl PassVerifyTarget {
    /// Run the proof.
    pub fn verify(&self) -> VerifyResult {
        gpu_sim::analyze::verify::verify_pass(&self.kernel, self.pass, &self.cfg)
    }
}

/// One layout-rewrite equivalence of the force ladder: the same physics
/// computed under two data layouts must store identical accelerations.
pub struct LayoutVerifyTarget {
    /// Layout of the original kernel.
    pub from: Layout,
    /// Layout the `layout_advisor` fix-it rewrites to.
    pub to: Layout,
    /// Force kernel under `from`.
    pub a: Kernel,
    /// Force kernel under `to`.
    pub b: Kernel,
    /// Verification config carrying both parameter vectors and both
    /// canonical input maps.
    pub cfg: VerifyConfig,
}

impl LayoutVerifyTarget {
    /// Run the proof.
    pub fn verify(&self) -> VerifyResult {
        gpu_sim::analyze::verify::verify_equiv(&self.a, &self.b, &self.cfg)
    }
}

/// Fake, 64 KiB-apart device buffer addresses (same scheme as `lintset`).
fn fake_buffers(n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| 0x1_0000 * (i + 1)).collect()
}

/// Launch shape every verify target uses: 2 blocks of 32 threads — big
/// enough for grid striding and a 2-tile loop, small enough that symbolic
/// execution is instant.
const GRID: u32 = 2;
const BLOCK: u32 = 32;

/// Force-kernel launch parameters under `layout` for the verify shape.
fn force_verify_params(layout: Layout) -> Vec<u32> {
    let mut p = fake_buffers(layout.buffers().len());
    p.push(0x20_0000); // out
    p.push(GRID * BLOCK); // n
    p.push(0.5f32.to_bits()); // eps
    p.push(0); // smem0
    p
}

/// Canonical `(element, field)` naming for every global word the posmass
/// read plan of `layout` can touch, so the same logical datum gets the same
/// input term under every layout. Field codes 0–3 are px/py/pz/mass; dead
/// ride-along words (a vector load's vx or padding) get codes ≥ 4 that are
/// unique per plan slot and never collide with the hot fields.
pub fn posmass_input_map(layout: Layout, buffers: &[u32], n: u32) -> InputMap {
    let plan = layout.read_plan_posmass();
    let lanes = layout.posmass_lanes();
    let mut map = InputMap::default();
    for e in 0..n as u64 {
        for (ri, r) in plan.reads.iter().enumerate() {
            let base = buffers[r.buffer] as u64;
            for w in 0..r.words as u64 {
                let addr = base + e * r.stride as u64 + r.offset as u64 + 4 * w;
                let slot = (ri, w as usize);
                let field = if slot == lanes.px {
                    0
                } else if slot == lanes.py {
                    1
                } else if slot == lanes.pz {
                    2
                } else if slot == lanes.mass {
                    3
                } else {
                    4 + (ri as u64 * 4 + w)
                };
                map.global.insert(addr, e * 16 + field);
            }
        }
    }
    map
}

/// Every kernel × pass pair `kernel-lint --verify` must prove.
///
/// Pass applicability follows each kernel's structure: `unroll_innermost`
/// requires an innermost loop with immediate bounds (the force tile loop's
/// inner loop, membench's and banks' iteration loops); `licm` and
/// `fold_addressing` apply everywhere. The Barnes–Hut traversal is not a
/// pass target — its store trace depends on loaded tree data — but it is no
/// longer outside the gate: [`bounds_targets`] verifies it through the
/// interval analyzer instead, demanding finite transaction and cycle bounds
/// under its traversal budget.
pub fn workspace_pass_targets() -> Vec<PassVerifyTarget> {
    let mut targets = Vec::new();

    // --- force: every layout, rolled baseline, all passes + compositions --
    for layout in Layout::ALL {
        let fcfg = ForceKernelConfig {
            layout,
            block: BLOCK,
            unroll: 1,
            icm: false,
        };
        let kernel = build_force_kernel(fcfg);
        let cfg = VerifyConfig::new(GRID, BLOCK, force_verify_params(layout));
        let passes: &[PassId] = if layout == Layout::SoAoaS {
            // The paper's ladder layout additionally proves both composition
            // orders and the full unroll.
            &[
                PassId::Licm,
                PassId::Fold,
                PassId::Unroll(4),
                PassId::Unroll(BLOCK),
                PassId::LicmThenUnroll(BLOCK),
                PassId::UnrollThenLicm(BLOCK),
            ]
        } else {
            &[PassId::Licm, PassId::Fold, PassId::Unroll(4)]
        };
        for &pass in passes {
            targets.push(PassVerifyTarget {
                kernel: kernel.clone(),
                pass,
                cfg: cfg.clone(),
            });
        }
    }

    // --- force: the prefetch variant (SoAoaS only) ------------------------
    {
        let fcfg = ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: BLOCK,
            unroll: 1,
            icm: false,
        };
        let kernel = build_force_kernel_prefetch(fcfg);
        let cfg = VerifyConfig::new(GRID, BLOCK, force_verify_params(Layout::SoAoaS));
        for pass in [PassId::Licm, PassId::Fold] {
            targets.push(PassVerifyTarget {
                kernel: kernel.clone(),
                pass,
                cfg: cfg.clone(),
            });
        }
    }

    // --- membench: every layout ------------------------------------------
    for layout in Layout::ALL {
        let mcfg = MembenchConfig { layout, iters: 2 };
        let kernel = build_membench_kernel(mcfg);
        let mut params = fake_buffers(layout.buffers().len());
        params.push(0x20_0000); // out_delta
        params.push(0x21_0000); // out_sum
        let cfg = VerifyConfig::new(1, BLOCK, params);
        for pass in [PassId::Licm, PassId::Fold, PassId::Unroll(2)] {
            targets.push(PassVerifyTarget {
                kernel: kernel.clone(),
                pass,
                cfg: cfg.clone(),
            });
        }
    }

    // --- integrate: every layout (straight-line: no unroll) ---------------
    for layout in Layout::ALL {
        let kernel = build_integrate_kernel(layout);
        let mut params = fake_buffers(layout.buffers().len());
        params.push(0x20_0000); // acc
        params.push(0.01f32.to_bits()); // dt
        let cfg = VerifyConfig::new(1, BLOCK, params);
        for pass in [PassId::Licm, PassId::Fold] {
            targets.push(PassVerifyTarget {
                kernel: kernel.clone(),
                pass,
                cfg: cfg.clone(),
            });
        }
    }

    // --- banks: the conflict microbenchmark -------------------------------
    for stride in [1u32, 2, 16] {
        let kernel = build_bank_kernel(stride, 2);
        let cfg = VerifyConfig::new(1, BLOCK, vec![0x20_0000, 0x21_0000]);
        for pass in [PassId::Licm, PassId::Fold, PassId::Unroll(2)] {
            targets.push(PassVerifyTarget {
                kernel: kernel.clone(),
                pass,
                cfg: cfg.clone(),
            });
        }
    }

    targets
}

/// A data-dependent kernel the affine checker cannot prove store-trace
/// equivalence for, verified through the **interval analyzer** instead: the
/// gate demands finite `[best, worst]` transaction and cycle bounds under
/// the kernel's trip-count budget, with no error-severity findings.
pub struct BoundsVerifyTarget {
    /// The kernel to bound.
    pub kernel: Kernel,
    /// Analysis configuration: launch shape, trip budget, buffer extents.
    pub cfg: AnalysisConfig,
}

/// What a [`BoundsVerifyTarget`] delivers when the analyzer succeeds.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsCertificate {
    /// Kernel name.
    pub kernel: String,
    /// `[best, worst]` global transactions over the launch.
    pub transaction_bounds: (u64, u64),
    /// `[best, worst]` predicted cycles.
    pub cycle_bounds: (f64, f64),
    /// `possible-out-of-bounds` warnings the certifier raised (expected for
    /// tree-indexed sites whose addresses live in loaded data).
    pub oob_warnings: usize,
}

impl BoundsVerifyTarget {
    /// Run the analyzer and check the certificate obligations. `Err` is the
    /// analogue of [`VerifyResult::Unsupported`] — the gate counts it
    /// unproven.
    pub fn verify(&self) -> Result<BoundsCertificate, String> {
        let report = analyze_kernel(&self.kernel, &self.cfg);
        if let Some(d) = report
            .diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
        {
            return Err(format!("error finding `{}`: {}", d.kind.name(), d.message));
        }
        let (tx_lo, tx_hi) = report.transaction_bounds;
        if tx_hi == 0 || tx_hi < tx_lo {
            return Err(format!(
                "analyzer produced no transaction bounds (got [{tx_lo}, {tx_hi}])"
            ));
        }
        let bounds = cost::estimate_bounds_from_report(&self.kernel, &self.cfg, &report)
            .map_err(|e| format!("no cycle bounds: {e}"))?;
        let (cy_lo, cy_hi) = bounds.cycle_range();
        if !(cy_lo.is_finite() && cy_hi.is_finite() && cy_lo > 0.0 && cy_lo <= cy_hi) {
            return Err(format!("degenerate cycle bounds [{cy_lo}, {cy_hi}]"));
        }
        let oob_warnings = report
            .diagnostics
            .iter()
            .filter(|d| {
                d.severity == Severity::Warning && d.kind.name() == "possible-out-of-bounds"
            })
            .count();
        Ok(BoundsCertificate {
            kernel: self.kernel.name.clone(),
            transaction_bounds: (tx_lo, tx_hi),
            cycle_bounds: (cy_lo, cy_hi),
            oob_warnings,
        })
    }
}

/// The Barnes–Hut traversal targets: the default G80 shape under a small
/// (63-node) tree budget, and a shallower-stack variant under a mid-size
/// (1023-node) budget — both must certify with finite bounds.
pub fn bounds_targets() -> Vec<BoundsVerifyTarget> {
    [
        (BhKernelConfig::g80_default(), 63u32),
        (
            BhKernelConfig {
                block: 64,
                depth: 32,
            },
            1023,
        ),
    ]
    .into_iter()
    .map(|(bh, n_nodes)| {
        let addrs = fake_buffers(5); // pos, com, side_meta, bodies, out
        let mut params = addrs.clone();
        params.push(0.25f32.to_bits()); // theta²
        params.push(0.5f32.to_bits()); // eps
        let cfg = AnalysisConfig::new(GRID, bh.block, params)
            .with_trip_budget(traversal_budget(n_nodes))
            .with_buffers(
                addrs
                    .iter()
                    .map(|&base| BufferExtent {
                        base: u64::from(base),
                        len: 0x1_0000,
                    })
                    .collect(),
            );
        BoundsVerifyTarget {
            kernel: build_bh_kernel(bh),
            cfg,
        }
    })
    .collect()
}

/// The layout ladder as equivalence proofs: every layout's force kernel
/// against the `SoAoaS` target the `layout_advisor` fix-it rewrites to.
/// (Membench is *not* here: its reduction sums fields in plan order, so two
/// layouts legitimately produce different float sums.)
pub fn layout_ladder_targets() -> Vec<LayoutVerifyTarget> {
    let to = Layout::SoAoaS;
    let params_b = force_verify_params(to);
    let map_b = posmass_input_map(to, &params_b, GRID * BLOCK);
    let b = build_force_kernel(ForceKernelConfig {
        layout: to,
        block: BLOCK,
        unroll: 1,
        icm: false,
    });
    Layout::ALL
        .into_iter()
        .filter(|&l| l != to)
        .map(|from| {
            let params_a = force_verify_params(from);
            let map_a = posmass_input_map(from, &params_a, GRID * BLOCK);
            let a = build_force_kernel(ForceKernelConfig {
                layout: from,
                block: BLOCK,
                unroll: 1,
                icm: false,
            });
            let mut cfg = VerifyConfig::new(GRID, BLOCK, params_a);
            cfg.params_b = Some(params_b.clone());
            cfg.input_map = Some(map_a);
            cfg.input_map_b = Some(map_b.clone());
            LayoutVerifyTarget {
                from,
                to,
                a: a.clone(),
                b: b.clone(),
                cfg,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barnes_hut::BhKernelConfig;

    #[test]
    fn every_pass_target_proves() {
        for t in workspace_pass_targets() {
            let r = t.verify();
            assert!(r.is_proved(), "{} / {}: {r}", t.kernel.name, t.pass.label());
        }
    }

    #[test]
    fn the_layout_ladder_proves() {
        for t in layout_ladder_targets() {
            let r = t.verify();
            assert!(
                r.is_proved(),
                "{} → {}: {r}",
                t.from.label(),
                t.to.label(),
                r = r
            );
        }
    }

    #[test]
    fn barnes_hut_is_analyzed() {
        // The positive gate that replaced `barnes_hut_is_honestly_unsupported`:
        // the traversal is no longer outside the static story — every BH
        // target must certify with finite, non-degenerate interval bounds.
        let targets = bounds_targets();
        assert!(!targets.is_empty());
        for t in targets {
            let cert = t.verify().unwrap_or_else(|e| {
                panic!(
                    "{}: traversal must be analyzed with bounds: {e}",
                    t.kernel.name
                )
            });
            let (tx_lo, tx_hi) = cert.transaction_bounds;
            assert!(
                0 < tx_lo && tx_lo < tx_hi,
                "{}: expected a widening transaction interval, got [{tx_lo}, {tx_hi}]",
                cert.kernel
            );
            let (cy_lo, cy_hi) = cert.cycle_bounds;
            assert!(
                0.0 < cy_lo && cy_lo < cy_hi,
                "{}: expected a widening cycle interval, got [{cy_lo}, {cy_hi}]",
                cert.kernel
            );
            // The stack-indexed shared sites live in loaded data; the bounds
            // certifier is supposed to flag them, not silently pass them.
            assert!(cert.oob_warnings > 0, "{}", cert.kernel);
        }
        // The affine store-trace checker still refuses the traversal — the
        // certificate above is the honest replacement, not a new claim of
        // bit-exact equivalence.
        let k = build_bh_kernel(BhKernelConfig::g80_default());
        let mut params = vec![0x1_0000u32, 0x2_0000, 0x3_0000, 0x20_0000];
        params.resize(k.n_params as usize, 0x30_0000);
        let cfg = VerifyConfig::new(1, BLOCK, params);
        let r = gpu_sim::analyze::verify::verify_equiv(&k, &k, &cfg);
        assert!(matches!(r, VerifyResult::Unsupported { .. }), "{r}");
    }

    #[test]
    fn input_maps_cover_the_posmass_plan_disjointly() {
        for layout in Layout::ALL {
            let params = force_verify_params(layout);
            let map = posmass_input_map(layout, &params, 64);
            let plan = layout.read_plan_posmass();
            assert_eq!(map.global.len(), 64 * plan.words() as usize, "{layout}");
            // Hot-field keys are layout-independent.
            let lanes = layout.posmass_lanes();
            let r = &plan.reads[lanes.px.0];
            let addr = params[r.buffer] as u64
                + 7 * r.stride as u64
                + r.offset as u64
                + 4 * lanes.px.1 as u64;
            assert_eq!(
                map.global.get(&addr),
                Some(&(7 * 16)),
                "{layout}: px of element 7"
            );
        }
    }
}
