//! The on-device integration kernel (semi-implicit Euler).
//!
//! The paper's Gravit port keeps the particle state on the device across a
//! frame; after the force kernel fills the acceleration buffer, this kernel
//! advances it in place:
//!
//! ```text
//! v += a·dt;  p += v·dt      (one thread per particle, no loops, no tiles)
//! ```
//!
//! Unlike the force kernel — whose inner loop reads only the *hot* fields —
//! integration touches the **cold** velocity group too, which is why the
//! layouts keep velocities at all. For the vector layouts the kernel must
//! load and re-store the ride-along words (the mass in `AoaS`'s first half,
//! the padding elements) unchanged; the tests pin that masses survive.
//!
//! Operation order matches `nbody::integrator::step_euler` exactly
//! (`v + a·dt` as mul-then-add, then `p + v'·dt`), so device-resident
//! stepping is bit-identical to host stepping.

use gpu_sim::ir::{Kernel, KernelBuilder, MemSpace, Operand, Reg};
use particle_layouts::Layout;

/// Build the Euler integration kernel for a layout.
///
/// Parameters, in order: the layout's buffers, then `acc` (float4 per
/// particle, as written by the force kernel) and `dt` (f32 bits).
pub fn build_integrate_kernel(layout: Layout) -> Kernel {
    let plan = layout.read_plan_posvel();
    let lanes = layout.posvel_lanes();
    let n_buffers = layout.buffers().len();
    let mut b = KernelBuilder::new(format!("integrate_{}", layout.label()));
    let bufs: Vec<Reg> = (0..n_buffers).map(|_| b.param()).collect();
    let acc = b.param();
    let dt_param = b.param();

    let i = b.global_thread_index();
    let dt = b.mov(dt_param.into());

    // Load everything the layout forces us to touch, remembering addresses.
    let mut loaded: Vec<(Reg, Vec<Reg>, u32)> = Vec::new(); // (addr, words, offset)
    for r in &plan.reads {
        let addr = b.mad_u(i.into(), Operand::ImmU(r.stride), bufs[r.buffer].into());
        let words = b.ld(MemSpace::Global, addr, r.offset, r.words as usize);
        loaded.push((addr, words, r.offset));
    }
    let aaddr = b.mad_u(i.into(), Operand::ImmU(16), acc.into());
    let a = b.ld(MemSpace::Global, aaddr, 0, 4);

    // v' = v + a·dt ; p' = p + v'·dt — written back into the loaded word
    // registers so the stores below round-trip the ride-along words.
    for (k, ak) in a.iter().enumerate().take(3) {
        let (vr, vw) = lanes.vel[k];
        let v = loaded[vr].1[vw];
        b.fmad_into(v, (*ak).into(), dt.into(), v.into());
        let (pr, pw) = lanes.pos[k];
        let p = loaded[pr].1[pw];
        b.fmad_into(p, v.into(), dt.into(), p.into());
    }

    for (addr, words, offset) in loaded {
        b.st(
            MemSpace::Global,
            addr,
            offset,
            words.iter().map(|w| (*w).into()).collect(),
        );
    }
    b.finish()
}

/// Assemble the launch parameters for an integration kernel.
pub fn integrate_params(
    img: &particle_layouts::DeviceImage,
    acc: gpu_sim::mem::DevicePtr,
    dt: f32,
) -> Vec<u32> {
    let mut p = img.base_params();
    p.push(acc.0 as u32);
    p.push(dt.to_bits());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::ir::count::dynamic_instructions;
    use gpu_sim::mem::GlobalMemory;
    use nbody::integrator::step_euler;
    use nbody::model::Bodies;
    use nbody::spawn;
    use particle_layouts::device::alloc_accel_out;
    use particle_layouts::{DeviceImage, Particle};
    use simcore::Vec3;

    fn to_particles(b: &Bodies) -> Vec<Particle> {
        (0..b.len())
            .map(|i| Particle {
                pos: b.pos[i],
                vel: b.vel[i],
                mass: b.mass[i],
            })
            .collect()
    }

    fn device_euler(layout: Layout, bodies: &Bodies, accels: &[Vec3], dt: f32) -> Vec<Particle> {
        let block = 128u32;
        let k = build_integrate_kernel(layout);
        let mut gmem = GlobalMemory::new(32 << 20);
        let img = DeviceImage::upload(&mut gmem, layout, &to_particles(bodies), block).unwrap();
        let acc = alloc_accel_out(&mut gmem, img.padded_n).unwrap();
        for (i, a) in accels.iter().enumerate() {
            gmem.store_f32(acc.0 + 16 * i as u64, a.x).unwrap();
            gmem.store_f32(acc.0 + 16 * i as u64 + 4, a.y).unwrap();
            gmem.store_f32(acc.0 + 16 * i as u64 + 8, a.z).unwrap();
        }
        let params = integrate_params(&img, acc, dt);
        run_grid(&k, img.padded_n / block, block, &params, &mut gmem).unwrap();
        img.read_all(&gmem).unwrap()
    }

    #[test]
    fn device_euler_matches_host_bitwise_for_every_layout() {
        let mut bodies = spawn::disk_galaxy(200, 4.0, 1.0, 1.0, 13);
        let accels: Vec<Vec3> = (0..bodies.len())
            .map(|i| Vec3::new(i as f32 * 0.01, -0.5, 0.25))
            .collect();
        let dt = 0.01f32;
        let before = bodies.clone();
        step_euler(&mut bodies, &accels, dt, None);
        for layout in Layout::ALL {
            let dev = device_euler(layout, &before, &accels, dt);
            for (i, d) in dev.iter().enumerate() {
                assert_eq!(d.pos, bodies.pos[i], "{layout}: body {i} pos");
                assert_eq!(d.vel, bodies.vel[i], "{layout}: body {i} vel");
            }
        }
    }

    #[test]
    fn masses_survive_integration_in_every_layout() {
        let bodies = spawn::uniform_ball(100, 2.0, 3.0, 4);
        let accels = vec![Vec3::new(1.0, 2.0, 3.0); 100];
        for layout in Layout::ALL {
            let dev = device_euler(layout, &bodies, &accels, 0.02);
            for (i, d) in dev.iter().enumerate() {
                assert_eq!(d.mass, bodies.mass[i], "{layout}: body {i} mass clobbered");
            }
        }
    }

    #[test]
    fn zero_dt_is_identity() {
        let bodies = spawn::plummer(64, 1.0, 1.0, 5);
        let accels = vec![Vec3::new(9.0, 9.0, 9.0); 64];
        let dev = device_euler(Layout::SoAoaS, &bodies, &accels, 0.0);
        for (i, d) in dev.iter().enumerate() {
            assert_eq!(d.pos, bodies.pos[i]);
            assert_eq!(d.vel, bodies.vel[i]);
        }
    }

    #[test]
    fn integration_kernel_is_loop_free_and_small() {
        for layout in Layout::ALL {
            let k = build_integrate_kernel(layout);
            assert!(
                gpu_sim::ir::count::inner_loop_profile(&k).is_none(),
                "{layout}: no loops"
            );
            let params = vec![0u32; k.n_params as usize];
            let d = dynamic_instructions(&k, &params).unwrap();
            assert!(
                d < 40,
                "{layout}: {d} instructions — integration must be O(1)/thread"
            );
        }
    }
}
