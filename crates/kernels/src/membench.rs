//! The stripped-down memory benchmark kernels of Sec. III.
//!
//! Per the paper, the test kernel is:
//!
//! 1. set up all the variables,
//! 2. read `clock()`,
//! 3. load data from global memory using the layout under test,
//! 4. sum up everything that was loaded (so the compiler cannot drop or hoist
//!    the loads past the clock),
//! 5. read `clock()` again, store the difference for review.
//!
//! Each thread walks `iters` particles at a grid stride (so all threads of a
//! half-warp always touch *adjacent* particles — the pattern the layouts
//! differ on). The metric of Fig. 10 is
//! `Δclock / (iters × 7)` — average cycles per single 4-byte element.

use gpu_sim::ir::{Kernel, KernelBuilder, MemSpace, Operand};
use particle_layouts::Layout;

/// Configuration of a membench kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembenchConfig {
    /// Layout under test.
    pub layout: Layout,
    /// Particles each thread reads.
    pub iters: u32,
}

impl MembenchConfig {
    /// Total particles the launch touches (buffers must hold at least this).
    pub fn particles_needed(&self, grid: u32, block: u32) -> u32 {
        self.iters * grid * block
    }

    /// Elements (4-byte values the paper divides by): 7 per particle.
    pub fn elements(&self) -> u64 {
        self.iters as u64 * 7
    }
}

/// Build the membench kernel for a layout.
///
/// Parameters, in order: the layout's buffers ([`Layout::buffers`]), then
/// `out_delta` (u32 per thread) and `out_sum` (f32 per thread, keeps the
/// loads alive).
pub fn build_membench_kernel(cfg: MembenchConfig) -> Kernel {
    build_membench_with_space(cfg, MemSpace::Global)
}

/// As [`build_membench_kernel`] but reading through the **texture path** —
/// the pre-Fermi workaround for uncoalesced patterns the paper sets aside
/// ("texture- and constant memory … will not be discussed here"). Identical
/// access plan, cached read pipe instead of the coalescer.
pub fn build_membench_texture_kernel(cfg: MembenchConfig) -> Kernel {
    build_membench_with_space(cfg, MemSpace::Texture)
}

fn build_membench_with_space(cfg: MembenchConfig, space: MemSpace) -> Kernel {
    let plan = cfg.layout.read_plan_all();
    let n_buffers = cfg.layout.buffers().len();
    let tag = if space == MemSpace::Texture {
        "_tex"
    } else {
        ""
    };
    let mut b = KernelBuilder::new(format!("membench_{}{tag}", cfg.layout.label()));
    let bufs: Vec<_> = (0..n_buffers).map(|_| b.param()).collect();
    let out_delta = b.param();
    let out_sum = b.param();

    // (1) setup
    let i = b.global_thread_index();
    let ntid = b.special(gpu_sim::ir::SpecialReg::NtidX);
    let nctaid = b.special(gpu_sim::ir::SpecialReg::NctaidX);
    let total = b.imul(ntid.into(), nctaid.into());
    let acc = b.mov(Operand::ImmF(0.0));

    // (2) first clock
    let t0 = b.clock();

    // (3)+(4) strided reads and sum
    b.for_loop(Operand::ImmU(0), Operand::ImmU(cfg.iters), 1, |b, it| {
        let idx = b.mad_u(it.into(), total.into(), i.into());
        for r in &plan.reads {
            let addr = b.mad_u(idx.into(), Operand::ImmU(r.stride), bufs[r.buffer].into());
            let vals = b.ld(space, addr, r.offset, r.words as usize);
            for v in vals {
                b.alu_into(acc, gpu_sim::ir::AluOp::FAdd, acc.into(), v.into());
            }
        }
    });

    // (5) second clock, store delta (and the sum, to anchor the loads)
    let t1 = b.clock();
    let dt = b.alu(gpu_sim::ir::AluOp::ISub, t1.into(), t0.into());
    let da = b.mad_u(i.into(), Operand::ImmU(4), out_delta.into());
    b.st(MemSpace::Global, da, 0, vec![dt.into()]);
    let sa = b.mad_u(i.into(), Operand::ImmU(4), out_sum.into());
    b.st(MemSpace::Global, sa, 0, vec![acc.into()]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::ir::count::dynamic_instructions;
    use gpu_sim::mem::GlobalMemory;
    use particle_layouts::{DeviceImage, Particle};
    use simcore::Vec3;

    fn particles(n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| Particle {
                pos: Vec3::new(1.0, 2.0, 3.0),
                vel: Vec3::new(4.0, 5.0, 6.0),
                mass: 7.0 + (i % 3) as f32,
            })
            .collect()
    }

    /// The functional contract: every layout's kernel computes the same sums.
    #[test]
    fn all_layouts_sum_the_same_record() {
        let grid = 2u32;
        let block = 64u32;
        let iters = 4u32;
        let n = (grid * block * iters) as usize;
        let ps = particles(n);
        let mut reference: Option<Vec<f32>> = None;
        for layout in Layout::ALL {
            let cfg = MembenchConfig { layout, iters };
            let k = build_membench_kernel(cfg);
            let mut gmem = GlobalMemory::new(16 << 20);
            let img = DeviceImage::upload(&mut gmem, layout, &ps, block).unwrap();
            let out_delta = gmem.alloc((grid * block) as u64 * 4).unwrap();
            let out_sum = gmem.alloc((grid * block) as u64 * 4).unwrap();
            let mut params = img.base_params();
            params.push(out_delta.0 as u32);
            params.push(out_sum.0 as u32);
            run_grid(&k, grid, block, &params, &mut gmem).unwrap();
            let sums = gmem.read_f32(out_sum, (grid * block) as usize).unwrap();
            // Each thread read `iters` full records; the 7-float sum of a
            // record i is 1+2+3+4+5+6+(7+i%3).
            for (t, s) in sums.iter().enumerate() {
                let mut expect = 0.0f32;
                for it in 0..iters {
                    let pi = (it * grid * block) as usize + t;
                    expect += ps[pi].fields().iter().sum::<f32>();
                }
                assert_eq!(*s, expect, "{layout}: thread {t}");
            }
            match &reference {
                None => reference = Some(sums),
                Some(r) => assert_eq!(r, &sums, "{layout} disagrees with reference sums"),
            }
        }
    }

    #[test]
    fn vector_layouts_issue_fewer_loads() {
        let scalar = build_membench_kernel(MembenchConfig {
            layout: Layout::Unopt,
            iters: 8,
        });
        let vector = build_membench_kernel(MembenchConfig {
            layout: Layout::SoAoaS,
            iters: 8,
        });
        // Same param count shape differs; compare per-thread instructions.
        let ds = dynamic_instructions(&scalar, &[0, 0, 0]).unwrap();
        let dv = dynamic_instructions(&vector, &[0, 0, 0, 0]).unwrap();
        assert!(
            dv < ds,
            "SoAoaS ({dv}) must execute fewer instructions than unopt ({ds})"
        );
    }

    #[test]
    fn delta_outputs_are_written() {
        let cfg = MembenchConfig {
            layout: Layout::SoA,
            iters: 2,
        };
        let k = build_membench_kernel(cfg);
        let grid = 1u32;
        let block = 32u32;
        let ps = particles((grid * block * cfg.iters) as usize);
        let mut gmem = GlobalMemory::new(8 << 20);
        let img = DeviceImage::upload(&mut gmem, Layout::SoA, &ps, block).unwrap();
        let out_delta = gmem.alloc(32 * 4).unwrap();
        let out_sum = gmem.alloc(32 * 4).unwrap();
        let mut params = img.base_params();
        params.push(out_delta.0 as u32);
        params.push(out_sum.0 as u32);
        // Functional clock counts retired warp instructions: delta > 0.
        run_grid(&k, grid, block, &params, &mut gmem).unwrap();
        let deltas = gmem.download(out_delta, 4).unwrap();
        let d0 = u32::from_le_bytes(deltas.try_into().unwrap());
        assert!(d0 > 0, "clock delta must be positive, got {d0}");
    }

    #[test]
    fn particles_needed_accounting() {
        let cfg = MembenchConfig {
            layout: Layout::AoaS,
            iters: 16,
        };
        assert_eq!(cfg.particles_needed(4, 128), 8192);
        assert_eq!(cfg.elements(), 112);
    }
}

#[cfg(test)]
mod texture_tests {
    use super::*;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::exec::timed::time_resident;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
    use particle_layouts::{DeviceImage, Particle};
    use simcore::Vec3;

    fn run_sum(kernel: &gpu_sim::ir::Kernel, layout: Layout, iters: u32) -> Vec<f32> {
        let block = 64u32;
        let n = (block * iters) as usize;
        let ps: Vec<Particle> = (0..n)
            .map(|i| Particle {
                pos: Vec3::splat(i as f32),
                vel: Vec3::ZERO,
                mass: 1.0,
            })
            .collect();
        let mut gmem = GlobalMemory::new(16 << 20);
        let img = DeviceImage::upload(&mut gmem, layout, &ps, block).unwrap();
        let d = gmem.alloc(block as u64 * 4).unwrap();
        let s = gmem.alloc(block as u64 * 4).unwrap();
        let mut params = img.base_params();
        params.push(d.0 as u32);
        params.push(s.0 as u32);
        run_grid(kernel, 1, block, &params, &mut gmem).unwrap();
        gmem.read_f32(s, block as usize).unwrap()
    }

    #[test]
    fn texture_path_is_functionally_identical() {
        let cfg = MembenchConfig {
            layout: Layout::Unopt,
            iters: 4,
        };
        let g = run_sum(&build_membench_kernel(cfg), cfg.layout, cfg.iters);
        let t = run_sum(&build_membench_texture_kernel(cfg), cfg.layout, cfg.iters);
        assert_eq!(g, t);
    }

    #[test]
    fn texture_rescues_the_uncoalesced_layout() {
        // The experiment the paper skipped: the unopt layout through the
        // texture cache vs through the CC-1.0 coalescer.
        let dev = DeviceConfig::g8800gtx();
        let tp = TimingParams::for_driver(DriverModel::Cuda10);
        let cfg = MembenchConfig {
            layout: Layout::Unopt,
            iters: 16,
        };
        let time = |k: &gpu_sim::ir::Kernel| {
            let n = cfg.particles_needed(1, 128) as usize;
            let ps: Vec<Particle> = (0..n).map(|_| Particle::SENTINEL).collect();
            let mut gmem = GlobalMemory::new(64 << 20);
            let img = DeviceImage::upload(&mut gmem, cfg.layout, &ps, 128).unwrap();
            let d = gmem.alloc(128 * 4).unwrap();
            let s = gmem.alloc(128 * 4).unwrap();
            let mut params = img.base_params();
            params.push(d.0 as u32);
            params.push(s.0 as u32);
            time_resident(
                k,
                &[0],
                128,
                1,
                &params,
                &mut gmem,
                &dev,
                DriverModel::Cuda10,
                &tp,
            )
            .unwrap()
        };
        let global = time(&build_membench_kernel(cfg));
        let tex = time(&build_membench_texture_kernel(cfg));
        assert!(
            tex.cycles < global.cycles,
            "texture ({}) should beat uncoalesced global ({})",
            tex.cycles,
            global.cycles
        );
        assert!(tex.tex_hits > 0, "adjacent threads share 32B lines");
        assert!(
            tex.bus_bytes < global.bus_bytes,
            "the cache deduplicates line traffic"
        );
    }
}
