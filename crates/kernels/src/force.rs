//! The tiled O(n²) far-field force kernel (paper Sec. IV).
//!
//! Structure (one thread per target particle, shared-memory tiles of K = the
//! block size, as in GPU Gems 3 ch. 31, whose shape the paper's port follows):
//!
//! ```text
//! S: i = blockIdx·blockDim + threadIdx; load own position; acc = 0
//! B: for each tile: stage one source particle per thread into shared memory
//! P: for j in 0..K: accumulate softened pairwise acceleration from tile[j]
//! ```
//!
//! The innermost loop `P` is deliberately built in the paper's *baseline*
//! shape: a `mad`-computed shared-memory address and an ε² that is recomputed
//! every iteration. The optimization ladder is then applied as real IR
//! passes —
//!
//! * `icm = true` runs [`gpu_sim::ir::passes::licm`] (hoists ε², freeing one
//!   register once the loop is unrolled);
//! * `unroll > 1` runs [`gpu_sim::ir::passes::unroll_innermost`] (removes
//!   induction add + compare + jump, hard-codes the address offsets, frees
//!   the iterator register at full unroll).
//!
//! The layout only changes phase `B` (how the tile is fetched from global
//! memory) and the upload footprint — phase `P` reads shared memory and is
//! layout-independent, which is why the paper finds layout effects small and
//! unrolling effects large in the full application (Sec. IV-A).

use gpu_sim::ir::passes::{licm, unroll_innermost};
use gpu_sim::ir::{AluOp, Kernel, KernelBuilder, MemSpace, Operand, Reg, SpecialReg};
use nbody::model::MIN_DIST_SQ;
use particle_layouts::{DeviceImage, Layout};

/// Configuration of a force-kernel build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForceKernelConfig {
    /// Global-memory layout of the particle data.
    pub layout: Layout,
    /// Threads per block == tile size K.
    pub block: u32,
    /// Inner-loop unroll factor (1 = rolled; `block` = full unroll). Must
    /// divide `block`.
    pub unroll: u32,
    /// Apply invariant code motion before unrolling.
    pub icm: bool,
}

impl ForceKernelConfig {
    /// Shared memory the kernel declares (one float4 per tile slot).
    pub fn smem_bytes(&self) -> u32 {
        self.block * 16
    }
}

/// The optimization ladder of Figure 12, from the baseline GPU port to the
/// fully tuned kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Original AoS (packed) layout, rolled loop — the GPU baseline.
    Baseline,
    /// Structure-of-arrays layout.
    SoA,
    /// Array of aligned structures.
    AoaS,
    /// The paper's SoAoaS layout.
    SoAoaS,
    /// SoAoaS + fully unrolled innermost loop (the +18 % step).
    SoAoaSUnrolled,
    /// SoAoaS + unroll + invariant code motion + 128-thread blocks
    /// (the occupancy step; the paper's final 1.27×).
    Full,
}

impl OptLevel {
    /// Every level, in the order Fig. 12 stacks them.
    pub const ALL: [OptLevel; 6] = [
        OptLevel::Baseline,
        OptLevel::SoA,
        OptLevel::AoaS,
        OptLevel::SoAoaS,
        OptLevel::SoAoaSUnrolled,
        OptLevel::Full,
    ];

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Baseline => "GPU baseline (AoS)",
            OptLevel::SoA => "SoA",
            OptLevel::AoaS => "AoaS",
            OptLevel::SoAoaS => "SoAoaS",
            OptLevel::SoAoaSUnrolled => "SoAoaS+unroll",
            OptLevel::Full => "SoAoaS+unroll+ICM (block 128)",
        }
    }

    /// The kernel configuration this level denotes. The pre-tuning levels use
    /// the original port's 192-thread blocks; the final level switches to 128
    /// as the paper does.
    pub fn config(self) -> ForceKernelConfig {
        match self {
            OptLevel::Baseline => ForceKernelConfig {
                layout: Layout::Unopt,
                block: 192,
                unroll: 1,
                icm: false,
            },
            OptLevel::SoA => ForceKernelConfig {
                layout: Layout::SoA,
                block: 192,
                unroll: 1,
                icm: false,
            },
            OptLevel::AoaS => ForceKernelConfig {
                layout: Layout::AoaS,
                block: 192,
                unroll: 1,
                icm: false,
            },
            OptLevel::SoAoaS => ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 192,
                unroll: 1,
                icm: false,
            },
            OptLevel::SoAoaSUnrolled => ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 192,
                unroll: 192,
                icm: false,
            },
            OptLevel::Full => ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 128,
                unroll: 128,
                icm: true,
            },
        }
    }
}

impl core::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Build the force kernel for a configuration.
///
/// Parameters, in order: the layout's buffers, then `out` (float4 per
/// particle), `n` (padded particle count, a multiple of `block`), `eps`
/// (ε as raw f32 bits) and `smem0` (the shared-memory tile base, always 0 —
/// a param so address folding can express "base + hard-coded offset").
pub fn build_force_kernel(cfg: ForceKernelConfig) -> Kernel {
    assert!(
        cfg.block > 0 && cfg.block.is_multiple_of(32),
        "block must be a warp multiple"
    );
    assert!(
        cfg.unroll >= 1 && cfg.block.is_multiple_of(cfg.unroll),
        "unroll must divide the block size"
    );
    let mut k = build_baseline(cfg);
    if cfg.icm {
        k = licm(&k);
    }
    if cfg.unroll > 1 {
        k = unroll_innermost(&k, cfg.unroll);
    }
    k
}

fn build_baseline(cfg: ForceKernelConfig) -> Kernel {
    let plan = cfg.layout.read_plan_posmass();
    let lanes = cfg.layout.posmass_lanes();
    let n_buffers = cfg.layout.buffers().len();
    let name = format!(
        "force_{}_b{}_u{}{}",
        cfg.layout.label(),
        cfg.block,
        cfg.unroll,
        if cfg.icm { "_icm" } else { "" }
    );
    let mut b = KernelBuilder::new(name);
    b.shared_mem(cfg.smem_bytes());
    let bufs: Vec<Reg> = (0..n_buffers).map(|_| b.param()).collect();
    let out = b.param();
    let n = b.param();
    let eps_param = b.param();
    let smem0 = b.param();

    // --- S: per-thread setup -------------------------------------------
    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaidX);
    let ntid = b.special(SpecialReg::NtidX);
    let i = b.mad_u(ctaid.into(), ntid.into(), tid.into());
    // Own position (the mass word of the plan is loaded but unused for self).
    let own = load_posmass(&mut b, &plan, &bufs, i);
    let (px, py, pz, _own_mass) = extract(&own, lanes);
    // Output address, computed in setup so `i`/`out` die here (nvcc-style
    // rematerialization keeps them out of the loop-carried set).
    let oaddr = b.mad_u(i.into(), Operand::ImmU(16), out.into());
    let myslot = b.imul(tid.into(), Operand::ImmU(16));
    // ε lives in a register across the loops (params are re-read from param
    // space; a loop-hot value gets a copy — see gpu-sim regalloc docs).
    let eps = b.mov(eps_param.into());
    let ax = b.mov(Operand::ImmF(0.0));
    let ay = b.mov(Operand::ImmF(0.0));
    let az = b.mov(Operand::ImmF(0.0));

    // --- B: tile loop ----------------------------------------------------
    // jj walks this thread's staging source: tid, tid+K, tid+2K, ...
    b.for_loop(tid.into(), n.into(), cfg.block, |b, jj| {
        let tile = load_posmass(b, &plan, &bufs, jj);
        let (tpx, tpy, tpz, tm) = extract(&tile, lanes);
        b.st(
            MemSpace::Shared,
            myslot,
            0,
            vec![tpx.into(), tpy.into(), tpz.into(), tm.into()],
        );
        b.sync();

        // --- P: the innermost loop over the tile ------------------------
        b.for_loop(Operand::ImmU(0), Operand::ImmU(cfg.block), 1, |b, j| {
            let jaddr = b.mad_u(j.into(), Operand::ImmU(16), smem0.into());
            let v = b.ld(MemSpace::Shared, jaddr, 0, 4);
            let (bx, by, bz, bm) = (v[0], v[1], v[2], v[3]);
            // The baseline recomputes ε² here; `licm` hoists it.
            let eps2 = b.fmul(eps.into(), eps.into());
            let dx = b.fsub(bx.into(), px.into());
            let dy = b.fsub(by.into(), py.into());
            let dz = b.fsub(bz.into(), pz.into());
            let t = b.fmul(dx.into(), dx.into());
            b.fmad_into(t, dy.into(), dy.into(), t.into());
            b.fmad_into(t, dz.into(), dz.into(), t.into());
            let r2 = b.fadd(t.into(), eps2.into());
            b.alu_into(r2, AluOp::FMax, r2.into(), Operand::ImmF(MIN_DIST_SQ));
            let rinv = b.frsqrt(r2.into());
            let rc = b.fmul(rinv.into(), rinv.into());
            b.alu_into(rc, AluOp::FMul, rc.into(), rinv.into());
            let s = b.fmul(bm.into(), rc.into());
            b.fmad_into(ax, dx.into(), s.into(), ax.into());
            b.fmad_into(ay, dy.into(), s.into(), ay.into());
            b.fmad_into(az, dz.into(), s.into(), az.into());
        });
        b.sync();
    });

    // --- epilogue: write the accumulated acceleration as a float4 -------
    b.st(
        MemSpace::Global,
        oaddr,
        0,
        vec![ax.into(), ay.into(), az.into(), Operand::ImmF(0.0)],
    );
    b.finish()
}

/// Emit the posmass reads of `plan` for element index `idx`; returns the
/// loaded registers grouped per read.
fn load_posmass(
    b: &mut KernelBuilder,
    plan: &particle_layouts::ReadPlan,
    bufs: &[Reg],
    idx: Reg,
) -> Vec<Vec<Reg>> {
    plan.reads
        .iter()
        .map(|r| {
            let addr = b.mad_u(idx.into(), Operand::ImmU(r.stride), bufs[r.buffer].into());
            b.ld(MemSpace::Global, addr, r.offset, r.words as usize)
        })
        .collect()
}

fn extract(
    reads: &[Vec<Reg>],
    lanes: particle_layouts::plan::PosMassLanes,
) -> (Reg, Reg, Reg, Reg) {
    (
        reads[lanes.px.0][lanes.px.1],
        reads[lanes.py.0][lanes.py.1],
        reads[lanes.pz.0][lanes.pz.1],
        reads[lanes.mass.0][lanes.mass.1],
    )
}

/// Assemble the launch parameter values for a force kernel over `img`,
/// writing accelerations to `out`.
pub fn force_params(img: &DeviceImage, out: gpu_sim::mem::DevicePtr, eps: f32) -> Vec<u32> {
    let mut p = img.base_params();
    p.push(out.0 as u32);
    p.push(img.padded_n);
    p.push(eps.to_bits());
    p.push(0); // smem0
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::ir::count::{dynamic_instructions, inner_loop_profile};
    use gpu_sim::ir::regalloc::register_demand;
    use gpu_sim::mem::GlobalMemory;
    use nbody::direct::accelerations;
    use nbody::model::{Bodies, ForceParams};
    use nbody::spawn;
    use particle_layouts::device::{alloc_accel_out, download_accels};
    use particle_layouts::Particle;

    fn to_particles(bodies: &Bodies, g: f32) -> Vec<Particle> {
        (0..bodies.len())
            .map(|i| Particle {
                pos: bodies.pos[i],
                vel: bodies.vel[i],
                mass: g * bodies.mass[i],
            })
            .collect()
    }

    /// Run a force kernel functionally and return the accelerations.
    fn run_kernel(
        cfg: ForceKernelConfig,
        bodies: &Bodies,
        params: &ForceParams,
    ) -> Vec<simcore::Vec3> {
        let k = build_force_kernel(cfg);
        let mut gmem = GlobalMemory::new(64 << 20);
        let ps = to_particles(bodies, params.g);
        let img = DeviceImage::upload(&mut gmem, cfg.layout, &ps, cfg.block).unwrap();
        let out = alloc_accel_out(&mut gmem, img.padded_n).unwrap();
        let p = force_params(&img, out, params.softening);
        let grid = img.padded_n / cfg.block;
        run_grid(&k, grid, cfg.block, &p, &mut gmem).unwrap();
        download_accels(&gmem, out, img.n).unwrap()
    }

    fn assert_bitwise_eq(a: &[simcore::Vec3], b: &[simcore::Vec3], what: &str) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a[i].x.to_bits(), b[i].x.to_bits(), "{what}: body {i} x");
            assert_eq!(a[i].y.to_bits(), b[i].y.to_bits(), "{what}: body {i} y");
            assert_eq!(a[i].z.to_bits(), b[i].z.to_bits(), "{what}: body {i} z");
        }
    }

    /// The central validation: every layout × every optimization level
    /// computes bit-identical accelerations to the CPU reference.
    #[test]
    fn every_layout_matches_cpu_bitwise() {
        let bodies = spawn::uniform_ball(200, 5.0, 3.0, 42); // padded to 256
        let fp = ForceParams::default();
        let cpu = accelerations(&bodies, &fp);
        // Padding must not change physics: CPU over unpadded == kernel over padded.
        for layout in Layout::ALL {
            let cfg = ForceKernelConfig {
                layout,
                block: 128,
                unroll: 1,
                icm: false,
            };
            let gpu = run_kernel(cfg, &bodies, &fp);
            assert_bitwise_eq(&cpu, &gpu, layout.label());
        }
    }

    #[test]
    fn unroll_and_icm_preserve_results_bitwise() {
        let bodies = spawn::disk_galaxy(150, 4.0, 1.0, 1.0, 7);
        let fp = ForceParams {
            g: 1.0,
            softening: 0.02,
        };
        let cpu = accelerations(&bodies, &fp);
        for (unroll, icm) in [(1, true), (4, false), (32, true), (128, false), (128, true)] {
            let cfg = ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 128,
                unroll,
                icm,
            };
            let gpu = run_kernel(cfg, &bodies, &fp);
            assert_bitwise_eq(&cpu, &gpu, &format!("unroll={unroll},icm={icm}"));
        }
    }

    #[test]
    fn non_unit_g_is_baked_into_masses() {
        let bodies = spawn::uniform_ball(100, 3.0, 2.0, 5);
        let fp = ForceParams {
            g: 6.674e-3,
            softening: 0.05,
        };
        let cpu = accelerations(&bodies, &fp);
        let cfg = ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: 128,
            unroll: 128,
            icm: true,
        };
        let gpu = run_kernel(cfg, &bodies, &fp);
        assert_bitwise_eq(&cpu, &gpu, "g-scaled");
    }

    /// The paper's instruction accounting (Sec. IV-A): the rolled inner loop
    /// carries ~20 instructions per iteration incl. overhead; full unrolling
    /// removes the compare, the induction add, the jump and the address add —
    /// ≈ 19 % fewer instructions.
    #[test]
    fn unrolling_cuts_the_inner_loop_budget_as_in_the_paper() {
        let rolled = build_force_kernel(ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: 128,
            unroll: 1,
            icm: false,
        });
        let full = build_force_kernel(ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: 128,
            unroll: 128,
            icm: false,
        });
        let p = inner_loop_profile(&rolled).unwrap();
        assert_eq!(p.per_iteration(), 21, "18-instruction body + 3 overhead");
        // Per-element instructions at N = one tile of 128, measured end to end.
        let n = 128u32 * 128; // big enough that S and B wash out
        let params = |k: &Kernel| {
            let mut v = vec![0u32; k.n_params as usize];
            // n param is third-from-last (out, n, eps, smem0 at the tail).
            let idx = k.n_params as usize - 3;
            v[idx] = n;
            v
        };
        let d_rolled = dynamic_instructions(&rolled, &params(&rolled)).unwrap() as f64;
        let d_full = dynamic_instructions(&full, &params(&full)).unwrap() as f64;
        let reduction = 1.0 - d_full / d_rolled;
        assert!(
            (0.15..0.25).contains(&reduction),
            "instruction reduction {reduction:.3} outside the paper's ~19% band"
        );
    }

    /// The paper's register ladder: full unrolling frees the iterator
    /// register; ICM frees one more.
    #[test]
    fn register_ladder_matches_the_paper() {
        let demand = |unroll: u32, icm: bool| {
            register_demand(&build_force_kernel(ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 128,
                unroll,
                icm,
            }))
            .regs_per_thread
        };
        let baseline = demand(1, false);
        let unrolled = demand(128, false);
        let full = demand(128, true);
        assert_eq!(baseline, 18, "baseline kernel registers");
        assert_eq!(unrolled, 17, "full unroll frees the iterator");
        assert_eq!(full, 16, "ICM frees one more");
    }

    #[test]
    fn opt_levels_produce_valid_configs() {
        for lvl in OptLevel::ALL {
            let cfg = lvl.config();
            assert!(cfg.block % cfg.unroll == 0);
            let k = build_force_kernel(cfg);
            assert!(k.smem_bytes >= cfg.block * 16);
            assert!(!lvl.label().is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn non_warp_multiple_block_rejected() {
        build_force_kernel(ForceKernelConfig {
            layout: Layout::SoA,
            block: 100,
            unroll: 1,
            icm: false,
        });
    }
}

/// Build the **double-buffered** (prefetching) variant of the SoAoaS force
/// kernel: each tile's global load is issued *before* the inner loop over the
/// previous tile, hiding the fetch latency behind 128 iterations of compute.
///
/// The classic trade (measured by `bench --bin table_prefetch`): the prefetch
/// buffer costs four extra registers, which on a CC-1.0 register file can
/// push the kernel off its occupancy step — latency hiding bought by losing
/// warps. SoAoaS-only (one float4 per tile element).
pub fn build_force_kernel_prefetch(cfg: ForceKernelConfig) -> Kernel {
    assert_eq!(
        cfg.layout,
        Layout::SoAoaS,
        "prefetch variant is built for the tuned layout"
    );
    assert!(cfg.block.is_multiple_of(32) && cfg.block.is_multiple_of(cfg.unroll));
    let mut b = KernelBuilder::new(format!("force_prefetch_b{}_u{}", cfg.block, cfg.unroll));
    b.shared_mem(cfg.smem_bytes());
    let posmass = b.param();
    let _vel = b.param(); // SoAoaS buffer list parity with the standard kernel
    let out = b.param();
    let n = b.param();
    let eps_param = b.param();
    let smem0 = b.param();

    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaidX);
    let ntid = b.special(SpecialReg::NtidX);
    let i = b.mad_u(ctaid.into(), ntid.into(), tid.into());
    let own_addr = b.mad_u(i.into(), Operand::ImmU(16), posmass.into());
    let own = b.ld(MemSpace::Global, own_addr, 0, 4);
    let (px, py, pz) = (own[0], own[1], own[2]);
    let oaddr = b.mad_u(i.into(), Operand::ImmU(16), out.into());
    let myslot = b.imul(tid.into(), Operand::ImmU(16));
    let eps = b.mov(eps_param.into());
    let eps2 = b.fmul(eps.into(), eps.into());
    let ax = b.mov(Operand::ImmF(0.0));
    let ay = b.mov(Operand::ImmF(0.0));
    let az = b.mov(Operand::ImmF(0.0));
    // Clamp bound for the prefetch index: the base of the last tile. The
    // clamp must act on the *tile base*, not the per-lane element — clamping
    // every lane to `n - 1` would collapse the half-warp onto one address on
    // the final trip and decay the load into 16 transactions (kernel-lint
    // flags exactly that pattern as uncoalesced).
    let nmb = b.alu(AluOp::ISub, n.into(), Operand::ImmU(cfg.block));

    // Prefetch tile 0 into the persistent buffer registers.
    let cur: Vec<gpu_sim::ir::Reg> = {
        let a0 = b.mad_u(tid.into(), Operand::ImmU(16), posmass.into());
        b.ld(MemSpace::Global, a0, 0, 4)
    };

    b.for_loop(tid.into(), n.into(), cfg.block, |b, jj| {
        // Publish the prefetched tile element.
        b.st(
            MemSpace::Shared,
            myslot,
            0,
            vec![cur[0].into(), cur[1].into(), cur[2].into(), cur[3].into()],
        );
        b.sync();
        // Kick off the next tile's fetch (clamped on the last tile; the
        // value is published but never consumed past the loop).
        let next = b.iadd(jj.into(), Operand::ImmU(cfg.block));
        // next = tid + (k+1)·block; clamp its tile base (next - tid) to the
        // last tile so every lane keeps its 16-byte stride.
        let next_base = b.alu(AluOp::ISub, next.into(), tid.into());
        let capped = b.alu(AluOp::IMin, next_base.into(), nmb.into());
        let elem = b.iadd(capped.into(), tid.into());
        let naddr = b.mad_u(elem.into(), Operand::ImmU(16), posmass.into());
        b.ld_into(MemSpace::Global, naddr, 0, cur.clone());
        // Inner loop over the published tile (identical to the standard
        // kernel, ε² hoisted).
        b.for_loop(Operand::ImmU(0), Operand::ImmU(cfg.block), 1, |b, j| {
            let jaddr = b.mad_u(j.into(), Operand::ImmU(16), smem0.into());
            let v = b.ld(MemSpace::Shared, jaddr, 0, 4);
            let dx = b.fsub(v[0].into(), px.into());
            let dy = b.fsub(v[1].into(), py.into());
            let dz = b.fsub(v[2].into(), pz.into());
            let t = b.fmul(dx.into(), dx.into());
            b.fmad_into(t, dy.into(), dy.into(), t.into());
            b.fmad_into(t, dz.into(), dz.into(), t.into());
            let r2 = b.fadd(t.into(), eps2.into());
            b.alu_into(r2, AluOp::FMax, r2.into(), Operand::ImmF(MIN_DIST_SQ));
            let rinv = b.frsqrt(r2.into());
            let rc = b.fmul(rinv.into(), rinv.into());
            b.alu_into(rc, AluOp::FMul, rc.into(), rinv.into());
            let s = b.fmul(v[3].into(), rc.into());
            b.fmad_into(ax, dx.into(), s.into(), ax.into());
            b.fmad_into(ay, dy.into(), s.into(), ay.into());
            b.fmad_into(az, dz.into(), s.into(), az.into());
        });
        b.sync();
    });

    b.st(
        MemSpace::Global,
        oaddr,
        0,
        vec![ax.into(), ay.into(), az.into(), Operand::ImmF(0.0)],
    );
    let mut k = b.finish();
    if cfg.unroll > 1 {
        k = unroll_innermost(&k, cfg.unroll);
    }
    k
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::ir::regalloc::register_demand;
    use gpu_sim::mem::GlobalMemory;
    use nbody::direct::accelerations;
    use nbody::model::ForceParams;
    use nbody::spawn;
    use particle_layouts::device::{alloc_accel_out, download_accels};
    use particle_layouts::DeviceImage;

    #[test]
    fn prefetch_variant_is_bitwise_identical_physics() {
        let bodies = spawn::disk_galaxy(300, 4.0, 1.0, 1.0, 17);
        let fp = ForceParams::default();
        let cpu = accelerations(&bodies, &fp);
        for unroll in [1u32, 128] {
            let cfg = ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 128,
                unroll,
                icm: true,
            };
            let k = build_force_kernel_prefetch(cfg);
            let mut gmem = GlobalMemory::new(64 << 20);
            let ps: Vec<particle_layouts::Particle> = (0..bodies.len())
                .map(|i| particle_layouts::Particle {
                    pos: bodies.pos[i],
                    vel: bodies.vel[i],
                    mass: bodies.mass[i],
                })
                .collect();
            let img = DeviceImage::upload(&mut gmem, Layout::SoAoaS, &ps, cfg.block).unwrap();
            let out = alloc_accel_out(&mut gmem, img.padded_n).unwrap();
            let params = force_params(&img, out, fp.softening);
            run_grid(&k, img.padded_n / cfg.block, cfg.block, &params, &mut gmem).unwrap();
            let gpu = download_accels(&gmem, out, img.n).unwrap();
            for i in 0..cpu.len() {
                assert_eq!(cpu[i], gpu[i], "unroll {unroll}, body {i}");
            }
        }
    }

    #[test]
    fn prefetch_costs_registers() {
        let cfg = ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: 128,
            unroll: 128,
            icm: true,
        };
        let standard = register_demand(&build_force_kernel(cfg)).regs_per_thread;
        let prefetch = register_demand(&build_force_kernel_prefetch(cfg)).regs_per_thread;
        assert!(
            prefetch > standard,
            "the double buffer must cost registers: {prefetch} vs {standard}"
        );
        assert!(
            prefetch - standard <= 6,
            "but only the buffer + clamp temps"
        );
    }
}
