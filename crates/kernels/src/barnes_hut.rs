//! A GPU Barnes–Hut traversal kernel — the road the paper rules out.
//!
//! Sec. I-D: *"Because of its heavily recursive nature [Barnes–Hut] is not an
//! algorithm that allows for an (easy) implementation on the CUDA
//! architecture … the recursion has to be transformed into an iterative
//! equivalent."* This module does that transformation for real, so the claim
//! can be measured instead of taken on faith:
//!
//! * the octree is consumed in linearized form
//!   ([`nbody::barnes_hut::LinearTree`]);
//! * each thread walks the tree with an explicit stack in **shared memory**
//!   (interleaved by depth so pushes/pops are bank-conflict-free);
//! * the walk is a *divergent* `While` loop — lanes finish at different
//!   times and the warp serializes to the slowest lane, which is exactly the
//!   cost the paper avoids by choosing the O(n²) kernel.
//!
//! Functionally the kernel is validated **bit-for-bit** against
//! [`LinearTree::accel_kernel_order`], the CPU traversal with identical
//! push order and operation order.

use gpu_sim::ir::{AluOp, CmpOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};
use nbody::barnes_hut::{LINEAR_FANOUT, LINEAR_LEAF_CAP};
use nbody::model::MIN_DIST_SQ;

/// Configuration of the traversal kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BhKernelConfig {
    /// Threads per block. The shared-memory stack costs `block × depth × 4`
    /// bytes, so 64 is the practical choice on a 16 KiB-smem device.
    pub block: u32,
    /// Per-thread stack capacity (entries). Use
    /// [`LinearTree::max_stack_depth`](nbody::barnes_hut::LinearTree::max_stack_depth)
    /// to size it; overflow is caught by the simulator's bounds checks.
    pub depth: u32,
}

impl BhKernelConfig {
    /// A G80-friendly default: 64-thread blocks, 48-deep stacks (12 KiB).
    pub fn g80_default() -> BhKernelConfig {
        BhKernelConfig {
            block: 64,
            depth: 48,
        }
    }

    /// Shared memory the kernel declares.
    pub fn smem_bytes(&self) -> u32 {
        self.block * self.depth * 4
    }
}

/// Static trip-count budget for the traversal's `While` loop.
///
/// Every node enters a thread's stack at most once (it has exactly one
/// parent, and children are pushed only when their parent is popped), so a
/// traversal over a tree of `n_nodes` nodes pops — and therefore iterates —
/// at most `n_nodes` times. Feed this to
/// [`AnalysisConfig::with_trip_budget`](gpu_sim::analyze::AnalysisConfig::with_trip_budget)
/// to bound the interval analysis of the walk.
pub fn traversal_budget(n_nodes: u32) -> u64 {
    u64::from(n_nodes).max(1)
}

/// Build the Barnes–Hut traversal kernel.
///
/// Parameters, in order:
/// `pos` (float4 per target particle: x,y,z,_), `com` (float4 per node),
/// `side_meta` (float4 per node: side², first_child|body_start, n_children,
/// n_bodies — u32s as raw bits), `bodies` (float4 per leaf body), `out`
/// (float4 per particle), `theta_sq` (f32 bits), `eps` (f32 bits).
pub fn build_bh_kernel(cfg: BhKernelConfig) -> Kernel {
    assert!(cfg.block.is_multiple_of(32) && cfg.depth >= 8);
    let mut b = KernelBuilder::new(format!("bh_b{}_d{}", cfg.block, cfg.depth));
    b.shared_mem(cfg.smem_bytes());
    let pos = b.param();
    let com = b.param();
    let side_meta = b.param();
    let bodies = b.param();
    let out = b.param();
    let theta_sq_p = b.param();
    let eps_p = b.param();

    let tid = b.special(SpecialReg::TidX);
    let ctaid = b.special(SpecialReg::CtaidX);
    let ntid = b.special(SpecialReg::NtidX);
    let i = b.mad_u(ctaid.into(), ntid.into(), tid.into());
    let paddr = b.mad_u(i.into(), Operand::ImmU(16), pos.into());
    let own = b.ld(MemSpace::Global, paddr, 0, 4);
    let (px, py, pz) = (own[0], own[1], own[2]);
    let oaddr = b.mad_u(i.into(), Operand::ImmU(16), out.into());
    let slot = b.imul(tid.into(), Operand::ImmU(4));
    let theta_sq = b.mov(theta_sq_p.into());
    let eps = b.mov(eps_p.into());
    let eps2 = b.fmul(eps.into(), eps.into());
    let ax = b.mov(Operand::ImmF(0.0));
    let ay = b.mov(Operand::ImmF(0.0));
    let az = b.mov(Operand::ImmF(0.0));

    // Push the root: stack[0] = 0, sp = 1.
    let zero_node = b.mov(Operand::ImmU(0));
    b.st(MemSpace::Shared, slot, 0, vec![zero_node.into()]);
    let sp = b.mov(Operand::ImmU(1));
    let stride = Operand::ImmU(cfg.block * 4);

    b.do_while(|b| {
        // Pop.
        b.alu_into(sp, AluOp::ISub, sp.into(), Operand::ImmU(1));
        let sa = b.mad_u(sp.into(), stride, slot.into());
        let node = b.ld(MemSpace::Shared, sa, 0, 1)[0];
        // Node data.
        let caddr = b.mad_u(node.into(), Operand::ImmU(16), com.into());
        let c = b.ld(MemSpace::Global, caddr, 0, 4);
        let maddr = b.mad_u(node.into(), Operand::ImmU(16), side_meta.into());
        let m = b.ld(MemSpace::Global, maddr, 0, 4);
        let (side2, first, nchild, nbody) = (m[0], m[1], m[2], m[3]);
        // d² to the COM (no softening in the opening test).
        let dx = b.fsub(c[0].into(), px.into());
        let dy = b.fsub(c[1].into(), py.into());
        let dz = b.fsub(c[2].into(), pz.into());
        let t = b.fmul(dx.into(), dx.into());
        b.fmad_into(t, dy.into(), dy.into(), t.into());
        b.fmad_into(t, dz.into(), dz.into(), t.into());
        let thr = b.fmul(theta_sq.into(), t.into());
        let far = b.setp(CmpOp::FLt, side2.into(), thr.into());
        b.if_else(
            far,
            |b| {
                // Point-mass contribution of the whole cell.
                let r2 = b.fadd(t.into(), eps2.into());
                b.alu_into(r2, AluOp::FMax, r2.into(), Operand::ImmF(MIN_DIST_SQ));
                let rinv = b.frsqrt(r2.into());
                let rc = b.fmul(rinv.into(), rinv.into());
                b.alu_into(rc, AluOp::FMul, rc.into(), rinv.into());
                let s = b.fmul(c[3].into(), rc.into());
                b.fmad_into(ax, dx.into(), s.into(), ax.into());
                b.fmad_into(ay, dy.into(), s.into(), ay.into());
                b.fmad_into(az, dz.into(), s.into(), az.into());
            },
            |b| {
                let is_internal = b.setp(CmpOp::UNe, nchild.into(), Operand::ImmU(0));
                b.if_else(
                    is_internal,
                    |b| {
                        // Push children ascending.
                        b.for_loop(
                            Operand::ImmU(0),
                            Operand::ImmU(LINEAR_FANOUT as u32),
                            1,
                            |b, cix| {
                                let in_range = b.setp(CmpOp::ULt, cix.into(), nchild.into());
                                b.if_then(in_range, |b| {
                                    let child = b.iadd(first.into(), cix.into());
                                    let pa = b.mad_u(sp.into(), stride, slot.into());
                                    b.st(MemSpace::Shared, pa, 0, vec![child.into()]);
                                    b.alu_into(sp, AluOp::IAdd, sp.into(), Operand::ImmU(1));
                                });
                            },
                        );
                    },
                    |b| {
                        // Leaf: accumulate members.
                        b.for_loop(
                            Operand::ImmU(0),
                            Operand::ImmU(LINEAR_LEAF_CAP as u32),
                            1,
                            |b, j| {
                                let in_range = b.setp(CmpOp::ULt, j.into(), nbody.into());
                                b.if_then(in_range, |b| {
                                    let bi = b.iadd(first.into(), j.into());
                                    let ba = b.mad_u(bi.into(), Operand::ImmU(16), bodies.into());
                                    let body = b.ld(MemSpace::Global, ba, 0, 4);
                                    let bdx = b.fsub(body[0].into(), px.into());
                                    let bdy = b.fsub(body[1].into(), py.into());
                                    let bdz = b.fsub(body[2].into(), pz.into());
                                    let bt = b.fmul(bdx.into(), bdx.into());
                                    b.fmad_into(bt, bdy.into(), bdy.into(), bt.into());
                                    b.fmad_into(bt, bdz.into(), bdz.into(), bt.into());
                                    let r2 = b.fadd(bt.into(), eps2.into());
                                    b.alu_into(
                                        r2,
                                        AluOp::FMax,
                                        r2.into(),
                                        Operand::ImmF(MIN_DIST_SQ),
                                    );
                                    let rinv = b.frsqrt(r2.into());
                                    let rc = b.fmul(rinv.into(), rinv.into());
                                    b.alu_into(rc, AluOp::FMul, rc.into(), rinv.into());
                                    let s = b.fmul(body[3].into(), rc.into());
                                    b.fmad_into(ax, bdx.into(), s.into(), ax.into());
                                    b.fmad_into(ay, bdy.into(), s.into(), ay.into());
                                    b.fmad_into(az, bdz.into(), s.into(), az.into());
                                });
                            },
                        );
                    },
                );
            },
        );
        // Continue while the stack is non-empty.
        b.setp(CmpOp::UNe, sp.into(), Operand::ImmU(0))
    });

    b.st(
        MemSpace::Global,
        oaddr,
        0,
        vec![ax.into(), ay.into(), az.into(), Operand::ImmF(0.0)],
    );
    b.finish()
}

/// Upload a [`LinearTree`](nbody::barnes_hut::LinearTree) plus the target
/// positions; returns the kernel parameter vector (without `out`).
pub fn upload_bh(
    gmem: &mut gpu_sim::mem::GlobalMemory,
    lt: &nbody::barnes_hut::LinearTree,
    targets: &[simcore::Vec3],
    pad_to: u32,
) -> gpu_sim::fault::DeviceResult<(Vec<u32>, u32)> {
    use gpu_sim::fault::{DeviceError, FaultKind};
    if targets.is_empty() {
        return Err(DeviceError::new(FaultKind::BadLaunch {
            reason: "empty target set for Barnes-Hut upload".into(),
        }));
    }
    let padded = (targets.len() as u32).div_ceil(pad_to) * pad_to;
    let pos = gmem.alloc(padded as u64 * 16)?;
    for (k, p) in targets.iter().enumerate() {
        gmem.store_f32(pos.0 + 16 * k as u64, p.x)?;
        gmem.store_f32(pos.0 + 16 * k as u64 + 4, p.y)?;
        gmem.store_f32(pos.0 + 16 * k as u64 + 8, p.z)?;
        // The kernel does a float4 load; the pad lane must be initialized.
        gmem.store_f32(pos.0 + 16 * k as u64 + 12, 0.0)?;
    }
    // Padding targets replay target 0 (their results are discarded).
    for k in targets.len() as u32..padded {
        for w in 0..4u64 {
            let v = gmem.load_f32(pos.0 + 4 * w)?;
            gmem.store_f32(pos.0 + 16 * k as u64 + 4 * w, v)?;
        }
    }
    let com = gmem.alloc(lt.n_nodes() as u64 * 16)?;
    let meta = gmem.alloc(lt.n_nodes() as u64 * 16)?;
    for n in 0..lt.n_nodes() {
        let a = com.0 + 16 * n as u64;
        for w in 0..4 {
            gmem.store_f32(a + 4 * w as u64, lt.com[n][w])?;
        }
        let ma = meta.0 + 16 * n as u64;
        gmem.store_f32(ma, lt.side_sq[n])?;
        // first_child for internal nodes, body_start for leaves.
        let first = if lt.meta[n][1] > 0 {
            lt.meta[n][0]
        } else {
            lt.meta[n][2]
        };
        gmem.store_u32(ma + 4, first)?;
        gmem.store_u32(ma + 8, lt.meta[n][1])?;
        gmem.store_u32(ma + 12, lt.meta[n][3])?;
    }
    let bodies = gmem.alloc((lt.bodies.len().max(1)) as u64 * 16)?;
    for (k, bd) in lt.bodies.iter().enumerate() {
        for (w, v) in bd.iter().enumerate() {
            gmem.store_f32(bodies.0 + 16 * k as u64 + 4 * w as u64, *v)?;
        }
    }
    Ok((
        vec![pos.0 as u32, com.0 as u32, meta.0 as u32, bodies.0 as u32],
        padded,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::exec::functional::run_grid;
    use gpu_sim::mem::GlobalMemory;
    use nbody::barnes_hut::LinearTree;
    use nbody::direct::accelerations;
    use nbody::model::ForceParams;
    use nbody::spawn;
    use particle_layouts::device::{alloc_accel_out, download_accels};

    fn run_bh(
        lt: &LinearTree,
        targets: &[simcore::Vec3],
        theta: f32,
        eps: f32,
        cfg: BhKernelConfig,
    ) -> Vec<simcore::Vec3> {
        let k = build_bh_kernel(cfg);
        let mut gmem = GlobalMemory::new(128 << 20);
        let (mut params, padded) = upload_bh(&mut gmem, lt, targets, cfg.block).unwrap();
        let out = alloc_accel_out(&mut gmem, padded).unwrap();
        params.push(out.0 as u32);
        params.push((theta * theta).to_bits());
        params.push(eps.to_bits());
        run_grid(&k, padded / cfg.block, cfg.block, &params, &mut gmem).unwrap();
        download_accels(&gmem, out, targets.len() as u32).unwrap()
    }

    #[test]
    fn gpu_traversal_matches_cpu_kernel_order_bitwise() {
        let b = spawn::plummer(500, 1.0, 2.0, 31);
        let fp = ForceParams {
            g: 1.0,
            softening: 0.05,
        };
        let lt = LinearTree::from_bodies(&b, fp.g);
        let theta = 0.5f32;
        let gpu = run_bh(
            &lt,
            &b.pos,
            theta,
            fp.softening,
            BhKernelConfig::g80_default(),
        );
        for (i, g) in gpu.iter().enumerate() {
            let cpu = lt.accel_kernel_order(b.pos[i], theta * theta, fp.eps_sq());
            assert_eq!(cpu.x.to_bits(), g.x.to_bits(), "body {i} x");
            assert_eq!(cpu.y.to_bits(), g.y.to_bits(), "body {i} y");
            assert_eq!(cpu.z.to_bits(), g.z.to_bits(), "body {i} z");
        }
    }

    #[test]
    fn gpu_traversal_approximates_direct_sum() {
        let b = spawn::uniform_ball(400, 6.0, 1.0, 8);
        let fp = ForceParams::default();
        let lt = LinearTree::from_bodies(&b, fp.g);
        let gpu = run_bh(
            &lt,
            &b.pos,
            0.35,
            fp.softening,
            BhKernelConfig::g80_default(),
        );
        let direct = accelerations(&b, &fp);
        for i in (0..b.len()).step_by(13) {
            let err = (gpu[i] - direct[i]).norm() / direct[i].norm().max(1e-9);
            assert!(err < 0.05, "body {i}: err {err}");
        }
    }

    #[test]
    fn stack_interleaving_is_conflict_free() {
        // Lane l's stack entry at depth d lives at (d·block + l)·4: a
        // half-warp pushing at the same depth hits 16 consecutive words.
        let addrs: Vec<Option<u64>> = (0..16).map(|l| Some(((5 * 64 + l) * 4) as u64)).collect();
        assert!(gpu_sim::banks::is_conflict_free(&addrs, 16));
    }

    #[test]
    fn kernel_resources_fit_the_device() {
        let cfg = BhKernelConfig::g80_default();
        let k = build_bh_kernel(cfg);
        assert!(
            k.smem_bytes <= 16 * 1024 - 256,
            "stack must fit G80 shared memory"
        );
        let regs = gpu_sim::ir::regalloc::register_demand(&k).regs_per_thread;
        assert!(
            regs <= 32,
            "traversal kernel registers {regs} out of CC-1.x range"
        );
        // It must be *launchable*:
        let occ = gpu_sim::occupancy::occupancy(
            &gpu_sim::DeviceConfig::g8800gtx(),
            cfg.block,
            regs as u32,
            k.smem_bytes,
        );
        assert!(occ.active_blocks >= 1);
        // ... but at poor occupancy — part of why the paper avoided it.
        assert!(
            occ.fraction() <= 0.5,
            "BH kernel should be resource-starved on G80"
        );
    }
}
