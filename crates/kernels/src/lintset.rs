//! Every kernel family in the workspace, paired with a representative launch
//! shape and its **expected** lint outcome — the source of truth for both
//! the `kernel-lint` CLI and the `all_kernels_lint_clean` test gate.
//!
//! A target's expectation is a set of [`LintKind`] names per severity.
//! "Dirty" targets (the paper's baseline layouts) are expected to produce
//! exactly their documented findings — the gate fails if a finding
//! *disappears* (the lint lost its teeth) just as it fails if an unexpected
//! one appears (a kernel regressed).

use gpu_sim::analyze::{analyze_kernel, AnalysisConfig, AnalysisReport, BufferExtent, Severity};
use gpu_sim::ir::Kernel;
use particle_layouts::Layout;

use crate::banks::build_bank_kernel;
use crate::barnes_hut::BhKernelConfig;
use crate::chunk::build_chunk_force_kernel;
use crate::force::{build_force_kernel, build_force_kernel_prefetch, ForceKernelConfig, OptLevel};
use crate::integrate::build_integrate_kernel;
use crate::membench::{build_membench_kernel, build_membench_texture_kernel, MembenchConfig};

/// A kernel plus launch shape plus expected lint outcome.
pub struct LintTarget {
    /// The kernel to analyze.
    pub kernel: Kernel,
    /// Blocks in the representative launch.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Launch parameters (fake 256-aligned device addresses).
    pub params: Vec<u32>,
    /// Error-severity [`gpu_sim::analyze::LintKind::name`]s this kernel is
    /// *supposed* to produce (empty = must lint clean of errors).
    pub expect_errors: Vec<&'static str>,
    /// Warning-severity kind names this kernel is supposed to produce.
    pub expect_warnings: Vec<&'static str>,
    /// Declared buffer extents for the static bounds certifier. Every
    /// global/texture access must be proven inside one of these (or the
    /// target carries an expected `possible-out-of-bounds` finding).
    pub buffers: Vec<BufferExtent>,
    /// Trip-count budget for data-dependent loops (`None` = analyzer default).
    pub trip_budget: Option<u64>,
}

impl LintTarget {
    /// The analysis configuration for this target (default device/driver).
    pub fn config(&self) -> AnalysisConfig {
        let mut cfg = AnalysisConfig::new(self.grid, self.block, self.params.clone())
            .with_buffers(self.buffers.clone());
        if let Some(budget) = self.trip_budget {
            cfg = cfg.with_trip_budget(budget);
        }
        cfg
    }

    /// Run the analyzer under the default configuration.
    pub fn analyze(&self) -> AnalysisReport {
        analyze_kernel(&self.kernel, &self.config())
    }

    /// Compare a report against the expectation. Returns one human-readable
    /// violation per mismatch: an unexpected finding kind, or an expected
    /// kind that did not fire.
    pub fn check(&self, report: &AnalysisReport) -> Vec<String> {
        let mut violations = Vec::new();
        for (sev, expected) in [
            (Severity::Error, &self.expect_errors),
            (Severity::Warning, &self.expect_warnings),
        ] {
            let mut actual: Vec<&'static str> = report
                .diagnostics
                .iter()
                .filter(|d| d.severity == sev)
                .map(|d| d.kind.name())
                .collect();
            actual.sort_unstable();
            actual.dedup();
            for kind in &actual {
                if !expected.contains(kind) {
                    violations.push(format!("{}: unexpected {sev} `{kind}`", report.kernel));
                }
            }
            for kind in expected {
                if !actual.contains(kind) {
                    violations.push(format!(
                        "{}: expected {sev} `{kind}` did not fire",
                        report.kernel
                    ));
                }
            }
        }
        violations
    }
}

/// Fake, 64 KiB-apart (hence 256-aligned) device buffer addresses.
fn fake_buffers(n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| 0x1_0000 * (i + 1)).collect()
}

/// Declare a 64 KiB extent at each of the given device addresses — the
/// extents the fake 64 KiB-apart addressing scheme implies.
fn extents(addrs: &[u32]) -> Vec<BufferExtent> {
    addrs
        .iter()
        .map(|&base| BufferExtent {
            base: u64::from(base),
            len: 0x1_0000,
        })
        .collect()
}

fn force_target(
    cfg: ForceKernelConfig,
    prefetch: bool,
    expect_errors: Vec<&'static str>,
    expect_warnings: Vec<&'static str>,
) -> LintTarget {
    let grid = 2u32;
    let n = grid * cfg.block;
    let mut params = fake_buffers(cfg.layout.buffers().len());
    params.push(0x20_0000); // out
    let buffers = extents(&params);
    params.push(n);
    params.push(0.5f32.to_bits()); // eps
    params.push(0); // smem0
    let kernel = if prefetch {
        build_force_kernel_prefetch(cfg)
    } else {
        build_force_kernel(cfg)
    };
    LintTarget {
        kernel,
        grid,
        block: cfg.block,
        params,
        expect_errors,
        expect_warnings,
        buffers,
        trip_budget: None,
    }
}

fn chunk_target(
    cfg: ForceKernelConfig,
    expect_errors: Vec<&'static str>,
    expect_warnings: Vec<&'static str>,
) -> LintTarget {
    let grid = 2u32;
    let n_buffers = cfg.layout.buffers().len();
    let mut params = fake_buffers(2 * n_buffers); // target chunk + source chunk
    params.push(0x20_0000); // out
    let buffers = extents(&params);
    params.push(grid * cfg.block); // n_src
    params.push(0.5f32.to_bits()); // eps
    params.push(0); // smem0
    LintTarget {
        kernel: build_chunk_force_kernel(cfg),
        grid,
        block: cfg.block,
        params,
        expect_errors,
        expect_warnings,
        buffers,
        trip_budget: None,
    }
}

fn membench_target(
    layout: Layout,
    texture: bool,
    expect_errors: Vec<&'static str>,
    expect_warnings: Vec<&'static str>,
) -> LintTarget {
    let cfg = MembenchConfig { layout, iters: 2 };
    let mut params = fake_buffers(layout.buffers().len());
    params.push(0x20_0000); // out_delta
    params.push(0x21_0000); // out_sum
    let kernel = if texture {
        build_membench_texture_kernel(cfg)
    } else {
        build_membench_kernel(cfg)
    };
    let buffers = extents(&params); // every membench param is an address
    LintTarget {
        kernel,
        grid: 2,
        block: 64,
        params,
        expect_errors,
        expect_warnings,
        buffers,
        trip_budget: None,
    }
}

fn integrate_target(layout: Layout, expect_errors: Vec<&'static str>) -> LintTarget {
    let mut params = fake_buffers(layout.buffers().len());
    params.push(0x20_0000); // acc
    let buffers = extents(&params);
    params.push(0.01f32.to_bits()); // dt
    LintTarget {
        kernel: build_integrate_kernel(layout),
        grid: 2,
        block: 64,
        params,
        expect_errors,
        expect_warnings: vec![],
        buffers,
        trip_budget: None,
    }
}

fn bank_target(stride: u32, expect_warnings: Vec<&'static str>) -> LintTarget {
    let params = vec![0x1_0000, 0x2_0000];
    LintTarget {
        kernel: build_bank_kernel(stride, 2),
        grid: 1,
        block: 128,
        buffers: extents(&params),
        params,
        expect_errors: vec![],
        expect_warnings,
        trip_budget: None,
    }
}

/// The full target set: every kernel family under every layout/stride the
/// workspace exercises, with expected outcomes.
///
/// The "dirty" entries are deliberate: the paper's unoptimized layouts
/// *must* trip the coalescing lint (28/32-byte lane strides), the rolled
/// force kernels *must* trip the invariant-motion lint (the recomputed ε²),
/// and the power-of-two bank strides *must* trip the conflict lint — those
/// findings reproduce Sections III–IV statically.
pub fn workspace_lint_targets() -> Vec<LintTarget> {
    let uncoalesced = || vec!["uncoalesced-access"];
    let mut targets = Vec::new();

    // --- force: the Fig. 12 optimization ladder --------------------------
    for level in OptLevel::ALL {
        let cfg = level.config();
        let (errors, warnings): (Vec<&str>, Vec<&str>) = match level {
            // Packed records: scalar reads 28 bytes apart + the dead own-mass
            // load + the recomputed ε² of the rolled baseline.
            OptLevel::Baseline => (uncoalesced(), vec!["dead-code", "unhoisted-invariant"]),
            // SoA coalesces but keeps the dead mass-array read and ε².
            OptLevel::SoA => (vec![], vec!["dead-code", "unhoisted-invariant"]),
            // 16-byte vectors 32 bytes apart still split transactions; the
            // own-load's second float4 is fully dead.
            OptLevel::AoaS => (uncoalesced(), vec!["dead-code", "unhoisted-invariant"]),
            // The paper's layout coalesces; only ε² remains.
            OptLevel::SoAoaS => (vec![], vec!["unhoisted-invariant"]),
            // Full unroll dissolves the inner loop; the ε² copies all write
            // the same register, which `licm` (and hence the lint, which
            // diffs against it) cannot hoist — silence is correct here.
            OptLevel::SoAoaSUnrolled => (vec![], vec![]),
            // licm + unroll + block 128: fully clean.
            OptLevel::Full => (vec![], vec![]),
        };
        targets.push(force_target(cfg, false, errors, warnings));
    }
    // The one layout the ladder skips: classic AoS (32-byte records).
    targets.push(force_target(
        ForceKernelConfig {
            layout: Layout::AoS,
            block: 192,
            unroll: 1,
            icm: false,
        },
        false,
        uncoalesced(),
        vec!["dead-code", "unhoisted-invariant"],
    ));
    // The double-buffered variant (regression gate for the tile-base clamp:
    // a per-lane clamp decays the last prefetch into 16 transactions).
    targets.push(force_target(
        ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: 128,
            unroll: 128,
            icm: true,
        },
        true,
        vec![],
        vec![],
    ));

    // --- chunk: the streaming variant of the force kernel ----------------
    // Same per-layout lint story as the standard kernel: the accumulator
    // seed load through `out` is a float4 whose w lane is dead, but a vector
    // load counts as live if any lane is — so no extra dead-code finding.
    for layout in Layout::ALL {
        let cfg = ForceKernelConfig {
            layout,
            block: 192,
            unroll: 1,
            icm: false,
        };
        let (errors, warnings): (Vec<&str>, Vec<&str>) = match layout {
            Layout::Unopt | Layout::AoS | Layout::AoaS => {
                (uncoalesced(), vec!["dead-code", "unhoisted-invariant"])
            }
            Layout::SoA => (vec![], vec!["dead-code", "unhoisted-invariant"]),
            Layout::SoAoaS => (vec![], vec!["unhoisted-invariant"]),
        };
        targets.push(chunk_target(cfg, errors, warnings));
    }
    // The tuned chunk kernel (the configuration chunked frames actually run).
    targets.push(chunk_target(
        ForceKernelConfig {
            layout: Layout::SoAoaS,
            block: 128,
            unroll: 128,
            icm: true,
        },
        vec![],
        vec![],
    ));

    // --- membench: the Sec. III read patterns ----------------------------
    for layout in Layout::ALL {
        let errors = match layout {
            Layout::Unopt | Layout::AoS | Layout::AoaS => uncoalesced(),
            Layout::SoA | Layout::SoAoaS => vec![],
        };
        targets.push(membench_target(layout, false, errors, vec![]));
    }
    // The texture path bypasses the coalescer entirely: info-only.
    targets.push(membench_target(Layout::Unopt, true, vec![], vec![]));

    // --- integrate: the cold-group round-trip ----------------------------
    for layout in Layout::ALL {
        let errors = match layout {
            Layout::Unopt | Layout::AoS | Layout::AoaS => uncoalesced(),
            Layout::SoA | Layout::SoAoaS => vec![],
        };
        targets.push(integrate_target(layout, errors));
    }

    // --- banks: Sec. I-A's serialization rule ----------------------------
    for stride in [1u32, 2, 3, 4, 8, 16] {
        let warnings = if stride.is_power_of_two() && stride > 1 {
            vec!["bank-conflict"]
        } else {
            vec![]
        };
        targets.push(bank_target(stride, warnings));
    }

    // --- barnes_hut: data-dependent traversal, analyzed with bounds ------
    // The walk is bounded by the traversal budget (every node is popped at
    // most once), but the node index itself comes out of shared memory, so
    // the tree-indexed addresses — and the stack pointer fed through the
    // pop/push cycle — widen to ⊤. The bounds certifier is *supposed* to
    // flag those sites: the expected `possible-out-of-bounds` finding below
    // is the honest statement that in-bounds traversal depends on tree
    // well-formedness, which the dynamic redzone checks cover.
    {
        let cfg = BhKernelConfig::g80_default();
        let addrs = fake_buffers(5); // pos, com, side_meta, bodies, out
        let mut params = addrs.clone();
        params.push(0.25f32.to_bits()); // theta²
        params.push(0.5f32.to_bits()); // eps
        targets.push(LintTarget {
            kernel: crate::barnes_hut::build_bh_kernel(cfg),
            grid: 2,
            block: cfg.block,
            params,
            expect_errors: vec![],
            expect_warnings: vec!["possible-out-of-bounds"],
            buffers: extents(&addrs),
            trip_budget: Some(crate::barnes_hut::traversal_budget(63)),
        });
    }

    targets
}
