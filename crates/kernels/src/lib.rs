//! # gpu-kernels — the paper's CUDA kernels, in the gpu-sim IR
//!
//! Two kernel families, both parameterized by [`particle_layouts::Layout`]:
//!
//! * [`membench`] — the stripped-down read kernels of Sec. III: per
//!   particle, load the whole record under the layout's access pattern, sum
//!   the values (to keep the loads alive), and measure the elapsed cycles
//!   with `clock()`. These regenerate Figures 10 and 11.
//! * [`banks`] — a shared-memory bank-conflict microbenchmark (Sec. I-A's
//!   serialization rule, made measurable);
//! * [`barnes_hut`] — the GPU tree-traversal kernel the paper rules out in
//!   Sec. I-D, built anyway (divergent While loop, shared-memory stacks) so
//!   the O(n²)-vs-tree trade-off can be measured;
//! * [`integrate`] — the on-device Euler step (`v += a·dt; p += v·dt`),
//!   which touches the cold velocity group and round-trips the ride-along
//!   words of the vector layouts;
//! * [`force`] — the tiled O(n²) far-field force kernel of Sec. IV
//!   (structurally the GPU Gems 3 ch. 31 kernel the paper's port follows):
//!   each thread owns one particle; the block stages K source particles in
//!   shared memory per tile; the innermost loop accumulates softened
//!   pairwise accelerations. Unrolling, invariant code motion and block-size
//!   tuning are applied via the `gpu_sim::ir::passes` pipeline, giving the
//!   paper's optimization ladder (Sec. IV + Fig. 12).
//!
//! The force kernel is *functionally validated* against the `nbody` CPU
//! solver — bit-for-bit, because both sides use the same operation order
//! (see `nbody::model::accel_one_exact`).

#![warn(missing_docs)]

pub mod banks;
pub mod barnes_hut;
pub mod chunk;
pub mod force;
pub mod integrate;
pub mod lintset;
pub mod membench;
pub mod synthset;
pub mod verifyset;

pub use chunk::{build_chunk_force_kernel, chunk_force_params};
pub use force::{build_force_kernel, force_params, ForceKernelConfig, OptLevel};
pub use integrate::{build_integrate_kernel, integrate_params};
pub use membench::{build_membench_kernel, MembenchConfig};
