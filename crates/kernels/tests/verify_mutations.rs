//! Mutation check for the translation validator on the *real* force kernel:
//! re-breaking the optimizer (the historical reversed multi-hoist, or any
//! dependency-violating statement swap) must produce a `Mismatch` with a
//! counterexample fault site — never a proof.

use gpu_kernels::force::{build_force_kernel, ForceKernelConfig};
use gpu_sim::analyze::verify::{verify_equiv, VerifyConfig, VerifyResult};
use gpu_sim::ir::passes::licm;
use gpu_sim::ir::Stmt;
use particle_layouts::Layout;

fn verify_cfg(layout: Layout) -> VerifyConfig {
    let mut params: Vec<u32> = (0..layout.buffers().len() as u32)
        .map(|i| 0x1_0000 * (i + 1))
        .collect();
    params.push(0x20_0000); // out
    params.push(64); // n = grid * block
    params.push(0.5f32.to_bits()); // eps
    params.push(0); // smem0
    VerifyConfig::new(2, 32, params)
}

/// Swap every adjacent top-level instruction pair of the LICM'd force kernel
/// in turn. Dataflow-breaking swaps must be refuted with a fault site; only
/// genuinely order-independent swaps may still prove. At least one swap must
/// be caught (the hoisted ε-chain is dependent), and none may be
/// `Unsupported` — the force kernel is squarely in the checker's fragment.
#[test]
fn statement_swaps_in_the_hoisted_force_kernel_are_caught() {
    let cfg = ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 32,
        unroll: 1,
        icm: false,
    };
    let k = build_force_kernel(cfg);
    let hoisted = licm(&k);
    let vcfg = verify_cfg(cfg.layout);
    assert!(
        verify_equiv(&k, &hoisted, &vcfg).is_proved(),
        "the fixed pass verifies"
    );

    let mut caught = 0usize;
    let mut tried = 0usize;
    for i in 1..hoisted.body.len() {
        if !(matches!(hoisted.body[i], Stmt::I(_)) && matches!(hoisted.body[i - 1], Stmt::I(_))) {
            continue;
        }
        let mut bad = hoisted.clone();
        bad.body.swap(i - 1, i);
        tried += 1;
        match verify_equiv(&k, &bad, &vcfg) {
            VerifyResult::Mismatch { site, .. } => {
                caught += 1;
                assert!(
                    site.instruction.is_some(),
                    "swap at {i}: site pinpoints the store"
                );
                assert_eq!(site.kernel.as_deref(), Some(hoisted.name.as_str()));
            }
            // Order-independent pair (no uniform-bound guard is configured,
            // so ProvedBounded cannot occur, but the match stays total).
            VerifyResult::Proved { .. } | VerifyResult::ProvedBounded { .. } => {}
            VerifyResult::Unsupported { reason } => {
                panic!("swap at {i} must not leave the supported fragment: {reason}");
            }
        }
    }
    assert!(
        tried >= 2,
        "the hoisted prologue has adjacent instruction pairs"
    );
    assert!(
        caught >= 1,
        "at least one dependency-violating swap must be refuted"
    );
}
