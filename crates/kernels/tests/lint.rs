//! The static-analysis gate over every kernel family (ISSUE 2 satellite):
//! each kernel must produce exactly its documented lint findings — no
//! unexpected errors, and no silently-vanished expected ones.

use gpu_kernels::force::{build_force_kernel, ForceKernelConfig, OptLevel};
use gpu_kernels::lintset::workspace_lint_targets;
use gpu_sim::analyze::{analyze_kernel, AnalysisConfig, LintKind, Severity};
use gpu_sim::DriverModel;
use particle_layouts::Layout;

#[test]
fn all_kernels_lint_clean() {
    let mut violations = Vec::new();
    for target in workspace_lint_targets() {
        let report = target.analyze();
        violations.extend(target.check(&report));
    }
    assert!(
        violations.is_empty(),
        "lint expectations violated:\n  {}",
        violations.join("\n  ")
    );
}

/// The acceptance pin: the 28-byte packed-record force kernel is flagged
/// uncoalesced while the paper's SoAoaS build passes clean — under every
/// driver model's coalescing rules for the strict protocols, and at minimum
/// under CUDA 1.0.
#[test]
fn aos_force_flagged_soaoas_clean() {
    let build = |layout: Layout| {
        let cfg = ForceKernelConfig {
            layout,
            block: 128,
            unroll: 1,
            icm: true,
        };
        let k = build_force_kernel(cfg);
        let n = 2 * cfg.block;
        let params = vec![0x1_0000, 0x20_0000, n, 0.5f32.to_bits(), 0];
        (k, params, cfg.block)
    };

    let (aos, aos_params, block) = build(Layout::Unopt);
    let (soaoas, so_params, _) = build(Layout::SoAoaS);
    for driver in DriverModel::ALL {
        let cfg = |p: &Vec<u32>| AnalysisConfig::new(2, block, p.clone()).with_driver(driver);
        let dirty = analyze_kernel(&aos, &cfg(&aos_params));
        let clean = analyze_kernel(&soaoas, &cfg(&so_params));
        if driver == DriverModel::Cuda10 {
            assert!(
                dirty
                    .diagnostics
                    .iter()
                    .any(|d| d.kind == LintKind::UncoalescedAccess && d.severity == Severity::Error),
                "{driver}: packed layout must be flagged: {:?}",
                dirty.diagnostics
            );
        }
        assert!(
            !clean
                .diagnostics
                .iter()
                .any(|d| d.kind == LintKind::UncoalescedAccess),
            "{driver}: SoAoaS must coalesce: {:?}",
            clean.diagnostics
        );
        // And the prediction backs it up: the packed layout moves more
        // transactions for the same work.
        assert!(
            dirty.predicted_transactions > clean.predicted_transactions,
            "{driver}: {} !> {}",
            dirty.predicted_transactions,
            clean.predicted_transactions
        );
    }
}

/// The ladder's transaction story, statically: each Fig. 12 layout step is
/// no worse than the previous one under CUDA 1.0.
#[test]
fn ladder_transactions_monotonically_improve() {
    let mut last = u64::MAX;
    for level in [OptLevel::Baseline, OptLevel::AoaS, OptLevel::SoAoaS] {
        let cfg = level.config();
        let k = build_force_kernel(cfg);
        let n = 2 * cfg.block;
        let mut params: Vec<u32> = (0..cfg.layout.buffers().len() as u32)
            .map(|i| 0x1_0000 * (i + 1))
            .collect();
        params.extend([0x20_0000, n, 0.5f32.to_bits(), 0]);
        let r = analyze_kernel(&k, &AnalysisConfig::new(2, cfg.block, params));
        assert!(r.exact, "{level}: {:?}", r.diagnostics);
        assert!(
            r.predicted_transactions <= last,
            "{level}: {} transactions, worse than the previous step's {last}",
            r.predicted_transactions
        );
        last = r.predicted_transactions;
    }
}
