//! End-to-end gate for the layout/schedule synthesizer: starting from the
//! naive 28-byte AoS force kernel, `synthesize` must rediscover the
//! paper's SoAoaS-16 + licm-before-unroll result with a machine-checked
//! certificate, and its predicted speedup must land within the acceptance
//! band around the hand-derived ladder's measured 1.24×.

use std::sync::OnceLock;

use gpu_kernels::synthset::{
    endpoint_target, force_unopt_target, synth_targets, within_ladder_band, LADDER_MEASURED_SPEEDUP,
};
use gpu_sim::analyze::synth::{buffer_summaries, synthesize, SynthConfig, SynthReport};
use gpu_sim::analyze::{analyze_kernel, AnalysisConfig};
use gpu_sim::driver::DriverModel;
use gpu_sim::ir::{KernelBuilder, MemSpace, Operand};
use proptest::prelude::*;

/// Synthesis over the headline target is the expensive part (40 candidates
/// priced, winners proved); run it once and share the report.
fn headline() -> &'static SynthReport {
    static REPORT: OnceLock<SynthReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        force_unopt_target(DriverModel::Cuda10)
            .synthesize()
            .expect("baseline force kernel must be priceable")
    })
}

#[test]
fn synthesizer_rediscovers_the_paper_ladder() {
    let report = headline();
    eprintln!(
        "baseline: {:.1} cycles, {} regs",
        report.baseline_cycles, report.baseline_regs
    );
    for c in &report.candidates {
        eprintln!(
            "  {:<40} {:>10.1} cyc  {:>6.3}x  {:>2} regs",
            c.label, c.predicted_cycles, c.predicted_speedup, c.regs
        );
    }
    for s in &report.skipped {
        eprintln!("  skipped: {s}");
    }
    for s in &report.suggestions {
        eprintln!(
            "  SUGGEST {} ({:.3}x) [{}]",
            s.label,
            s.predicted_speedup,
            s.certificate.summary()
        );
    }
    let winner = report.winner().expect("synthesis must find a winner");
    assert!(
        winner.label.contains("soaoas-16"),
        "winner should use the paper's 16-byte SoAoaS tile, got {}",
        winner.label
    );
    assert!(
        winner.label.contains("licm") && winner.label.contains("unroll"),
        "winner should schedule licm + unroll, got {}",
        winner.label
    );
    assert!(
        within_ladder_band(winner.predicted_speedup),
        "predicted {:.3}x outside 5% of the measured {LADDER_MEASURED_SPEEDUP}x ladder",
        winner.predicted_speedup
    );
}

#[test]
fn every_suggestion_carries_a_proof() {
    for target in synth_targets(DriverModel::Cuda10) {
        let report = if target.name == "force-unopt-b192" {
            headline().clone()
        } else {
            target.synthesize().expect("target must be priceable")
        };
        assert!(
            !report.suggestions.is_empty(),
            "{}: no proven suggestion",
            target.name
        );
        for s in &report.suggestions {
            assert!(
                s.certificate.is_proved(),
                "{}: suggestion {} lacks a proof: {}",
                target.name,
                s.label,
                s.certificate.summary()
            );
        }
        if let Some(tag) = target.expect_layout {
            let winner = report.winner().unwrap();
            let rw = winner
                .rewrite
                .as_ref()
                .expect("winner should change layout");
            assert_eq!(rw.tag, tag, "{}: wrong layout", target.name);
        }
    }
}

#[test]
fn synthesis_is_idempotent_on_its_own_winner() {
    let report = headline();
    let winner = report.winner().unwrap();
    let mut cfg = force_unopt_target(DriverModel::Cuda10).config;
    // The winning kernel's parameters: new buffer bases, then the original
    // non-buffer params.
    let rw = winner.rewrite.as_ref().unwrap();
    let new_bases: Vec<u32> = (0..rw.new_strides.len() as u32)
        .map(|j| 0x1_0000 * (j + 1))
        .collect();
    cfg.params = gpu_sim::analyze::synth::rewritten_params(rw, &cfg.params, &new_bases);
    cfg.n_param = cfg
        .n_param
        .map(|i| i + rw.new_strides.len() - rw.old_buffers as usize);
    let again = synthesize(&winner.kernel, &cfg).expect("winner must be priceable");
    assert!(
        again.suggestions.is_empty(),
        "re-synthesis on the winner proposed {:?}",
        again
            .suggestions
            .iter()
            .map(|s| s.label.clone())
            .collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Synthesis is a fixed point on the ladder's endpoint: handing it the
    /// already-optimal kernel (SoAoaS layout, full unroll, invariant code
    /// motion) at any block size and driver proposes nothing above the
    /// gain threshold.
    #[test]
    fn synthesis_proposes_nothing_on_ladder_endpoints(
        block in prop_oneof![Just(64u32), Just(128), Just(192)],
        driver in prop_oneof![
            Just(DriverModel::Cuda10),
            Just(DriverModel::Cuda11),
            Just(DriverModel::Cuda22)
        ],
    ) {
        let target = endpoint_target(block, driver);
        let report = target.synthesize().expect("endpoint must be priceable");
        prop_assert!(
            report.suggestions.is_empty(),
            "endpoint at block {} under {} is not a fixed point: {:?}",
            block,
            driver,
            report
                .suggestions
                .iter()
                .map(|s| s.label.clone())
                .collect::<Vec<_>>()
        );
    }
}

/// A per-lane stride of `u32::MAX` bytes sits on the interval domain's
/// boundary: the addresses sweep almost the whole 64-bit range and the
/// stride is not word-aligned. The summary extractor must reject the
/// buffer (no panic, no overflow) and synthesis must fall back to
/// schedule-only candidates — of which a straight-line kernel has none.
#[test]
fn u32_max_stride_is_rejected_not_mis_summarized() {
    let mut b = KernelBuilder::new("huge_stride");
    let buf = b.param();
    let out = b.param();
    let i = b.global_thread_index();
    let src = b.mad_u(i.into(), Operand::ImmU(u32::MAX), buf.into());
    let x = b.ld(MemSpace::Global, src, 0, 1)[0];
    let dst = b.mad_u(i.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, dst, 0, vec![x.into()]);
    let kernel = b.finish();

    let params = vec![0x1_0000u32, 0x20_0000];
    let acfg = AnalysisConfig::new(2, 32, params.clone());
    let report = analyze_kernel(&kernel, &acfg);
    let sums = buffer_summaries(&report, &params);
    assert!(
        sums.iter().all(|s| s.param != 0),
        "a u32::MAX stride must not produce a rewritable summary: {sums:?}"
    );

    // Synthesis must refuse cleanly: either the baseline itself is
    // unpriceable (the cost model rejects non-static addresses) or the
    // run completes with nothing to suggest. Both are fine; a panic or a
    // suggestion built on a mis-summarized stride is not.
    let scfg = SynthConfig::new(DriverModel::Cuda10, 2, 32, params);
    match synthesize(&kernel, &scfg) {
        Err(e) => eprintln!("refused to price, as expected: {e}"),
        Ok(synth) => assert!(
            synth.suggestions.is_empty(),
            "nothing is provably rewritable here: {:?}",
            synth
                .suggestions
                .iter()
                .map(|s| s.label.clone())
                .collect::<Vec<_>>()
        ),
    }
}
