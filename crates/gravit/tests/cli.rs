//! End-to-end tests of the `gravit` binary (the path a user actually takes).

use std::process::Command;

fn gravit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gravit"))
}

#[test]
fn help_lists_all_subcommands() {
    let out = gravit().output().expect("run gravit");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["run", "ladder", "model", "render"] {
        assert!(text.contains(cmd), "help missing `{cmd}`");
    }
}

#[test]
fn ladder_prints_the_register_story() {
    let out = gravit().arg("ladder").output().expect("run gravit ladder");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SoAoaS+unroll"));
    assert!(text.contains("67%"));
    assert!(text.contains("50%"));
}

#[test]
fn run_record_render_pipeline() {
    let dir = std::env::temp_dir().join(format!("gravit_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let rec = dir.join("rec.json");

    let out = gravit()
        .args([
            "run", "--n", "512", "--steps", "10", "--spawn", "disk", "--record",
        ])
        .arg(&rec)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("energy drift"), "missing diagnostics: {text}");
    assert!(rec.exists());

    let frames = dir.join("frames");
    let out = gravit()
        .args(["render", "--input"])
        .arg(&rec)
        .args(["--size", "64", "--out"])
        .arg(&frames)
        .output()
        .expect("render");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(frames.join("frame_0000.pgm").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gpu_backend_runs_from_the_cli() {
    let out = gravit()
        .args(["run", "--n", "256", "--steps", "3", "--backend", "gpu"])
        .output()
        .expect("run gpu");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gpu-sim"), "backend label missing: {text}");
}

#[test]
fn dry_run_prints_the_memory_plan_without_running() {
    let out = gravit()
        .args([
            "run",
            "--n",
            "960",
            "--backend",
            "gpu",
            "--device-mem",
            "11712",
            "--dry-run",
        ])
        .output()
        .expect("dry run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memory plan: n=960"), "{text}");
    assert!(text.contains("frame budget:"), "{text}");
    assert!(
        text.contains("PosMass4"),
        "per-buffer breakdown expected: {text}"
    );
    assert!(
        text.contains("mode: chunked, 128 bodies per chunk"),
        "{text}"
    );
    assert!(text.contains("degrade full -> chunked"), "{text}");
    assert!(!text.contains("done:"), "dry run must not simulate: {text}");

    // Suffixed capacities parse; an ample one plans full residency.
    let out = gravit()
        .args([
            "run",
            "--n",
            "960",
            "--backend",
            "gpu",
            "--device-mem",
            "64M",
            "--dry-run",
        ])
        .output()
        .expect("dry run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mode: full"), "{text}");

    // A malformed capacity is a usage error.
    let out = gravit()
        .args([
            "run",
            "--n",
            "64",
            "--backend",
            "gpu",
            "--device-mem",
            "lots",
            "--dry-run",
        ])
        .output()
        .expect("dry run");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn constrained_gpu_run_completes_with_chunked_attribution() {
    let out = gravit()
        .args([
            "run",
            "--n",
            "256",
            "--steps",
            "2",
            "--backend",
            "gpu",
            "--device-mem",
            "12K",
        ])
        .output()
        .expect("constrained run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("energy drift"), "run must complete: {text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("degrade full -> chunked"),
        "ladder must be reported: {err}"
    );
    assert!(!err.contains("panicked"), "never a panic: {err}");
}

#[test]
fn invalid_config_exits_2_with_a_readable_message() {
    let out = gravit()
        .args(["run", "--n", "16", "--steps", "1", "--dt", "0"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "config errors are usage errors");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("time step"),
        "message must name the problem: {err}"
    );
    assert!(!err.contains("panicked"), "never a panic: {err}");
}

#[test]
fn checkpoint_resume_finishes_bit_identical_to_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("gravit_cli_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let common = [
        "--n", "128", "--spawn", "ball", "--seed", "5", "--dt", "0.01",
    ];

    // Reference: 12 steps uninterrupted, recorded.
    let ref_rec = dir.join("ref.json");
    let out = gravit()
        .args(["run", "--steps", "12"])
        .args(common)
        .args(["--record"])
        .arg(&ref_rec)
        .output()
        .expect("reference run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // "Killed" run: stops at step 6, leaving a checkpoint every 3 steps.
    let ckpt = dir.join("state.ckpt");
    let out = gravit()
        .args(["run", "--steps", "6"])
        .args(common)
        .args(["--checkpoint-every", "3", "--checkpoint"])
        .arg(&ckpt)
        .output()
        .expect("first half");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists(), "checkpoint written");

    // Resume to the same total step count, recording the tail.
    let res_rec = dir.join("resumed.json");
    let out = gravit()
        .args(["run", "--steps", "12"])
        .args(common)
        .args(["--resume"])
        .arg(&ckpt)
        .args(["--record"])
        .arg(&res_rec)
        .output()
        .expect("resumed run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("resumed from"));

    // The final recorded frame (step 10 = last multiple of 5) must agree
    // bit-for-bit between the two runs.
    let ref_json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&ref_rec).unwrap()).unwrap();
    let res_json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&res_rec).unwrap()).unwrap();
    let last = |v: &serde_json::Value| v["frames"].as_array().unwrap().last().unwrap().clone();
    let (a, b) = (last(&ref_json), last(&res_json));
    assert_eq!(a["step"], b["step"]);
    assert_eq!(
        a["positions"], b["positions"],
        "resumed trajectory must be bit-identical"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resuming_from_a_corrupt_checkpoint_exits_2() {
    let dir = std::env::temp_dir().join(format!("gravit_cli_badckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("bad.ckpt");
    std::fs::write(&ckpt, "GRAVITCKPT v1 crc=deadbeef len=4\n{}").unwrap();
    let out = gravit()
        .args(["run", "--n", "16", "--steps", "2", "--resume"])
        .arg(&ckpt)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot resume"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn render_without_input_fails_cleanly() {
    let out = gravit().arg("render").output().expect("run render");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn report_emits_valid_json() {
    let out = gravit().arg("report").output().expect("run report");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON report");
    assert_eq!(v["recommended_unroll"], 128);
    assert_eq!(v["ladder"].as_array().unwrap().len(), 6);
}
