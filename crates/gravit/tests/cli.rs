//! End-to-end tests of the `gravit` binary (the path a user actually takes).

use std::process::Command;

fn gravit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gravit"))
}

#[test]
fn help_lists_all_subcommands() {
    let out = gravit().output().expect("run gravit");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["run", "ladder", "model", "render"] {
        assert!(text.contains(cmd), "help missing `{cmd}`");
    }
}

#[test]
fn ladder_prints_the_register_story() {
    let out = gravit().arg("ladder").output().expect("run gravit ladder");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SoAoaS+unroll"));
    assert!(text.contains("67%"));
    assert!(text.contains("50%"));
}

#[test]
fn run_record_render_pipeline() {
    let dir = std::env::temp_dir().join(format!("gravit_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let rec = dir.join("rec.json");

    let out = gravit()
        .args(["run", "--n", "512", "--steps", "10", "--spawn", "disk", "--record"])
        .arg(&rec)
        .output()
        .expect("run");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("energy drift"), "missing diagnostics: {text}");
    assert!(rec.exists());

    let frames = dir.join("frames");
    let out = gravit()
        .args(["render", "--input"])
        .arg(&rec)
        .args(["--size", "64", "--out"])
        .arg(&frames)
        .output()
        .expect("render");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(frames.join("frame_0000.pgm").exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gpu_backend_runs_from_the_cli() {
    let out = gravit()
        .args(["run", "--n", "256", "--steps", "3", "--backend", "gpu"])
        .output()
        .expect("run gpu");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gpu-sim"), "backend label missing: {text}");
}

#[test]
fn render_without_input_fails_cleanly() {
    let out = gravit().arg("render").output().expect("run render");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn report_emits_valid_json() {
    let out = gravit().arg("report").output().expect("run report");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON report");
    assert_eq!(v["recommended_unroll"], 128);
    assert_eq!(v["ladder"].as_array().unwrap().len(), 6);
}
