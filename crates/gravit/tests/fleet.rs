//! Fleet acceptance tests: the supervised device pool loses no admitted job,
//! completes every job **bitwise identical** to a fault-free single-device
//! reference under chaos, quarantine and migration; every refusal is typed;
//! and the same seed replays the schedule and fault history exactly.

use gpu_kernels::force::OptLevel;
use gpu_sim::fault::FaultKind;
use gpu_sim::transient::FaultRates;
use gpu_sim::{DevicePool, DeviceSpec, DriverModel};
use gravit_app::backend::{frame_memory_budget, Backend, FaultPolicy};
use gravit_app::checkpoint::Checkpoint;
use gravit_app::config::{ConfigError, SimConfig, SpawnKind};
use gravit_app::fleet::{drive, Fleet, FleetConfig, FleetEvent, Health, JobSpec, Rejected};
use gravit_app::sim::Simulation;
use proptest::prelude::*;

fn gpu_backend() -> Backend {
    Backend::GpuSim {
        level: OptLevel::Full,
        driver: DriverModel::Cuda10,
    }
}

fn job(id: u64, n: usize, steps: u64) -> JobSpec {
    JobSpec {
        id,
        tenant: format!("t{}", id % 2),
        config: SimConfig {
            n,
            spawn: SpawnKind::UniformBall { radius: 4.0 },
            seed: 100 + id,
            dt: 0.01,
            backend: gpu_backend(),
            fault_policy: FaultPolicy::FallbackToCpu,
            ..SimConfig::default()
        },
        steps,
    }
}

/// The fault-free single-device reference: same config, run solo to the same
/// step count.
fn reference_checkpoint(spec: &JobSpec) -> Checkpoint {
    let mut sim = Simulation::new(spec.config.clone()).unwrap();
    sim.run(spec.steps).unwrap();
    sim.checkpoint()
}

/// Physics-only checkpoint equality: everything except the fault log, which
/// legitimately differs between a chaotic fleet run and a clean reference.
fn physics_eq(a: &Checkpoint, b: &Checkpoint) -> bool {
    a.n == b.n
        && a.seed == b.seed
        && a.dt_bits == b.dt_bits
        && a.integrator == b.integrator
        && a.backend == b.backend
        && a.time_bits == b.time_bits
        && a.steps == b.steps
        && a.pos == b.pos
        && a.vel == b.vel
        && a.mass == b.mass
        && a.accels == b.accels
        && a.energy0_bits == b.energy0_bits
}

#[test]
fn quiet_pool_completes_every_job_bitwise_identical() {
    let pool = DevicePool::uniform(7, 2, DeviceSpec::quiet()).unwrap();
    let mut fleet = Fleet::new(FleetConfig::default(), pool);
    let jobs: Vec<JobSpec> = (0..6).map(|id| job(id, 96, 8)).collect();
    let refs: Vec<Checkpoint> = jobs.iter().map(reference_checkpoint).collect();
    let outcome = drive(&mut fleet, jobs, 10_000).unwrap();
    assert!(outcome.rejected.is_empty(), "{:?}", outcome.rejected);
    assert_eq!(fleet.completed().len(), 6, "no job may be lost");
    assert!(fleet.idle());
    for done in fleet.completed() {
        let reference = &refs[done.id as usize];
        assert!(
            physics_eq(&done.final_state, reference),
            "job {} diverged from its solo reference",
            done.id
        );
    }
}

#[test]
fn chaotic_pool_loses_no_job_and_stays_bitwise_identical() {
    let spec = DeviceSpec {
        capacity: None,
        fault_rates: FaultRates {
            bit_flip: 0.2,
            launch_failure: 0.2,
            hang: 0.1,
        },
        watchdog_instructions: Some(1 << 22),
    };
    let pool = DevicePool::uniform(99, 3, spec).unwrap();
    let cfg = FleetConfig {
        preempt_rate: 0.2,
        seed: 99,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(cfg, pool);
    let jobs: Vec<JobSpec> = (0..6).map(|id| job(id, 96, 10)).collect();
    let refs: Vec<Checkpoint> = jobs.iter().map(reference_checkpoint).collect();
    let outcome = drive(&mut fleet, jobs, 10_000).unwrap();
    assert!(outcome.rejected.is_empty(), "{:?}", outcome.rejected);
    assert_eq!(fleet.completed().len(), 6, "no admitted job may be lost");
    for done in fleet.completed() {
        assert!(
            physics_eq(&done.final_state, &refs[done.id as usize]),
            "job {} diverged under chaos (devices {:?}, {} migrations)",
            done.id,
            done.devices,
            done.migrations
        );
    }
    // The chaos actually happened: faults were observed and attributed.
    let faults = fleet
        .events()
        .iter()
        .filter(|e| matches!(e, FleetEvent::Faulted { .. }))
        .count();
    assert!(faults > 0, "rates this high must surface faults");
    // Drive ends idle: every quarantined device was fully drained.
    for d in 0..3 {
        assert_eq!(fleet.queue_len(d), 0);
    }
}

#[test]
fn same_seed_replays_schedule_and_fault_history_exactly() {
    let spec = DeviceSpec {
        capacity: None,
        fault_rates: FaultRates {
            bit_flip: 0.15,
            launch_failure: 0.25,
            hang: 0.1,
        },
        watchdog_instructions: Some(1 << 22),
    };
    let run = || {
        let pool = DevicePool::uniform(1234, 2, spec.clone()).unwrap();
        let cfg = FleetConfig {
            preempt_rate: 0.3,
            seed: 1234,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(cfg, pool);
        let jobs: Vec<JobSpec> = (0..5).map(|id| job(id, 64, 9)).collect();
        drive(&mut fleet, jobs, 10_000).unwrap();
        fleet
    };
    let a = run();
    let b = run();
    assert_eq!(a.events(), b.events(), "the event log must replay exactly");
    for d in 0..2 {
        assert_eq!(
            a.fault_history(d),
            b.fault_history(d),
            "device {d} fault history must replay exactly"
        );
    }
    assert_eq!(a.completed().len(), b.completed().len());
    for (x, y) in a.completed().iter().zip(b.completed()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.final_state, y.final_state, "including the fault log");
        assert_eq!(x.devices, y.devices);
        assert_eq!(x.migrations, y.migrations);
    }
}

#[test]
fn rejections_are_typed_before_any_upload() {
    // Queue-full: one device, bound 2.
    let pool = DevicePool::uniform(1, 1, DeviceSpec::quiet()).unwrap();
    let cfg = FleetConfig {
        queue_capacity: 2,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(cfg, pool);
    fleet.submit(job(0, 64, 4)).unwrap();
    fleet.submit(job(1, 64, 4)).unwrap();
    assert_eq!(
        fleet.submit(job(2, 64, 4)),
        Err(Rejected::QueueFull { capacity: 2 })
    );
    assert_eq!(fleet.accepted(), 2);

    // Invalid config: typed, never enqueued.
    let mut bad = job(3, 64, 4);
    bad.config.dt = 0.0;
    assert!(matches!(
        fleet.submit(bad),
        Err(Rejected::InvalidConfig(ConfigError::BadTimeStep { .. }))
    ));

    // Tenant budget: the reservation's typed OOM comes back verbatim, and
    // nothing was admitted (no partial upload to roll back).
    let pool = DevicePool::uniform(1, 1, DeviceSpec::quiet()).unwrap();
    let cfg = FleetConfig {
        tenant_budget: Some(1),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(cfg, pool);
    match fleet.submit(job(0, 96, 4)) {
        Err(Rejected::TenantBudget { tenant, error }) => {
            assert_eq!(tenant, "t0");
            assert!(matches!(error.kind, FaultKind::OutOfMemory { .. }));
        }
        other => panic!("expected a tenant-budget rejection, got {other:?}"),
    }
    assert_eq!(fleet.accepted(), 0);
    assert_eq!(fleet.in_flight(), 0);
}

#[test]
fn sick_device_is_quarantined_drained_and_refuses_admission() {
    // One device with brutal fault rates: strikes accumulate fast.
    let spec = DeviceSpec {
        capacity: None,
        fault_rates: FaultRates {
            bit_flip: 0.1,
            launch_failure: 0.8,
            hang: 0.1,
        },
        watchdog_instructions: Some(1 << 22),
    };
    let pool = DevicePool::uniform(5, 1, spec).unwrap();
    let mut fleet = Fleet::new(FleetConfig::default(), pool);
    fleet.submit(job(0, 64, 400)).unwrap();
    fleet.submit(job(1, 64, 400)).unwrap();
    let mut quarantined_at = None;
    for _ in 0..60 {
        fleet.tick();
        if matches!(fleet.device_health(0), Some(Health::Quarantined { .. })) {
            quarantined_at = Some(fleet.tick_count());
            break;
        }
    }
    assert!(
        quarantined_at.is_some(),
        "a device failing 90% of launches must be quarantined; health {:?}",
        fleet.device_health(0)
    );
    // Drained: its queue is empty, the jobs are parked, nothing lost.
    assert_eq!(fleet.queue_len(0), 0, "quarantine must drain the queue");
    assert_eq!(fleet.in_flight(), 2, "both jobs still owned by the fleet");
    assert!(fleet
        .events()
        .iter()
        .any(|e| matches!(e, FleetEvent::Drained { device: 0, .. })));
    // While quarantined the pool admits nothing, and says so in type.
    assert_eq!(
        fleet.submit(job(2, 64, 4)),
        Err(Rejected::NoAdmittingDevice)
    );
}

#[test]
fn quarantined_device_jobs_migrate_and_finish_elsewhere() {
    // Device 0 is hopeless, device 1 is healthy: jobs placed on (or draining
    // off) device 0 must finish on device 1, bit-identically.
    let sick = DeviceSpec {
        capacity: None,
        fault_rates: FaultRates {
            bit_flip: 0.1,
            launch_failure: 0.8,
            hang: 0.1,
        },
        watchdog_instructions: Some(1 << 22),
    };
    let pool = DevicePool::new(21, vec![sick, DeviceSpec::quiet()]).unwrap();
    let cfg = FleetConfig {
        seed: 21,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(cfg, pool);
    let jobs: Vec<JobSpec> = (0..4).map(|id| job(id, 64, 8)).collect();
    let refs: Vec<Checkpoint> = jobs.iter().map(reference_checkpoint).collect();
    let outcome = drive(&mut fleet, jobs, 10_000).unwrap();
    assert!(outcome.rejected.is_empty());
    assert_eq!(fleet.completed().len(), 4);
    for done in fleet.completed() {
        assert!(
            physics_eq(&done.final_state, &refs[done.id as usize]),
            "job {} diverged across devices {:?}",
            done.id,
            done.devices
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 3: checkpoint → migrate → resume across devices with
    /// *different capacities* is bit-identical to the uninterrupted solo
    /// run, for random sizes, capacity splits and slice granularities.
    /// (The `GPU_SIM_THREADS` dimension is covered by CI's full-test rerun
    /// with `GPU_SIM_THREADS=8`; the thread count is a process-wide
    /// `OnceLock`, so it cannot vary within one test process.)
    #[test]
    fn migration_across_unequal_devices_is_bit_identical(
        n in 64usize..160,
        denom in 2u64..6,
        slice in 1u64..5,
        seed in 0u64..500,
    ) {
        // Device 0 unconstrained; device 1 constricted so the resumed job
        // replans (chunked or CPU rung) — physics must not notice.
        let small = frame_memory_budget(OptLevel::Full, n as u32) / denom;
        let specs = vec![
            DeviceSpec::quiet(),
            DeviceSpec { capacity: Some(small), ..DeviceSpec::quiet() },
        ];
        let pool = DevicePool::new(seed, specs).unwrap();
        let cfg = FleetConfig {
            slice_steps: slice,
            preempt_rate: 0.5, // force plenty of preemption/migration
            seed,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(cfg, pool);
        let spec = job(seed, n, 8);
        let reference = reference_checkpoint(&spec);
        drive(&mut fleet, vec![spec], 10_000).unwrap();
        prop_assert_eq!(fleet.completed().len(), 1);
        let done = &fleet.completed()[0];
        prop_assert!(
            physics_eq(&done.final_state, &reference),
            "diverged across devices {:?} after {} migrations",
            &done.devices, done.migrations
        );
    }
}
