//! Checkpoint/resume acceptance tests.
//!
//! The contract under test: a checkpoint captures the *complete* integration
//! state, so `save → load → resume` reproduces `bodies`, `accels`, `time`,
//! `steps` and `fault_reports` exactly, and a resumed run finishes
//! **bit-identical** to the run that was never interrupted. Damaged or
//! version-skewed checkpoint files are typed errors, never panics or wrong
//! trajectories.

use gpu_sim::fault::{DeviceError, FaultKind};
use gravit_app::backend::{Backend, FaultReport};
use gravit_app::checkpoint::{Checkpoint, CheckpointError, CKPT_VERSION};
use gravit_app::config::{Integrator, SimConfig, SpawnKind};
use gravit_app::recovery::RetryEvent;
use gravit_app::sim::{SimError, Simulation};
use proptest::prelude::*;

fn config(n: usize, seed: u64, euler: bool) -> SimConfig {
    SimConfig {
        n,
        spawn: SpawnKind::UniformBall { radius: 3.0 },
        seed,
        dt: 0.01,
        integrator: if euler {
            Integrator::Euler
        } else {
            Integrator::Leapfrog
        },
        backend: Backend::CpuSerial,
        ..SimConfig::default()
    }
}

/// A synthetic survived fault, to prove the log round-trips with full retry
/// history.
fn sample_report() -> FaultReport {
    FaultReport {
        error: DeviceError::new(FaultKind::TransientLaunch {
            reason: "spurious".into(),
        })
        .with_kernel("force_soaos"),
        degraded_from: "gpu-sim[SoAoaS]".into(),
        degraded_to: "gpu-sim[SoAoaS] (retry 1)".into(),
        retries: vec![RetryEvent {
            attempt: 0,
            fault: "TransientLaunch".into(),
            detail: "spurious".into(),
            backoff_ms: 0,
        }],
        ladder: vec![gravit_app::pressure::DegradeEvent {
            from: "full".into(),
            to: "chunked(c=128)".into(),
            reason: "device out of memory: requested 1024 B with 512 B free of 512 B".into(),
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → resume reproduces the full state exactly, and the resumed
    /// simulation continues bit-identical to the original.
    #[test]
    fn checkpoint_round_trip_is_exact(
        n in 4usize..48,
        seed in 0u64..1000,
        warmup in 0u64..6,
        extra in 1u64..5,
        euler in any::<bool>(),
    ) {
        let mut sim = Simulation::new(config(n, seed, euler)).expect("valid config");
        sim.run(warmup).expect("cpu backend cannot fault");
        sim.fault_reports.push(sample_report());

        let bytes = sim.checkpoint().to_bytes();
        let ckpt = Checkpoint::from_bytes(&bytes).expect("round trip");
        let mut resumed =
            Simulation::resume(config(n, seed, euler), &ckpt).expect("compatible");

        prop_assert_eq!(&resumed.bodies, &sim.bodies);
        prop_assert_eq!(&resumed.accels, &sim.accels);
        prop_assert_eq!(resumed.time.to_bits(), sim.time.to_bits());
        prop_assert_eq!(resumed.steps, sim.steps);
        prop_assert_eq!(&resumed.fault_reports, &sim.fault_reports);
        prop_assert_eq!(resumed.energy_drift().to_bits(), sim.energy_drift().to_bits());

        // The futures coincide bit-for-bit, step by step.
        for _ in 0..extra {
            sim.step().expect("step");
            resumed.step().expect("step");
            prop_assert_eq!(&resumed.bodies, &sim.bodies);
            prop_assert_eq!(&resumed.accels, &sim.accels);
        }
    }
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted_run_bitwise() {
    let cfg = || config(64, 7, false);
    let mut straight = Simulation::new(cfg()).unwrap();
    straight.run(12).unwrap();

    let dir = std::env::temp_dir().join("gravit-ckpt-resume-test");
    let path = dir.join("mid.ckpt");
    let mut first_half = Simulation::new(cfg()).unwrap();
    first_half.run(5).unwrap();
    first_half.checkpoint().save(&path).unwrap();
    drop(first_half); // the "kill"

    let ckpt = Checkpoint::load(&path).unwrap();
    let mut resumed = Simulation::resume(cfg(), &ckpt).unwrap();
    resumed.run(12 - resumed.steps).unwrap();
    assert_eq!(resumed.steps, straight.steps);
    assert_eq!(
        resumed.bodies, straight.bodies,
        "trajectory must be bit-identical"
    );
    assert_eq!(resumed.accels, straight.accels);
    assert_eq!(resumed.time.to_bits(), straight.time.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_skewed_checkpoints_are_rejected_not_misread() {
    let sim = Simulation::new(config(8, 1, true)).unwrap();
    let bytes = sim.checkpoint().to_bytes();
    let text = String::from_utf8(bytes).unwrap();
    let skewed = text.replacen(
        &format!("v{CKPT_VERSION} "),
        &format!("v{} ", CKPT_VERSION + 1),
        1,
    );
    match Checkpoint::from_bytes(skewed.as_bytes()) {
        Err(CheckpointError::VersionMismatch { found, supported }) => {
            assert_eq!(found, CKPT_VERSION + 1);
            assert_eq!(supported, CKPT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn resuming_under_a_different_config_is_a_typed_mismatch() {
    let sim = Simulation::new(config(8, 1, true)).unwrap();
    let ckpt = sim.checkpoint();
    // Different n, seed, dt, integrator and backend must all be rejected.
    let variants = [
        config(9, 1, true),
        config(8, 2, true),
        SimConfig {
            dt: 0.02,
            ..config(8, 1, true)
        },
        config(8, 1, false),
        SimConfig {
            backend: Backend::CpuParallel,
            ..config(8, 1, true)
        },
    ];
    for (i, cfg) in variants.into_iter().enumerate() {
        match Simulation::resume(cfg, &ckpt) {
            Err(SimError::Checkpoint(CheckpointError::ConfigMismatch(_))) => {}
            other => panic!("variant {i}: expected ConfigMismatch, got {other:?}"),
        }
    }
}
