//! Memory-pressure acceptance tests: a device capacity smaller than the
//! working set degrades to chunked streaming execution that is
//! **bit-identical** to the unconstrained run (for every optimization
//! level), descends to the CPU at the floor, and composes with the
//! transient-fault chaos machinery — all with full fault attribution and
//! zero sanitizer violations.

use gpu_kernels::force::OptLevel;
use gpu_sim::fault::FaultKind;
use gpu_sim::transient::{FaultRates, TransientFaultPlan};
use gpu_sim::DriverModel;
use gravit_app::backend::{frame_memory_budget, Backend, FaultPolicy};
use gravit_app::config::{SimConfig, SpawnKind};
use gravit_app::pressure::{chunked_memory_budget, plan_frame, ExecMode};
use gravit_app::recovery::RecoveryPolicy;
use gravit_app::sim::Simulation;
use gravit_app::Integrator;
use nbody::model::ForceParams;
use nbody::spawn;
use proptest::prelude::*;

fn gpu(level: OptLevel) -> Backend {
    Backend::GpuSim {
        level,
        driver: DriverModel::Cuda10,
    }
}

/// Chunked execution under a constricted capacity is bit-identical to the
/// unconstrained run for every optimization level (hence every layout in
/// the ladder: Unopt, SoA, AoaS, SoAoaS, and the tuned variants).
#[test]
fn constrained_execution_is_bit_identical_for_every_level() {
    let bodies = spawn::uniform_ball(500, 5.0, 2.0, 13);
    let fp = ForceParams::default();
    for level in OptLevel::ALL {
        let backend = gpu(level);
        let reference = backend.try_accelerations(&bodies, &fp).unwrap();
        // Tight enough to force chunking, ample enough for the floor chunk
        // (the block-192 levels have a sizeable smallest rung).
        let capacity = chunked_memory_budget(level, gravit_app::pressure::chunk_floor(level));
        assert!(
            capacity < frame_memory_budget(level, 500),
            "{}: not constricting",
            level.label()
        );
        let recovery = RecoveryPolicy {
            device_capacity: Some(capacity),
            ..Default::default()
        };
        let res = backend
            .accelerations_recovering(&bodies, &fp, FaultPolicy::FailFast, &recovery, None)
            .unwrap_or_else(|e| panic!("{}: {e}", level.label()));
        assert_eq!(
            res.accels,
            reference,
            "{}: chunked must be bit-identical",
            level.label()
        );
        // The degradation must be attributed: a report with the admission
        // OOM as root cause and the full ladder history.
        let report = res
            .fault
            .unwrap_or_else(|| panic!("{}: degraded frame unreported", level.label()));
        assert!(matches!(report.error.kind, FaultKind::OutOfMemory { .. }));
        assert!(
            !report.ladder.is_empty(),
            "{}: ladder must be recorded",
            level.label()
        );
        assert_eq!(report.ladder[0].from, "full");
        assert!(
            report.degraded_to.contains("chunked"),
            "{}",
            report.degraded_to
        );
        assert!(report.render().contains("degrade full ->"));
    }
}

/// At a capacity below the chunk floor, the ladder's last rung takes the
/// frame on the CPU — still bit-identical — or propagates the root OOM
/// under fail-fast.
#[test]
fn hopeless_capacity_ends_on_the_cpu_rung() {
    let bodies = spawn::uniform_ball(300, 5.0, 2.0, 13);
    let fp = ForceParams::default();
    let backend = gpu(OptLevel::Full);
    let reference = backend.try_accelerations(&bodies, &fp).unwrap();
    let recovery = RecoveryPolicy {
        device_capacity: Some(128),
        ..Default::default()
    };
    // Fail-fast: the typed admission OOM propagates.
    let err = backend
        .accelerations_recovering(&bodies, &fp, FaultPolicy::FailFast, &recovery, None)
        .unwrap_err();
    assert!(
        matches!(err.kind, FaultKind::OutOfMemory { .. }),
        "got {:?}",
        err.kind
    );
    // Fallback: the CPU takes the frame, ladder fully recorded.
    let res = backend
        .accelerations_recovering(&bodies, &fp, FaultPolicy::FallbackToCpu, &recovery, None)
        .unwrap();
    assert_eq!(res.accels, reference);
    let report = res.fault.unwrap();
    assert_eq!(report.degraded_to, "cpu-parallel");
    assert_eq!(report.ladder.last().unwrap().to, "cpu-parallel");
    assert!(
        report.ladder.len() >= 2,
        "full -> chunked... -> cpu: {:?}",
        report.ladder
    );
}

/// A full constrained *simulation* (multi-step leapfrog) produces the exact
/// trajectory of the unconstrained one, and logs the degradations.
#[test]
fn constrained_trajectory_matches_unconstrained_bitwise() {
    let level = OptLevel::Full;
    let base = SimConfig {
        n: 384,
        spawn: SpawnKind::UniformBall { radius: 3.0 },
        seed: 7,
        dt: 0.005,
        integrator: Integrator::Leapfrog,
        backend: gpu(level),
        ..SimConfig::default()
    };
    let mut free = Simulation::new(base.clone()).unwrap();
    free.run(4).unwrap();
    assert!(
        free.fault_reports.is_empty(),
        "unconstrained run must be clean"
    );

    let capacity = frame_memory_budget(level, 384) / 4;
    let mut constrained_cfg = base;
    constrained_cfg.recovery.device_capacity = Some(capacity);
    let mut tight = Simulation::new(constrained_cfg).unwrap();
    tight.run(4).unwrap();
    assert_eq!(
        free.bodies, tight.bodies,
        "trajectories must be bit-identical"
    );
    assert_eq!(free.accels, tight.accels);
    // Every force evaluation degraded (and said so): initial accels + steps.
    assert!(!tight.fault_reports.is_empty());
    assert!(tight.fault_reports.iter().all(|r| !r.ladder.is_empty()));
}

/// Pressure composed with transient chaos: bit-flips, launch failures and
/// hangs rain on a memory-constricted run, and the trajectory still matches
/// the clean unconstrained reference bit-for-bit (retries and the CPU rung
/// are both bit-identical).
#[test]
fn pressure_and_transient_chaos_compose() {
    let level = OptLevel::Full;
    let base = SimConfig {
        n: 256,
        spawn: SpawnKind::UniformBall { radius: 3.0 },
        seed: 11,
        dt: 0.005,
        integrator: Integrator::Leapfrog,
        backend: gpu(level),
        ..SimConfig::default()
    };
    let mut free = Simulation::new(base.clone()).unwrap();
    free.run(3).unwrap();

    let mut cfg = base;
    cfg.recovery.device_capacity = Some(frame_memory_budget(level, 256) / 4);
    cfg.recovery.max_retries = 6;
    cfg.recovery.watchdog_instructions = Some(1 << 22);
    cfg.fault_policy = FaultPolicy::FallbackToCpu;
    // Seed the chaos before the first force evaluation by constructing, then
    // injecting and re-running the same trajectory from scratch.
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    sim.set_transient_faults(TransientFaultPlan::new(
        42,
        FaultRates {
            bit_flip: 0.05,
            launch_failure: 0.1,
            hang: 0.05,
        },
    ));
    sim.run(3).unwrap();
    assert_eq!(
        free.bodies, sim.bodies,
        "chaos + pressure must not corrupt the trajectory"
    );
    // The pressure degradations were reported throughout.
    assert!(sim.fault_reports.iter().any(|r| !r.ladder.is_empty()));
}

/// Resuming a checkpoint on a *smaller* device replans through
/// [`plan_frame`] before any upload: under fallback it degrades down the
/// PR 5 ladder (bit-identically), and a capacity below even the CPU-rung
/// threshold under fail-fast is a typed admission OOM at resume time — never
/// a raw mid-restore `OutOfMemory`.
#[test]
fn resume_on_smaller_device_degrades_via_the_ladder() {
    let level = OptLevel::Full;
    let base = SimConfig {
        n: 256,
        spawn: SpawnKind::UniformBall { radius: 3.0 },
        seed: 23,
        dt: 0.005,
        integrator: Integrator::Leapfrog,
        backend: gpu(level),
        fault_policy: FaultPolicy::FallbackToCpu,
        ..SimConfig::default()
    };
    // Uninterrupted reference on the big device.
    let mut free = Simulation::new(base.clone()).unwrap();
    free.run(6).unwrap();
    // Interrupt at step 3 and resume on a device a quarter the size.
    let mut first = Simulation::new(base.clone()).unwrap();
    first.run(3).unwrap();
    let ckpt = first.checkpoint();
    let mut small_cfg = base.clone();
    small_cfg.recovery.device_capacity = Some(frame_memory_budget(level, 256) / 4);
    let mut resumed = Simulation::resume(small_cfg, &ckpt).unwrap();
    resumed.run(3).unwrap();
    assert_eq!(free.bodies, resumed.bodies, "must be bit-identical");
    assert_eq!(free.accels, resumed.accels);
    assert!(
        resumed.fault_reports.iter().any(|r| !r.ladder.is_empty()),
        "the constricted continuation must report its degradations"
    );
}

/// Fail-fast + a capacity below the chunk floor: the resume itself refuses
/// with the plan's typed root OOM (exit path, not a panic and not a partial
/// restore). The same checkpoint under fallback lands on the CPU rung and
/// stays bit-identical.
#[test]
fn hopeless_resume_is_typed_oom_under_failfast_and_cpu_under_fallback() {
    let level = OptLevel::Full;
    let base = SimConfig {
        n: 256,
        spawn: SpawnKind::UniformBall { radius: 3.0 },
        seed: 29,
        dt: 0.005,
        integrator: Integrator::Leapfrog,
        backend: gpu(level),
        ..SimConfig::default()
    };
    let mut free = Simulation::new(base.clone()).unwrap();
    free.run(5).unwrap();
    let mut first = Simulation::new(base.clone()).unwrap();
    first.run(2).unwrap();
    let ckpt = first.checkpoint();

    let mut hopeless = base.clone();
    hopeless.recovery.device_capacity = Some(128);
    hopeless.fault_policy = FaultPolicy::FailFast;
    match Simulation::resume(hopeless, &ckpt) {
        Err(gravit_app::SimError::Device(e)) => {
            assert!(
                matches!(e.kind, FaultKind::OutOfMemory { .. }),
                "got {:?}",
                e.kind
            );
        }
        other => panic!("expected a typed admission OOM, got {other:?}"),
    }

    let mut fallback = base;
    fallback.recovery.device_capacity = Some(128);
    fallback.fault_policy = FaultPolicy::FallbackToCpu;
    let mut resumed = Simulation::resume(fallback, &ckpt).unwrap();
    resumed.run(3).unwrap();
    assert_eq!(
        free.bodies, resumed.bodies,
        "CPU rung must be bit-identical"
    );
    assert!(resumed
        .fault_reports
        .iter()
        .any(|r| r.degraded_to == "cpu-parallel"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random (n, capacity, level): the admitted mode respects the budget,
    /// and chunked execution is bit-identical to the unconstrained frame.
    #[test]
    fn chunked_equals_unconstrained_bitwise(
        n in 64u32..400,
        denom in 2u64..8,
        level_idx in 0usize..OptLevel::ALL.len(),
        seed in 0u64..1000,
    ) {
        let level = OptLevel::ALL[level_idx];
        let bodies = spawn::uniform_ball(n as usize, 4.0, 2.0, seed);
        let fp = ForceParams::default();
        let backend = gpu(level);
        let capacity = (frame_memory_budget(level, n) / denom).max(1);
        let plan = plan_frame(level, n, Some(capacity));
        match plan.mode {
            ExecMode::Full => prop_assert!(plan.full_budget <= capacity),
            ExecMode::Chunked { chunk } => {
                prop_assert!(chunked_memory_budget(level, chunk) <= capacity);
                prop_assert!(plan.full_budget > capacity);
            }
            ExecMode::Cpu => {}
        }
        let recovery = RecoveryPolicy { device_capacity: Some(capacity), ..Default::default() };
        let reference = backend.try_accelerations(&bodies, &fp).unwrap();
        let res = backend
            .accelerations_recovering(&bodies, &fp, FaultPolicy::FallbackToCpu, &recovery, None)
            .unwrap();
        prop_assert_eq!(res.accels, reference);
        // Reports appear exactly when the plan degraded.
        prop_assert_eq!(res.fault.is_some(), plan.mode != ExecMode::Full);
    }
}
