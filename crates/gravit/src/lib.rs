//! # gravit-app — a Gravit-like gravity simulator
//!
//! The application layer of the reproduction: the paper accelerates Gravit, a
//! Newtonian gravity simulator, so the repository ships one. It wires the
//! [`nbody`] physics and the simulated-GPU backends from [`gravit_core`] into
//! a configurable simulation loop with recording and diagnostics:
//!
//! * [`config`] — simulation configuration (workload, force law, integrator,
//!   backend);
//! * [`backend`] — force-calculation backends: serial CPU (the paper's 87×
//!   baseline), Rayon-parallel CPU, Barnes–Hut (Gravit's tree code), and the
//!   simulated-GPU kernel at any optimization level;
//! * [`model`] — the device frame-time model (Fig. 12's quantity);
//! * [`sim`] — the time-stepping loop with energy/momentum diagnostics;
//! * [`pressure`] — per-frame memory planning, chunked streaming execution
//!   and the full → chunked → CPU degradation ladder;
//! * [`recovery`] — retry/backoff policy for transient device faults;
//! * [`checkpoint`] — frame-granular, CRC-protected checkpoint/resume;
//! * [`recorder`] — JSON frame recording;
//! * [`render`] — PGM/ASCII rendering of recordings (Gravit's visual side);
//! * [`fleet`] — the supervised multi-job runtime over a pool of simulated
//!   devices: typed admission, per-device health supervision with
//!   quarantine, and checkpoint-backed preemption/migration.
//!
//! The `gravit` binary exposes `run`, `ladder`, `model` and `fleet`
//! subcommands; see `gravit help`.

#![warn(missing_docs)]

pub mod backend;
pub mod checkpoint;
pub mod config;
pub mod fleet;
pub mod model;
pub mod pressure;
pub mod recorder;
pub mod recovery;
pub mod render;
pub mod sim;

pub use backend::Backend;
pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::{ConfigError, Integrator, SimConfig, SpawnKind};
pub use fleet::{CompletedJob, Fleet, FleetConfig, FleetEvent, Health, JobSpec, Rejected};
pub use pressure::{plan_frame, DegradeEvent, ExecMode, MemoryPlan};
pub use recovery::{BackoffSchedule, RecoveryPolicy, RetryEvent};
pub use sim::{SimError, Simulation};
