//! Supervised multi-job runtime over a pool of simulated devices.
//!
//! This is the ROADMAP's "faulting device drains its queue" made concrete:
//! every robustness primitive of the earlier layers — typed `DeviceError`s,
//! seeded transient faults, watchdogs, CRC checkpoint/resume, memory-budget
//! admission — becomes a *per-job scheduling signal*:
//!
//! * **Typed admission** ([`Fleet::submit`]): a job is validated and billed
//!   against its tenant's [`MemoryBudget`] *before* anything touches a
//!   device; refusal is a typed [`Rejected`], never a partial upload.
//! * **Health supervision** ([`health`]): transient faults and watchdog
//!   kills strike the hosting device through the pure `Healthy → Suspect →
//!   Quarantined → Probation → Healthy` machine; memory-pressure
//!   degradations do not (an undersized card is poor, not sick).
//! * **Checkpoint-backed preemption and migration**: a running job is frozen
//!   at slice boundaries into an in-memory `GRAVITCKPT` frame (same CRC
//!   framing as the on-disk format) and resumed on any admitting device —
//!   bit-identical to the uninterrupted run, because every backend and every
//!   degradation rung computes bit-identical physics. Quarantining a device
//!   preempts and migrates its in-flight job instead of failing it, and
//!   drains its queue into the pool-level parked list.
//! * **Deterministic scheduling** ([`schedule`]): placement and preemption
//!   draws are pure functions of `(seed, job id, tick)`, and slices merge in
//!   ascending device order, so the whole fleet run — event log, fault
//!   history, every completed trajectory — replays bit-for-bit from its
//!   seed, regardless of how many worker threads ran the slices.
//!
//! The no-job-lost invariant is structural: admitted jobs run under
//! [`FaultPolicy::FallbackToCpu`] (a step cannot error), worker panics are
//! contained by restoring the pre-slice checkpoint, and preempted or
//! drained jobs always land in the parked list that assignment empties
//! first.

pub mod health;
pub mod job;
pub mod schedule;

pub use health::{Health, HealthPolicy};
pub use job::{CompletedJob, JobSpec, Rejected};
pub use schedule::SchedulePlan;

use crate::backend::FaultPolicy;
use crate::checkpoint::Checkpoint;
use crate::sim::Simulation;
use gpu_sim::mem::MemoryBudget;
use gpu_sim::pool::DevicePool;
use gpu_sim::transient::TransientFaultPlan;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Fleet-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Bounded per-device queue length; a submission finding every
    /// admitting queue full is rejected as [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Steps per scheduling slice (the preemption granularity).
    pub slice_steps: u64,
    /// Per-tenant device-memory budget in bytes (`None` = unmetered).
    pub tenant_budget: Option<u64>,
    /// Health-machine thresholds.
    pub health: HealthPolicy,
    /// Per-slice seeded preemption probability.
    pub preempt_rate: f64,
    /// The fleet seed every scheduling draw derives from.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 8,
            slice_steps: 4,
            tenant_budget: None,
            health: HealthPolicy::default(),
            preempt_rate: 0.05,
            seed: 42,
        }
    }
}

/// One entry of a device's ordered fault history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultStamp {
    /// Tick the fault surfaced.
    pub tick: u64,
    /// Job that was running.
    pub job: u64,
    /// Fault class (`FaultKind::name`, or `worker-panic`).
    pub fault: String,
    /// Human-readable detail.
    pub detail: String,
    /// Whether the fault counted as a health strike.
    pub strike: bool,
}

/// The replayable record of everything the fleet decided. Two runs with the
/// same seed, pool and submissions produce identical event logs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FleetEvent {
    /// A job was admitted onto a device queue.
    Submitted {
        /// Tick of the decision.
        tick: u64,
        /// Job id.
        job: u64,
        /// Queue the job landed on.
        device: usize,
    },
    /// A submission was refused (reason label from [`Rejected::label`]).
    RejectedSubmit {
        /// Tick of the decision.
        tick: u64,
        /// Job id.
        job: u64,
        /// Machine-stable rejection label.
        reason: String,
    },
    /// A fresh job began running.
    Started {
        /// Tick of the decision.
        tick: u64,
        /// Job id.
        job: u64,
        /// Hosting device.
        device: usize,
    },
    /// A frozen job resumed from its in-memory checkpoint.
    Resumed {
        /// Tick of the decision.
        tick: u64,
        /// Job id.
        job: u64,
        /// Hosting device.
        device: usize,
        /// Step count the checkpoint carried.
        at_step: u64,
    },
    /// A resumed job landed on a different device than its last slice.
    Migrated {
        /// Tick of the decision.
        tick: u64,
        /// Job id.
        job: u64,
        /// Device of the previous slice.
        from: usize,
        /// New hosting device.
        to: usize,
    },
    /// A running job was checkpointed and re-queued at a slice boundary.
    Preempted {
        /// Tick of the decision.
        tick: u64,
        /// Job id.
        job: u64,
        /// Device the job was preempted off.
        device: usize,
        /// Steps completed at the preemption boundary.
        at_step: u64,
    },
    /// A device fault surfaced during a slice.
    Faulted {
        /// Tick the fault surfaced.
        tick: u64,
        /// Hosting device.
        device: usize,
        /// Job that was running.
        job: u64,
        /// Fault class name.
        fault: String,
        /// Whether it counted as a health strike.
        strike: bool,
    },
    /// A device's health state changed.
    HealthChanged {
        /// Tick of the transition.
        tick: u64,
        /// Device.
        device: usize,
        /// Previous state label.
        from: String,
        /// New state label.
        to: String,
    },
    /// A quarantined device's queue was drained into the parked list.
    Drained {
        /// Tick of the drain.
        tick: u64,
        /// Device.
        device: usize,
        /// Jobs moved, in queue order.
        jobs: Vec<u64>,
    },
    /// A job reached its step target.
    Completed {
        /// Tick of completion.
        tick: u64,
        /// Job id.
        job: u64,
        /// Device that ran the final slice.
        device: usize,
        /// Total steps taken.
        steps: u64,
    },
}

/// A job waiting to (re)start: fresh (`frozen == None`) or preempted with
/// its CRC-framed in-memory checkpoint.
#[derive(Debug, Clone)]
struct PendingJob {
    spec: JobSpec,
    frozen: Option<Vec<u8>>,
    devices: Vec<usize>,
    migrations: u32,
    reports_seen: usize,
}

/// A job currently owning a device.
struct RunningJob {
    spec: JobSpec,
    sim: Simulation,
    devices: Vec<usize>,
    migrations: u32,
    reports_seen: usize,
}

/// What one device slice produced.
enum SliceRun {
    /// The slice completed (panic-free); the job may have finished.
    /// Boxed: a `RunningJob` carries a whole `Simulation`.
    Done(Box<RunningJob>),
    /// The worker panicked; the job was restored from its pre-slice
    /// checkpoint and the device takes a strike.
    Broken {
        pending: Box<PendingJob>,
        plan: TransientFaultPlan,
        what: String,
    },
}

struct DeviceState {
    health: Health,
    queue: VecDeque<PendingJob>,
    running: Option<RunningJob>,
    fault_history: Vec<FaultStamp>,
}

/// The supervised runtime: pool + queues + health + event log.
pub struct Fleet {
    cfg: FleetConfig,
    pool: DevicePool,
    schedule: SchedulePlan,
    devices: Vec<DeviceState>,
    parked: VecDeque<PendingJob>,
    tenants: BTreeMap<String, MemoryBudget>,
    tick: u64,
    accepted: u64,
    events: Vec<FleetEvent>,
    completed: Vec<CompletedJob>,
}

impl Fleet {
    /// A fleet over `pool`, with every scheduling draw seeded from
    /// `cfg.seed`.
    pub fn new(cfg: FleetConfig, pool: DevicePool) -> Fleet {
        let devices = (0..pool.len())
            .map(|_| DeviceState {
                health: Health::Healthy,
                queue: VecDeque::new(),
                running: None,
                fault_history: Vec::new(),
            })
            .collect();
        Fleet {
            schedule: SchedulePlan::new(cfg.seed, cfg.preempt_rate),
            cfg,
            pool,
            devices,
            parked: VecDeque::new(),
            tenants: BTreeMap::new(),
            tick: 0,
            accepted: 0,
            events: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Admission control: validate, bill the tenant budget, pick a queue.
    /// Everything happens before any device memory is touched; a refusal is
    /// a typed [`Rejected`] carrying the exact reason (and, for budget
    /// refusals, the typed `OutOfMemory` of the rejected reservation).
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), Rejected> {
        if let Err(e) = spec.config.validate() {
            return self.refuse(spec.id, Rejected::InvalidConfig(e));
        }
        let admitting: Vec<usize> = (0..self.devices.len())
            .filter(|&d| self.devices[d].health.admits())
            .collect();
        if admitting.is_empty() {
            return self.refuse(spec.id, Rejected::NoAdmittingDevice);
        }
        let cost = spec.device_cost();
        if let Some(budget) = self.cfg.tenant_budget {
            let ledger = self
                .tenants
                .entry(spec.tenant.clone())
                .or_insert_with(|| MemoryBudget::new(budget));
            if let Err(error) = ledger.reserve(cost) {
                let tenant = spec.tenant.clone();
                return self.refuse(spec.id, Rejected::TenantBudget { tenant, error });
            }
        }
        let open: Vec<usize> = admitting
            .into_iter()
            .filter(|&d| self.devices[d].queue.len() < self.cfg.queue_capacity)
            .collect();
        if open.is_empty() {
            // Undo the reservation: a refused job must not leak budget.
            self.release_tenant(&spec);
            return self.refuse(
                spec.id,
                Rejected::QueueFull {
                    capacity: self.cfg.queue_capacity,
                },
            );
        }
        let device = open[self.schedule.place(spec.id, self.tick, open.len())];
        self.events.push(FleetEvent::Submitted {
            tick: self.tick,
            job: spec.id,
            device,
        });
        self.devices[device].queue.push_back(PendingJob {
            spec,
            frozen: None,
            devices: Vec::new(),
            migrations: 0,
            reports_seen: 0,
        });
        self.accepted += 1;
        Ok(())
    }

    fn refuse(&mut self, job: u64, r: Rejected) -> Result<(), Rejected> {
        self.events.push(FleetEvent::RejectedSubmit {
            tick: self.tick,
            job,
            reason: r.label().into(),
        });
        Err(r)
    }

    /// One scheduling round: release elapsed quarantines, assign work,
    /// run every busy device's slice in parallel, then merge outcomes in
    /// ascending device order (the determinism barrier).
    pub fn tick(&mut self) {
        let now = self.tick;
        // 1. Quarantine release.
        for d in 0..self.devices.len() {
            let h0 = self.devices[d].health;
            let h1 = health::release_quarantine(h0, &self.cfg.health, now);
            if h1 != h0 {
                self.set_health(d, h0, h1, now);
            }
        }
        // 2. Assignment, ascending device id; parked (preempted/drained)
        // jobs take priority over fresh queue entries so a migrated job is
        // never starved by new arrivals.
        for d in 0..self.devices.len() {
            if !self.devices[d].health.admits() || self.devices[d].running.is_some() {
                continue;
            }
            let Some(pending) = self
                .parked
                .pop_front()
                .or_else(|| self.devices[d].queue.pop_front())
            else {
                continue;
            };
            self.start_pending(d, pending, now);
        }
        // 3. Parallel slices: one worker per busy device. Each sim is
        // independent, so thread interleaving cannot affect results; the
        // merge below is ordered by device id.
        let slice = self.cfg.slice_steps.max(1);
        let mut slots: Vec<(usize, RunningJob, TransientFaultPlan)> = Vec::new();
        for d in 0..self.devices.len() {
            if let Some(mut rj) = self.devices[d].running.take() {
                let plan = self
                    .pool
                    .device(d)
                    .map(|dev| dev.plan.clone())
                    .unwrap_or_else(TransientFaultPlan::quiet);
                rj.sim.set_transient_faults(plan.clone());
                slots.push((d, rj, plan));
            }
        }
        let outcomes: Vec<(usize, SliceRun)> = std::thread::scope(|scope| {
            let handles: Vec<_> = slots
                .into_iter()
                .map(|(d, rj, plan)| scope.spawn(move || (d, run_slice(rj, plan, slice))))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // run_slice itself contains the panic; a join failure
                    // here would mean the containment panicked, which it
                    // cannot (it only moves plain data).
                    Err(_) => unreachable!("slice workers contain their panics"),
                })
                .collect()
        });
        // 4. Deterministic merge, ascending device id (spawn order).
        for (d, outcome) in outcomes {
            self.merge_slice(d, outcome, now);
        }
        self.tick += 1;
    }

    /// Start (or resume) a pending job on device `d`.
    fn start_pending(&mut self, d: usize, mut pending: PendingJob, now: u64) {
        let spec = pending.spec.clone();
        let mut cfg = spec.config.clone();
        // Admitted jobs must be unlosable: a device fault degrades the frame
        // (retry → ladder → CPU), it never aborts the simulation.
        cfg.fault_policy = FaultPolicy::FallbackToCpu;
        let dev_spec = self
            .pool
            .device(d)
            .map(|dev| dev.spec.clone())
            .unwrap_or_else(gpu_sim::pool::DeviceSpec::quiet);
        // The tighter of the job's own cap and the device's applies.
        cfg.recovery.device_capacity = match (cfg.recovery.device_capacity, dev_spec.capacity) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        cfg.recovery.watchdog_instructions = cfg
            .recovery
            .watchdog_instructions
            .or(dev_spec.watchdog_instructions);
        let sim = match &pending.frozen {
            Some(bytes) => {
                // Bytes we framed ourselves at the preemption boundary:
                // CRC-verified on the way back in, and the config differs
                // only in recovery knobs, which compatibility ignores.
                let ckpt = Checkpoint::from_bytes(bytes)
                    .expect("in-memory checkpoint framed at preemption verifies");
                let sim = Simulation::resume(cfg, &ckpt)
                    .expect("preempted job resumes under FallbackToCpu");
                self.events.push(FleetEvent::Resumed {
                    tick: now,
                    job: spec.id,
                    device: d,
                    at_step: sim.steps,
                });
                if let Some(&last) = pending.devices.last() {
                    if last != d {
                        pending.migrations += 1;
                        self.events.push(FleetEvent::Migrated {
                            tick: now,
                            job: spec.id,
                            from: last,
                            to: d,
                        });
                    }
                }
                sim
            }
            None => {
                let sim =
                    Simulation::new(cfg).expect("validated config constructs under FallbackToCpu");
                self.events.push(FleetEvent::Started {
                    tick: now,
                    job: spec.id,
                    device: d,
                });
                sim
            }
        };
        pending.devices.push(d);
        self.devices[d].running = Some(RunningJob {
            spec,
            sim,
            devices: pending.devices,
            migrations: pending.migrations,
            reports_seen: pending.reports_seen,
        });
    }

    /// Fold one device's slice outcome back into the fleet.
    fn merge_slice(&mut self, d: usize, outcome: SliceRun, now: u64) {
        match outcome {
            SliceRun::Done(mut rj) => {
                // Thread the advanced fault plan back onto the device so its
                // launch counter spans jobs.
                if let Some(plan) = rj.sim.take_transient_faults() {
                    if let Some(dev) = self.pool.device_mut(d) {
                        dev.plan = plan;
                    }
                }
                // New fault reports → history stamps; transient trouble (or
                // anything that needed retries) strikes the device. Pure
                // pressure degradations (planned OOM ladder, no retries) do
                // not: an undersized device is poor, not sick.
                let mut strikes = 0u32;
                for rep in &rj.sim.fault_reports[rj.reports_seen..] {
                    let strike = rep.error.kind.is_transient() || !rep.retries.is_empty();
                    strikes += u32::from(strike);
                    let stamp = FaultStamp {
                        tick: now,
                        job: rj.spec.id,
                        fault: rep.error.kind.name().to_string(),
                        detail: rep.error.to_string(),
                        strike,
                    };
                    self.events.push(FleetEvent::Faulted {
                        tick: now,
                        device: d,
                        job: rj.spec.id,
                        fault: stamp.fault.clone(),
                        strike,
                    });
                    self.devices[d].fault_history.push(stamp);
                }
                rj.reports_seen = rj.sim.fault_reports.len();
                let h0 = self.devices[d].health;
                let h1 = health::after_slice(h0, &self.cfg.health, strikes, now);
                if h1 != h0 {
                    self.set_health(d, h0, h1, now);
                }
                let finished = rj.sim.steps >= rj.spec.steps;
                if finished {
                    self.release_tenant(&rj.spec);
                    self.events.push(FleetEvent::Completed {
                        tick: now,
                        job: rj.spec.id,
                        device: d,
                        steps: rj.sim.steps,
                    });
                    self.completed.push(CompletedJob {
                        id: rj.spec.id,
                        tenant: rj.spec.tenant.clone(),
                        final_state: rj.sim.checkpoint(),
                        devices: rj.devices,
                        migrations: rj.migrations,
                        completed_tick: now,
                    });
                } else if !h1.admits() || self.schedule.preempts(rj.spec.id, now) {
                    // Quarantine migrates the job off the sick device;
                    // otherwise this is the seeded preemption draw. Either
                    // way the job freezes into a CRC-framed checkpoint and
                    // parks for the next admitting device.
                    self.events.push(FleetEvent::Preempted {
                        tick: now,
                        job: rj.spec.id,
                        device: d,
                        at_step: rj.sim.steps,
                    });
                    self.parked.push_back(PendingJob {
                        frozen: Some(rj.sim.checkpoint().to_bytes()),
                        spec: rj.spec,
                        devices: rj.devices,
                        migrations: rj.migrations,
                        reports_seen: rj.reports_seen,
                    });
                } else {
                    self.devices[d].running = Some(*rj);
                }
                if !self.devices[d].health.admits() {
                    self.drain_queue(d, now);
                }
            }
            SliceRun::Broken {
                pending,
                plan,
                what,
            } => {
                // The worker panicked: the job was rebuilt from its
                // pre-slice checkpoint (no partial slice escapes), the
                // device plan rewinds to its pre-slice counter, and the
                // device takes one strike.
                if let Some(dev) = self.pool.device_mut(d) {
                    dev.plan = plan;
                }
                let stamp = FaultStamp {
                    tick: now,
                    job: pending.spec.id,
                    fault: "worker-panic".into(),
                    detail: what,
                    strike: true,
                };
                self.events.push(FleetEvent::Faulted {
                    tick: now,
                    device: d,
                    job: pending.spec.id,
                    fault: stamp.fault.clone(),
                    strike: true,
                });
                self.devices[d].fault_history.push(stamp);
                let h0 = self.devices[d].health;
                let h1 = health::after_slice(h0, &self.cfg.health, 1, now);
                if h1 != h0 {
                    self.set_health(d, h0, h1, now);
                }
                self.events.push(FleetEvent::Preempted {
                    tick: now,
                    job: pending.spec.id,
                    device: d,
                    at_step: pending
                        .frozen
                        .as_deref()
                        .and_then(|b| Checkpoint::from_bytes(b).ok())
                        .map(|c| c.steps)
                        .unwrap_or(0),
                });
                self.parked.push_back(*pending);
                if !self.devices[d].health.admits() {
                    self.drain_queue(d, now);
                }
            }
        }
    }

    /// Move every queued job of a quarantined device to the parked list.
    fn drain_queue(&mut self, d: usize, now: u64) {
        if self.devices[d].queue.is_empty() {
            return;
        }
        let jobs: Vec<u64> = self.devices[d].queue.iter().map(|p| p.spec.id).collect();
        let drained: Vec<PendingJob> = self.devices[d].queue.drain(..).collect();
        self.parked.extend(drained);
        self.events.push(FleetEvent::Drained {
            tick: now,
            device: d,
            jobs,
        });
    }

    fn set_health(&mut self, d: usize, from: Health, to: Health, now: u64) {
        self.devices[d].health = to;
        self.events.push(FleetEvent::HealthChanged {
            tick: now,
            device: d,
            from: from.label(),
            to: to.label(),
        });
    }

    fn release_tenant(&mut self, spec: &JobSpec) {
        if self.cfg.tenant_budget.is_some() {
            if let Some(ledger) = self.tenants.get_mut(&spec.tenant) {
                ledger.release(spec.device_cost());
            }
        }
    }

    /// Ticks taken so far.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Jobs admitted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Jobs admitted but not yet completed (queued + parked + running).
    pub fn in_flight(&self) -> usize {
        self.parked.len()
            + self
                .devices
                .iter()
                .map(|d| d.queue.len() + usize::from(d.running.is_some()))
                .sum::<usize>()
    }

    /// Whether the fleet has nothing left to do.
    pub fn idle(&self) -> bool {
        self.in_flight() == 0
    }

    /// The full event log, in decision order.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Completed jobs, in completion order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// A device's current health.
    pub fn device_health(&self, d: usize) -> Option<Health> {
        self.devices.get(d).map(|s| s.health)
    }

    /// A device's ordered fault history.
    pub fn fault_history(&self, d: usize) -> &[FaultStamp] {
        self.devices
            .get(d)
            .map(|s| s.fault_history.as_slice())
            .unwrap_or(&[])
    }

    /// A device's current queue length.
    pub fn queue_len(&self, d: usize) -> usize {
        self.devices.get(d).map(|s| s.queue.len()).unwrap_or(0)
    }

    /// The underlying pool (device specs and advanced fault plans).
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }
}

/// Run one slice of `slice` steps on a worker thread, containing panics: a
/// panicking worker returns the job rebuilt from its pre-slice checkpoint
/// and the device's pre-slice fault plan, so nothing partial ever escapes
/// into the pool.
fn run_slice(mut rj: RunningJob, pre_plan: TransientFaultPlan, slice: u64) -> SliceRun {
    let pre = rj.sim.checkpoint().to_bytes();
    let spec = rj.spec.clone();
    let devices = rj.devices.clone();
    let migrations = rj.migrations;
    let reports_seen = rj.reports_seen;
    let todo = slice.min(spec.steps.saturating_sub(rj.sim.steps));
    let result = catch_unwind(AssertUnwindSafe(move || {
        for _ in 0..todo {
            // FallbackToCpu: a step cannot error. If it somehow does, that
            // is a contract violation — contain it like a panic.
            if let Err(e) = rj.sim.step() {
                panic!("step errored under FallbackToCpu: {e}");
            }
        }
        rj
    }));
    match result {
        Ok(rj) => SliceRun::Done(Box::new(rj)),
        Err(panic) => {
            let what = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "worker panicked".into());
            SliceRun::Broken {
                pending: Box::new(PendingJob {
                    spec,
                    frozen: Some(pre),
                    devices,
                    migrations,
                    reports_seen,
                }),
                plan: pre_plan,
                what,
            }
        }
    }
}

/// Outcome of [`drive`]: how long the drain took and which submissions were
/// terminally rejected (every one carries its typed reason).
#[derive(Debug)]
pub struct DriveOutcome {
    /// Ticks the drive spent.
    pub ticks: u64,
    /// Terminal rejections, in submission order.
    pub rejected: Vec<(JobSpec, Rejected)>,
}

/// Feed `jobs` into the fleet and tick until everything drains. Transient
/// refusals (full queues, fully-quarantined pool) are retried on later
/// ticks; terminal ones (invalid config, tenant over budget) are returned
/// typed. Errs if the fleet fails to drain within `max_ticks`.
pub fn drive(
    fleet: &mut Fleet,
    jobs: Vec<JobSpec>,
    max_ticks: u64,
) -> Result<DriveOutcome, String> {
    let mut pending: VecDeque<JobSpec> = jobs.into();
    let mut rejected = Vec::new();
    let start = fleet.tick_count();
    loop {
        while let Some(spec) = pending.pop_front() {
            match fleet.submit(spec.clone()) {
                Ok(()) => {}
                Err(Rejected::QueueFull { .. }) | Err(Rejected::NoAdmittingDevice) => {
                    pending.push_front(spec);
                    break;
                }
                Err(r) => rejected.push((spec, r)),
            }
        }
        if pending.is_empty() && fleet.idle() {
            return Ok(DriveOutcome {
                ticks: fleet.tick_count() - start,
                rejected,
            });
        }
        if fleet.tick_count() - start >= max_ticks {
            return Err(format!(
                "fleet did not drain within {max_ticks} ticks ({} in flight, {} unsubmitted)",
                fleet.in_flight(),
                pending.len()
            ));
        }
        fleet.tick();
    }
}
