//! Jobs: what tenants submit, why submissions are rejected, and what a
//! finished job returns.

use crate::backend::Backend;
use crate::checkpoint::Checkpoint;
use crate::config::{ConfigError, SimConfig};
use gpu_sim::fault::DeviceError;
use std::fmt;

/// One simulation job submitted to the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen stable id (also the scheduler's decision key).
    pub id: u64,
    /// Tenant the job bills its device-memory budget against.
    pub tenant: String,
    /// The simulation to run. The fleet overrides the per-device recovery
    /// knobs (capacity, watchdog) at assignment time and forces
    /// `FallbackToCpu` so no admitted job can be lost to a device fault.
    pub config: SimConfig,
    /// Total steps the job must reach.
    pub steps: u64,
}

impl JobSpec {
    /// Device bytes one frame of this job holds resident at full residency —
    /// the quantity admission bills against the tenant budget. CPU-only
    /// backends hold no device memory.
    pub fn device_cost(&self) -> u64 {
        match self.config.backend {
            Backend::GpuSim { level, .. } => {
                crate::backend::frame_memory_budget(level, self.config.n as u32)
            }
            _ => 0,
        }
    }
}

/// Typed admission rejection: every refused submission says exactly why,
/// before any device memory is touched.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejected {
    /// Every admitting device's queue is at capacity.
    QueueFull {
        /// The per-device queue bound that was hit.
        capacity: usize,
    },
    /// The tenant's device-memory budget cannot cover the job.
    TenantBudget {
        /// The tenant that is over budget.
        tenant: String,
        /// The typed out-of-memory produced by the rejected reservation.
        error: DeviceError,
    },
    /// The job's simulation config failed validation.
    InvalidConfig(ConfigError),
    /// No device in the pool is currently admitting (all quarantined).
    NoAdmittingDevice,
}

impl Rejected {
    /// Short machine-stable label (event logs, metrics).
    pub fn label(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue-full",
            Rejected::TenantBudget { .. } => "tenant-budget",
            Rejected::InvalidConfig(_) => "invalid-config",
            Rejected::NoAdmittingDevice => "no-admitting-device",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(
                    f,
                    "rejected: every admitting queue is full (bound {capacity})"
                )
            }
            Rejected::TenantBudget { tenant, error } => {
                write!(f, "rejected: tenant {tenant} over budget: {error}")
            }
            Rejected::InvalidConfig(e) => write!(f, "rejected: invalid config: {e}"),
            Rejected::NoAdmittingDevice => {
                write!(f, "rejected: no admitting device (pool quarantined)")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// A finished job: its final state plus where it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    /// The job id.
    pub id: u64,
    /// The billing tenant.
    pub tenant: String,
    /// Complete final state (positions, velocities, clock, fault log) —
    /// bitwise comparable against a single-device fault-free reference.
    pub final_state: Checkpoint,
    /// Every device that hosted a slice, in order (repeats elided).
    pub devices: Vec<usize>,
    /// Checkpoint-backed migrations the job survived.
    pub migrations: u32,
    /// Tick the job completed at.
    pub completed_tick: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_kernels::force::OptLevel;
    use gpu_sim::DriverModel;

    #[test]
    fn gpu_jobs_bill_their_frame_budget_cpu_jobs_are_free() {
        let gpu = JobSpec {
            id: 1,
            tenant: "a".into(),
            config: SimConfig {
                n: 256,
                backend: Backend::GpuSim {
                    level: OptLevel::Full,
                    driver: DriverModel::Cuda10,
                },
                ..SimConfig::default()
            },
            steps: 4,
        };
        assert_eq!(
            gpu.device_cost(),
            crate::backend::frame_memory_budget(OptLevel::Full, 256)
        );
        let cpu = JobSpec {
            config: SimConfig {
                backend: Backend::CpuParallel,
                ..gpu.config.clone()
            },
            ..gpu
        };
        assert_eq!(cpu.device_cost(), 0);
    }

    #[test]
    fn rejections_render_their_reason() {
        let r = Rejected::QueueFull { capacity: 4 };
        assert_eq!(r.label(), "queue-full");
        assert!(r.to_string().contains("bound 4"));
        let r = Rejected::InvalidConfig(ConfigError::BadTimeStep { dt: 0.0 });
        assert!(r.to_string().contains("time step"));
        assert_eq!(Rejected::NoAdmittingDevice.label(), "no-admitting-device");
    }
}
