//! The deterministic seeded scheduler.
//!
//! Every scheduling decision that is not forced by structure (FIFO queues,
//! ascending device order) is a pure function of `(seed, job_id, tick)` —
//! the same stateless idiom as `gpu_sim::transient::TransientFaultPlan::fate_of`.
//! Two fleet runs with the same seed, jobs and pool make identical decisions
//! at identical ticks regardless of wall clock or thread interleaving, which
//! is what makes a whole-fleet chaos campaign replayable.

use simcore::{Rng64, SplitMix64};

/// Domain separators so the placement and preemption draws of the same
/// `(job, tick)` are independent streams.
const PLACE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const PREEMPT_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// Seeded scheduling decisions for one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulePlan {
    seed: u64,
    /// Per-slice probability that a running job is preempted at the slice
    /// boundary (checkpointed and re-queued, possibly on another device).
    preempt_rate: f64,
}

impl SchedulePlan {
    /// A plan drawing preemptions at `preempt_rate` per slice.
    pub fn new(seed: u64, preempt_rate: f64) -> SchedulePlan {
        SchedulePlan {
            seed,
            preempt_rate: preempt_rate.clamp(0.0, 1.0),
        }
    }

    /// The configured per-slice preemption probability.
    pub fn preempt_rate(&self) -> f64 {
        self.preempt_rate
    }

    fn draw(&self, salt: u64, job_id: u64, tick: u64) -> SplitMix64 {
        SplitMix64::new(
            self.seed ^ salt ^ SplitMix64::mix(job_id).wrapping_add(SplitMix64::mix(tick)),
        )
    }

    /// Placement draw: which of `candidates` admitting devices receives the
    /// job submitted at `tick`. Pure in `(seed, job_id, tick)`.
    pub fn place(&self, job_id: u64, tick: u64, candidates: usize) -> usize {
        debug_assert!(candidates > 0);
        let mut rng = self.draw(PLACE_SALT, job_id, tick);
        (rng.next_u64() % candidates.max(1) as u64) as usize
    }

    /// Preemption draw: whether the job running at this slice boundary is
    /// checkpointed and re-queued. Pure in `(seed, job_id, tick)`.
    pub fn preempts(&self, job_id: u64, tick: u64) -> bool {
        if self.preempt_rate <= 0.0 {
            return false;
        }
        let mut rng = self.draw(PREEMPT_SALT, job_id, tick);
        rng.next_f64() < self.preempt_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_replay_bit_for_bit() {
        let a = SchedulePlan::new(42, 0.3);
        let b = SchedulePlan::new(42, 0.3);
        for job in 0..40u64 {
            for tick in 0..40u64 {
                assert_eq!(a.preempts(job, tick), b.preempts(job, tick));
                assert_eq!(a.place(job, tick, 5), b.place(job, tick, 5));
            }
        }
    }

    #[test]
    fn decisions_are_stateless() {
        let p = SchedulePlan::new(9, 0.5);
        let first = p.preempts(3, 17);
        // Unrelated draws in between must not perturb the (job, tick) fate.
        for job in 0..100u64 {
            p.preempts(job, 0);
            p.place(job, 1, 3);
        }
        assert_eq!(p.preempts(3, 17), first);
    }

    #[test]
    fn preempt_rate_is_roughly_honored() {
        let p = SchedulePlan::new(7, 0.25);
        let n = 4000;
        let hits = (0..n).filter(|&k| p.preempts(k, k * 31)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.05, "{frac}");
    }

    #[test]
    fn zero_rate_never_preempts_and_placement_covers_candidates() {
        let p = SchedulePlan::new(1, 0.0);
        assert!((0..500u64).all(|k| !p.preempts(k, k)));
        let q = SchedulePlan::new(1, 2.0);
        assert_eq!(q.preempt_rate(), 1.0, "rate is clamped");
        let mut seen = [false; 4];
        for job in 0..200u64 {
            seen[q.place(job, 0, 4)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all candidates reachable: {seen:?}"
        );
    }
}
