//! Per-device health: a pure state machine over slice outcomes.
//!
//! ```text
//!             strikes ≥ threshold                 quarantine_ticks elapsed
//!   Healthy ──────────────────────► Quarantined ─────────────────────────► Probation
//!      ▲  │ strike                        ▲                                   │   │
//!      │  ▼                               │ any strike                        │   │
//!   Suspect{strikes} ─────────────────────┘◄──────────────────────────────────┘   │
//!      ▲    (accumulate; clean slices decay)                                      │
//!      └──────────────────────────────────────────────────────────────────────────┘
//!                         probation_slices clean slices
//! ```
//!
//! A *strike* is one scheduling slice in which the device produced a
//! transient fault (`FaultKind::is_transient`) or a watchdog kill — the
//! signals the ROADMAP says must become scheduling signals. Memory-pressure
//! degradations are **not** strikes: an undersized device that plans every
//! frame down the ladder is poor, not sick, and quarantining it would thrash
//! the pool for a condition retries cannot clear.
//!
//! Transitions are a pure function of `(state, policy, strikes, tick)` — no
//! clocks, no randomness — so a fleet run replays its exact health history
//! from the event log.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Health state of one pool device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// Admitting and running jobs normally.
    Healthy,
    /// Transient faults observed; still admitting, strikes accumulating.
    Suspect {
        /// Faulty slices observed since the device was last healthy.
        strikes: u32,
    },
    /// Drained and not admitting; sits out `quarantine_ticks`.
    Quarantined {
        /// Tick the quarantine began.
        since: u64,
    },
    /// Back from quarantine; admitting, but one strike re-quarantines.
    Probation {
        /// Consecutive clean slices served on probation so far.
        healthy_slices: u32,
    },
}

impl Health {
    /// Whether the device may be assigned jobs in this state.
    pub fn admits(&self) -> bool {
        !matches!(self, Health::Quarantined { .. })
    }

    /// Short label for events and reports.
    pub fn label(&self) -> String {
        match self {
            Health::Healthy => "healthy".into(),
            Health::Suspect { strikes } => format!("suspect(strikes={strikes})"),
            Health::Quarantined { since } => format!("quarantined(since={since})"),
            Health::Probation { healthy_slices } => {
                format!("probation(clean={healthy_slices})")
            }
        }
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Thresholds driving the health machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Strikes that tip Suspect into Quarantined.
    pub suspect_threshold: u32,
    /// Ticks a quarantined device sits out before Probation.
    pub quarantine_ticks: u64,
    /// Clean probation slices required to return to Healthy.
    pub probation_slices: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_threshold: 3,
            quarantine_ticks: 4,
            probation_slices: 2,
        }
    }
}

/// Advance a device's health after one scheduling slice in which it served
/// `strikes` faulty slices-worth of transient trouble (0 = clean). Pure:
/// the caller supplies the tick. Quarantine release is *not* handled here —
/// see [`release_quarantine`] — because a quarantined device serves no
/// slices.
pub fn after_slice(state: Health, policy: &HealthPolicy, strikes: u32, tick: u64) -> Health {
    match state {
        Health::Healthy => {
            if strikes == 0 {
                Health::Healthy
            } else if strikes >= policy.suspect_threshold {
                Health::Quarantined { since: tick }
            } else {
                Health::Suspect { strikes }
            }
        }
        Health::Suspect { strikes: had } => {
            if strikes == 0 {
                // Clean slices decay strikes one by one: a device with a
                // brief bad patch earns its way back without a quarantine.
                match had.saturating_sub(1) {
                    0 => Health::Healthy,
                    rest => Health::Suspect { strikes: rest },
                }
            } else {
                let total = had.saturating_add(strikes);
                if total >= policy.suspect_threshold {
                    Health::Quarantined { since: tick }
                } else {
                    Health::Suspect { strikes: total }
                }
            }
        }
        // A quarantined device hosts no slices; state is unchanged.
        Health::Quarantined { .. } => state,
        Health::Probation { healthy_slices } => {
            if strikes > 0 {
                // Probation has zero tolerance: straight back.
                Health::Quarantined { since: tick }
            } else {
                let clean = healthy_slices + 1;
                if clean >= policy.probation_slices {
                    Health::Healthy
                } else {
                    Health::Probation {
                        healthy_slices: clean,
                    }
                }
            }
        }
    }
}

/// Release a quarantine whose sit-out period has elapsed. Returns the new
/// state (Probation) or the unchanged input.
pub fn release_quarantine(state: Health, policy: &HealthPolicy, tick: u64) -> Health {
    match state {
        Health::Quarantined { since } if tick.saturating_sub(since) >= policy.quarantine_ticks => {
            Health::Probation { healthy_slices: 0 }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: HealthPolicy = HealthPolicy {
        suspect_threshold: 3,
        quarantine_ticks: 4,
        probation_slices: 2,
    };

    #[test]
    fn clean_devices_stay_healthy() {
        let mut h = Health::Healthy;
        for t in 0..10 {
            h = after_slice(h, &P, 0, t);
        }
        assert_eq!(h, Health::Healthy);
    }

    #[test]
    fn strikes_accumulate_to_quarantine() {
        let h = after_slice(Health::Healthy, &P, 1, 0);
        assert_eq!(h, Health::Suspect { strikes: 1 });
        let h = after_slice(h, &P, 1, 1);
        assert_eq!(h, Health::Suspect { strikes: 2 });
        let h = after_slice(h, &P, 1, 2);
        assert_eq!(h, Health::Quarantined { since: 2 });
        assert!(!h.admits());
    }

    #[test]
    fn a_burst_quarantines_in_one_slice() {
        assert_eq!(
            after_slice(Health::Healthy, &P, 3, 7),
            Health::Quarantined { since: 7 }
        );
    }

    #[test]
    fn clean_slices_decay_strikes() {
        let h = Health::Suspect { strikes: 2 };
        let h = after_slice(h, &P, 0, 5);
        assert_eq!(h, Health::Suspect { strikes: 1 });
        let h = after_slice(h, &P, 0, 6);
        assert_eq!(h, Health::Healthy);
    }

    #[test]
    fn quarantine_releases_to_probation_after_sitout() {
        let q = Health::Quarantined { since: 10 };
        assert_eq!(release_quarantine(q, &P, 13), q, "not yet");
        assert_eq!(
            release_quarantine(q, &P, 14),
            Health::Probation { healthy_slices: 0 }
        );
    }

    #[test]
    fn probation_has_zero_tolerance() {
        let p = Health::Probation { healthy_slices: 1 };
        assert_eq!(after_slice(p, &P, 1, 20), Health::Quarantined { since: 20 });
    }

    #[test]
    fn probation_graduates_to_healthy() {
        let p = Health::Probation { healthy_slices: 0 };
        let p = after_slice(p, &P, 0, 1);
        assert_eq!(p, Health::Probation { healthy_slices: 1 });
        assert!(p.admits());
        assert_eq!(after_slice(p, &P, 0, 2), Health::Healthy);
    }

    #[test]
    fn labels_are_readable() {
        assert_eq!(Health::Healthy.label(), "healthy");
        assert_eq!(Health::Suspect { strikes: 2 }.label(), "suspect(strikes=2)");
        assert!(Health::Quarantined { since: 3 }
            .to_string()
            .contains("quarantined"));
    }
}
