//! Force-calculation backends.
//!
//! The paper's Sec. I-C/I-D landscape, as selectable engines:
//!
//! * [`Backend::CpuSerial`] — the original O(n²) loop (the 87× baseline);
//! * [`Backend::CpuParallel`] — the same, Rayon-parallel (a fair multi-core
//!   comparator the paper didn't have);
//! * [`Backend::BarnesHut`] — Gravit's O(n log n) tree code;
//! * [`Backend::GpuSim`] — the tiled CUDA kernel at a chosen optimization
//!   level, *functionally executed* on the simulated GPU. Physics results
//!   are bit-identical to `CpuSerial`; wall-clock is that of the simulator,
//!   so use [`modeled_frame_seconds`](Backend::modeled_frame_seconds) for
//!   device-time questions (that is what Fig. 12 reports).

use gpu_kernels::force::{build_force_kernel, force_params, OptLevel};
use gpu_sim::exec::functional::run_grid;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::DriverModel;
use nbody::barnes_hut::accelerations_bh;
use nbody::direct::{accelerations, accelerations_par};
use nbody::model::{Bodies, ForceParams};
use particle_layouts::device::{alloc_accel_out, download_accels};
use particle_layouts::{DeviceImage, Particle};
use simcore::Vec3;

/// A force backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Serial O(n²) on the CPU.
    CpuSerial,
    /// Rayon-parallel O(n²) on the CPU.
    CpuParallel,
    /// Barnes–Hut tree code with opening angle θ.
    BarnesHut {
        /// Opening angle (0.3–1.0 typical; smaller = more accurate).
        theta: f32,
    },
    /// The simulated-GPU tiled kernel at an optimization level.
    GpuSim {
        /// Optimization level (layout/unroll/ICM/block).
        level: OptLevel,
        /// Driver revision for the timing model.
        driver: DriverModel,
    },
}

impl Backend {
    /// Short name for reports.
    pub fn label(&self) -> String {
        match self {
            Backend::CpuSerial => "cpu-serial".into(),
            Backend::CpuParallel => "cpu-parallel".into(),
            Backend::BarnesHut { theta } => format!("barnes-hut(θ={theta})"),
            Backend::GpuSim { level, .. } => format!("gpu-sim[{}]", level.label()),
        }
    }

    /// Compute accelerations for the bodies.
    pub fn accelerations(&self, bodies: &Bodies, fp: &ForceParams) -> Vec<Vec3> {
        match self {
            Backend::CpuSerial => accelerations(bodies, fp),
            Backend::CpuParallel => accelerations_par(bodies, fp),
            Backend::BarnesHut { theta } => accelerations_bh(bodies, fp, *theta),
            Backend::GpuSim { level, .. } => gpu_accelerations(bodies, fp, *level),
        }
    }

    /// The modeled wall-clock seconds one frame of this backend would take on
    /// the 8800 GTX (GPU backends only; `None` otherwise). This is the
    /// quantity Fig. 12 plots.
    pub fn modeled_frame_seconds(&self, n: u32) -> Option<f64> {
        match self {
            Backend::GpuSim { level, driver } => {
                Some(crate::model::model_frame(*level, n, *driver).total_s())
            }
            _ => None,
        }
    }
}

/// Run the force kernel functionally on the simulated device.
fn gpu_accelerations(bodies: &Bodies, fp: &ForceParams, level: OptLevel) -> Vec<Vec3> {
    let cfg = level.config();
    let kernel = build_force_kernel(cfg);
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle {
            pos: bodies.pos[i],
            vel: bodies.vel[i],
            // The kernels consume G-premultiplied masses (see gpu-kernels).
            mass: fp.g * bodies.mass[i],
        })
        .collect();
    // Memory budget: layout buffers + float4 output, with headroom.
    let padded = (bodies.len() as u32).div_ceil(cfg.block) * cfg.block;
    let bytes = (padded as u64 * 64 + (1 << 20)).next_power_of_two();
    let mut gmem = GlobalMemory::new(bytes);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block);
    let out = alloc_accel_out(&mut gmem, img.padded_n);
    let params = force_params(&img, out, fp.softening);
    let grid = img.padded_n / cfg.block;
    run_grid(&kernel, grid, cfg.block, &params, &mut gmem);
    download_accels(&gmem, out, img.n)
}


/// Run `steps` device-resident Euler steps: upload once, alternate the force
/// and integration kernels on the simulated device, download once — the full
/// port shape of the paper's Gravit (state stays on the GPU across a frame).
///
/// Bit-identical to `steps` iterations of `accelerations` + host
/// `step_euler` (the integration kernel mirrors the host operation order).
pub fn run_device_resident(
    bodies: &Bodies,
    fp: &ForceParams,
    dt: f32,
    steps: u32,
    level: OptLevel,
) -> Bodies {
    use gpu_kernels::integrate::{build_integrate_kernel, integrate_params};
    let cfg = level.config();
    let force_k = build_force_kernel(cfg);
    let integ_k = build_integrate_kernel(cfg.layout);
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle { pos: bodies.pos[i], vel: bodies.vel[i], mass: fp.g * bodies.mass[i] })
        .collect();
    let padded = (bodies.len() as u32).div_ceil(cfg.block) * cfg.block;
    let bytes = (padded as u64 * 80 + (1 << 20)).next_power_of_two();
    let mut gmem = GlobalMemory::new(bytes);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block);
    let acc = alloc_accel_out(&mut gmem, img.padded_n);
    let grid = img.padded_n / cfg.block;
    let fparams = force_params(&img, acc, fp.softening);
    let iparams = integrate_params(&img, acc, dt);
    for _ in 0..steps {
        run_grid(&force_k, grid, cfg.block, &fparams, &mut gmem);
        run_grid(&integ_k, grid, cfg.block, &iparams, &mut gmem);
    }
    let out = img.read_all(&gmem);
    let mut result = Bodies::with_capacity(bodies.len());
    for (i, p) in out.into_iter().enumerate() {
        // Masses were pre-scaled by G for the kernels; restore the originals
        // (they are unchanged on device, so this avoids a divide round trip).
        result.push(p.pos, p.vel, bodies.mass[i]);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::spawn;

    #[test]
    fn all_backends_agree_on_physics() {
        let bodies = spawn::uniform_ball(300, 5.0, 2.0, 11);
        let fp = ForceParams::default();
        let reference = Backend::CpuSerial.accelerations(&bodies, &fp);
        // Parallel and GPU are bit-identical.
        let par = Backend::CpuParallel.accelerations(&bodies, &fp);
        assert_eq!(reference, par);
        let gpu = Backend::GpuSim { level: OptLevel::Full, driver: DriverModel::Cuda10 }
            .accelerations(&bodies, &fp);
        assert_eq!(reference, gpu, "GPU functional execution must match CPU bitwise");
        // Barnes-Hut is approximate.
        let bh = Backend::BarnesHut { theta: 0.4 }.accelerations(&bodies, &fp);
        for i in 0..bodies.len() {
            let err = (bh[i] - reference[i]).norm() / reference[i].norm().max(1e-9);
            assert!(err < 0.05, "body {i} err {err}");
        }
    }

    #[test]
    fn only_gpu_backends_have_a_frame_model() {
        assert!(Backend::CpuSerial.modeled_frame_seconds(1000).is_none());
        let t = Backend::GpuSim { level: OptLevel::SoAoaS, driver: DriverModel::Cuda10 }
            .modeled_frame_seconds(40_000)
            .unwrap();
        assert!(t > 0.0 && t < 10.0, "modeled frame {t}s out of plausible range");
    }


    #[test]
    fn device_resident_loop_matches_host_euler_bitwise() {
        use nbody::integrator::step_euler;
        let fp = ForceParams { g: 1.0, softening: 0.05 };
        let dt = 0.01f32;
        let steps = 4u32;
        let bodies0 = spawn::disk_galaxy(200, 4.0, 1.0, fp.g, 21);

        // Host loop: acc at current positions, then Euler, repeated.
        let mut host = bodies0.clone();
        for _ in 0..steps {
            let acc = Backend::CpuSerial.accelerations(&host, &fp);
            step_euler(&mut host, &acc, dt, None);
        }

        let dev = run_device_resident(&bodies0, &fp, dt, steps, OptLevel::Full);
        assert_eq!(host, dev, "device-resident trajectory must match the host");
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Backend::CpuSerial.label(), "cpu-serial");
        assert!(Backend::BarnesHut { theta: 0.5 }.label().contains("0.5"));
        assert!(Backend::GpuSim { level: OptLevel::Full, driver: DriverModel::Cuda22 }
            .label()
            .contains("SoAoaS"));
    }
}
