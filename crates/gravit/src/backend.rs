//! Force-calculation backends.
//!
//! The paper's Sec. I-C/I-D landscape, as selectable engines:
//!
//! * [`Backend::CpuSerial`] — the original O(n²) loop (the 87× baseline);
//! * [`Backend::CpuParallel`] — the same, Rayon-parallel (a fair multi-core
//!   comparator the paper didn't have);
//! * [`Backend::BarnesHut`] — Gravit's O(n log n) tree code;
//! * [`Backend::GpuSim`] — the tiled CUDA kernel at a chosen optimization
//!   level, *functionally executed* on the simulated GPU. Physics results
//!   are bit-identical to `CpuSerial`; wall-clock is that of the simulator,
//!   so use [`modeled_frame_seconds`](Backend::modeled_frame_seconds) for
//!   device-time questions (that is what Fig. 12 reports).
//!
//! # Fault handling
//!
//! The simulated device detects out-of-bounds, misaligned, uninitialized and
//! out-of-memory accesses (see `gpu_sim::fault`). A [`FaultPolicy`] decides
//! what a device fault means at the application layer:
//!
//! * [`FaultPolicy::FailFast`] — propagate the typed [`DeviceError`] to the
//!   caller (CI, debugging: you want the fault coordinates, not a rescue);
//! * [`FaultPolicy::FallbackToCpu`] — log a [`FaultReport`] and recompute the
//!   frame on [`Backend::CpuParallel`], which is bit-identical physics to the
//!   GPU path, so a degraded run produces the same trajectory.

use gpu_kernels::force::{build_force_kernel, force_params, OptLevel};
use gpu_sim::exec::functional::{run_grid, run_grid_injected};
use gpu_sim::fault::{DeviceError, DeviceResult, FaultPlan};
use gpu_sim::mem::GlobalMemory;
use gpu_sim::DriverModel;
use nbody::barnes_hut::accelerations_bh;
use nbody::direct::{accelerations, accelerations_par};
use nbody::model::{Bodies, ForceParams};
use particle_layouts::device::{alloc_accel_out, download_accels};
use particle_layouts::{DeviceImage, Particle};
use simcore::Vec3;

/// A force backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Serial O(n²) on the CPU.
    CpuSerial,
    /// Rayon-parallel O(n²) on the CPU.
    CpuParallel,
    /// Barnes–Hut tree code with opening angle θ.
    BarnesHut {
        /// Opening angle (0.3–1.0 typical; smaller = more accurate).
        theta: f32,
    },
    /// The simulated-GPU tiled kernel at an optimization level.
    GpuSim {
        /// Optimization level (layout/unroll/ICM/block).
        level: OptLevel,
        /// Driver revision for the timing model.
        driver: DriverModel,
    },
}

/// What to do when the simulated device reports a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Propagate the typed error to the caller immediately.
    FailFast,
    /// Emit a [`FaultReport`] and recompute the frame on the parallel CPU
    /// backend (bit-identical physics, so the trajectory is unaffected).
    #[default]
    FallbackToCpu,
}

/// Structured record of a device fault and how the run recovered.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The device error, with kernel/block/thread/instruction coordinates.
    pub error: DeviceError,
    /// Label of the backend that faulted.
    pub degraded_from: String,
    /// Label of the backend that took over.
    pub degraded_to: String,
}

impl FaultReport {
    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        format!(
            "{}\n  recovery: degraded {} -> {}",
            self.error.report(),
            self.degraded_from,
            self.degraded_to
        )
    }
}

/// Accelerations plus the fault (if any) survived along the way.
#[derive(Debug, Clone)]
pub struct ForceResult {
    /// Per-body accelerations.
    pub accels: Vec<Vec3>,
    /// Present iff the device faulted and the CPU fallback produced `accels`.
    pub fault: Option<FaultReport>,
}

impl Backend {
    /// Short name for reports.
    pub fn label(&self) -> String {
        match self {
            Backend::CpuSerial => "cpu-serial".into(),
            Backend::CpuParallel => "cpu-parallel".into(),
            Backend::BarnesHut { theta } => format!("barnes-hut(θ={theta})"),
            Backend::GpuSim { level, .. } => format!("gpu-sim[{}]", level.label()),
        }
    }

    /// Compute accelerations, recovering from device faults via the CPU
    /// fallback (i.e. [`FaultPolicy::FallbackToCpu`], report discarded).
    pub fn accelerations(&self, bodies: &Bodies, fp: &ForceParams) -> Vec<Vec3> {
        self.accelerations_with_policy(bodies, fp, FaultPolicy::FallbackToCpu)
            .map(|r| r.accels)
            // The fallback path cannot itself fault; this arm is unreachable.
            .unwrap_or_else(|_| accelerations_par(bodies, fp))
    }

    /// Compute accelerations, propagating any device fault as a typed error.
    pub fn try_accelerations(&self, bodies: &Bodies, fp: &ForceParams) -> DeviceResult<Vec<Vec3>> {
        self.accelerations_with_policy(bodies, fp, FaultPolicy::FailFast).map(|r| r.accels)
    }

    /// Compute accelerations under an explicit fault policy.
    pub fn accelerations_with_policy(
        &self,
        bodies: &Bodies,
        fp: &ForceParams,
        policy: FaultPolicy,
    ) -> DeviceResult<ForceResult> {
        self.accelerations_with_policy_injected(bodies, fp, policy, None)
    }

    /// [`accelerations_with_policy`](Self::accelerations_with_policy) with an
    /// optional fault-injection plan threaded into the GPU backend — the test
    /// hook proving detection and recovery work end to end.
    pub fn accelerations_with_policy_injected(
        &self,
        bodies: &Bodies,
        fp: &ForceParams,
        policy: FaultPolicy,
        plan: Option<&FaultPlan>,
    ) -> DeviceResult<ForceResult> {
        if bodies.is_empty() {
            return Ok(ForceResult { accels: Vec::new(), fault: None });
        }
        let accels = match self {
            Backend::CpuSerial => accelerations(bodies, fp),
            Backend::CpuParallel => accelerations_par(bodies, fp),
            Backend::BarnesHut { theta } => accelerations_bh(bodies, fp, *theta),
            Backend::GpuSim { level, .. } => match gpu_accelerations(bodies, fp, *level, plan) {
                Ok(a) => a,
                Err(error) => match policy {
                    FaultPolicy::FailFast => return Err(error),
                    FaultPolicy::FallbackToCpu => {
                        let fallback = Backend::CpuParallel;
                        let accels = accelerations_par(bodies, fp);
                        return Ok(ForceResult {
                            accels,
                            fault: Some(FaultReport {
                                error,
                                degraded_from: self.label(),
                                degraded_to: fallback.label(),
                            }),
                        });
                    }
                },
            },
        };
        Ok(ForceResult { accels, fault: None })
    }

    /// The modeled wall-clock seconds one frame of this backend would take on
    /// the 8800 GTX (GPU backends only; `None` otherwise). This is the
    /// quantity Fig. 12 plots.
    pub fn modeled_frame_seconds(&self, n: u32) -> Option<f64> {
        match self {
            Backend::GpuSim { level, driver } => {
                Some(crate::model::model_frame(*level, n, *driver).total_s())
            }
            _ => None,
        }
    }
}

/// Exact device-memory budget of one GPU force frame: the layout's particle
/// buffers plus the `float4` acceleration output, with the allocator's
/// alignment and redzone overhead included.
pub fn frame_memory_budget(level: OptLevel, n: u32) -> u64 {
    let cfg = level.config();
    let padded = n.div_ceil(cfg.block) * cfg.block;
    let mut sizes = DeviceImage::alloc_sizes(cfg.layout, n, cfg.block);
    sizes.push(padded as u64 * 16);
    GlobalMemory::footprint(&sizes)
}

/// Run the force kernel functionally on the simulated device. An empty body
/// set is a valid no-op frame. `plan` optionally injects address faults.
fn gpu_accelerations(
    bodies: &Bodies,
    fp: &ForceParams,
    level: OptLevel,
    plan: Option<&FaultPlan>,
) -> DeviceResult<Vec<Vec3>> {
    if bodies.is_empty() {
        return Ok(Vec::new());
    }
    let cfg = level.config();
    let kernel = build_force_kernel(cfg);
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle {
            pos: bodies.pos[i],
            vel: bodies.vel[i],
            // The kernels consume G-premultiplied masses (see gpu-kernels).
            mass: fp.g * bodies.mass[i],
        })
        .collect();
    // Memory budget: the exact footprint of the layout buffers + the float4
    // output under the device allocator (alignment + redzones), not a guess.
    let budget = frame_memory_budget(level, bodies.len() as u32);
    let mut gmem = GlobalMemory::new(budget);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)?;
    let out = alloc_accel_out(&mut gmem, img.padded_n)?;
    debug_assert_eq!(
        gmem.allocated(),
        budget,
        "frame_memory_budget must predict the allocator exactly"
    );
    let params = force_params(&img, out, fp.softening);
    let grid = img.padded_n / cfg.block;
    match plan {
        Some(p) => run_grid_injected(&kernel, grid, cfg.block, &params, &mut gmem, p)?,
        None => run_grid(&kernel, grid, cfg.block, &params, &mut gmem)?,
    };
    download_accels(&gmem, out, img.n)
}

/// Run `steps` device-resident Euler steps: upload once, alternate the force
/// and integration kernels on the simulated device, download once — the full
/// port shape of the paper's Gravit (state stays on the GPU across a frame).
///
/// Bit-identical to `steps` iterations of `accelerations` + host
/// `step_euler` (the integration kernel mirrors the host operation order).
pub fn run_device_resident(
    bodies: &Bodies,
    fp: &ForceParams,
    dt: f32,
    steps: u32,
    level: OptLevel,
) -> DeviceResult<Bodies> {
    use gpu_kernels::integrate::{build_integrate_kernel, integrate_params};
    if bodies.is_empty() {
        return Ok(Bodies::default());
    }
    let cfg = level.config();
    let force_k = build_force_kernel(cfg);
    let integ_k = build_integrate_kernel(cfg.layout);
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle { pos: bodies.pos[i], vel: bodies.vel[i], mass: fp.g * bodies.mass[i] })
        .collect();
    let budget = frame_memory_budget(level, bodies.len() as u32);
    let mut gmem = GlobalMemory::new(budget);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)?;
    let acc = alloc_accel_out(&mut gmem, img.padded_n)?;
    debug_assert_eq!(gmem.allocated(), budget, "resident-loop budget must be exact");
    let grid = img.padded_n / cfg.block;
    let fparams = force_params(&img, acc, fp.softening);
    let iparams = integrate_params(&img, acc, dt);
    for _ in 0..steps {
        run_grid(&force_k, grid, cfg.block, &fparams, &mut gmem)?;
        run_grid(&integ_k, grid, cfg.block, &iparams, &mut gmem)?;
    }
    let out = img.read_all(&gmem)?;
    let mut result = Bodies::with_capacity(bodies.len());
    for (i, p) in out.into_iter().enumerate() {
        // Masses were pre-scaled by G for the kernels; restore the originals
        // (they are unchanged on device, so this avoids a divide round trip).
        result.push(p.pos, p.vel, bodies.mass[i]);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::fault::{FaultKind, Mutation};
    use nbody::spawn;

    #[test]
    fn all_backends_agree_on_physics() {
        let bodies = spawn::uniform_ball(300, 5.0, 2.0, 11);
        let fp = ForceParams::default();
        let reference = Backend::CpuSerial.accelerations(&bodies, &fp);
        // Parallel and GPU are bit-identical.
        let par = Backend::CpuParallel.accelerations(&bodies, &fp);
        assert_eq!(reference, par);
        let gpu = Backend::GpuSim { level: OptLevel::Full, driver: DriverModel::Cuda10 }
            .accelerations(&bodies, &fp);
        assert_eq!(reference, gpu, "GPU functional execution must match CPU bitwise");
        // Barnes-Hut is approximate.
        let bh = Backend::BarnesHut { theta: 0.4 }.accelerations(&bodies, &fp);
        for i in 0..bodies.len() {
            let err = (bh[i] - reference[i]).norm() / reference[i].norm().max(1e-9);
            assert!(err < 0.05, "body {i} err {err}");
        }
    }

    #[test]
    fn only_gpu_backends_have_a_frame_model() {
        assert!(Backend::CpuSerial.modeled_frame_seconds(1000).is_none());
        let t = Backend::GpuSim { level: OptLevel::SoAoaS, driver: DriverModel::Cuda10 }
            .modeled_frame_seconds(40_000)
            .unwrap();
        assert!(t > 0.0 && t < 10.0, "modeled frame {t}s out of plausible range");
    }

    #[test]
    fn device_resident_loop_matches_host_euler_bitwise() {
        use nbody::integrator::step_euler;
        let fp = ForceParams { g: 1.0, softening: 0.05 };
        let dt = 0.01f32;
        let steps = 4u32;
        let bodies0 = spawn::disk_galaxy(200, 4.0, 1.0, fp.g, 21);

        // Host loop: acc at current positions, then Euler, repeated.
        let mut host = bodies0.clone();
        for _ in 0..steps {
            let acc = Backend::CpuSerial.accelerations(&host, &fp);
            step_euler(&mut host, &acc, dt, None);
        }

        let dev = run_device_resident(&bodies0, &fp, dt, steps, OptLevel::Full).unwrap();
        assert_eq!(host, dev, "device-resident trajectory must match the host");
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Backend::CpuSerial.label(), "cpu-serial");
        assert!(Backend::BarnesHut { theta: 0.5 }.label().contains("0.5"));
        assert!(Backend::GpuSim { level: OptLevel::Full, driver: DriverModel::Cuda22 }
            .label()
            .contains("SoAoaS"));
    }

    #[test]
    fn empty_body_set_is_a_noop_for_every_backend() {
        let bodies = Bodies::default();
        let fp = ForceParams::default();
        for backend in [
            Backend::CpuSerial,
            Backend::CpuParallel,
            Backend::BarnesHut { theta: 0.5 },
            Backend::GpuSim { level: OptLevel::Full, driver: DriverModel::Cuda10 },
        ] {
            assert!(backend.accelerations(&bodies, &fp).is_empty(), "{}", backend.label());
            assert!(backend.try_accelerations(&bodies, &fp).unwrap().is_empty());
        }
        assert_eq!(
            run_device_resident(&bodies, &fp, 0.01, 3, OptLevel::Full).unwrap().len(),
            0
        );
    }

    fn gpu() -> Backend {
        Backend::GpuSim { level: OptLevel::Full, driver: DriverModel::Cuda10 }
    }

    /// A plan that redirects one lane's global accesses far out of bounds
    /// (keeping 16-byte alignment so the class is OutOfBounds, not
    /// Misaligned).
    fn oob_plan() -> FaultPlan {
        FaultPlan::at_thread(0, 7, Mutation::SetAddr(1 << 40))
    }

    #[test]
    fn injected_fault_fails_fast_with_coordinates() {
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        let err = gpu()
            .accelerations_with_policy_injected(&bodies, &fp, FaultPolicy::FailFast, Some(&oob_plan()))
            .unwrap_err();
        assert!(matches!(err.kind, FaultKind::OutOfBounds { .. }), "got {:?}", err.kind);
        assert_eq!(err.site.block, Some(0));
        assert_eq!(err.site.thread, Some(7));
        assert!(err.site.kernel.as_deref().unwrap_or("").contains("force"));
    }

    #[test]
    fn injected_fault_degrades_to_cpu_with_identical_physics() {
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        let res = gpu()
            .accelerations_with_policy_injected(
                &bodies,
                &fp,
                FaultPolicy::FallbackToCpu,
                Some(&oob_plan()),
            )
            .unwrap();
        let report = res.fault.expect("the injected fault must be reported");
        assert!(report.degraded_from.contains("gpu-sim"));
        assert_eq!(report.degraded_to, "cpu-parallel");
        assert!(report.render().contains("OutOfBounds"));
        // The degraded frame is bit-identical to the serial CPU reference.
        assert_eq!(res.accels, Backend::CpuSerial.accelerations(&bodies, &fp));
    }

    #[test]
    fn healthy_run_reports_no_fault_and_budget_is_exact() {
        let bodies = spawn::uniform_ball(300, 5.0, 2.0, 11);
        let fp = ForceParams::default();
        let res = gpu()
            .accelerations_with_policy(&bodies, &fp, FaultPolicy::FailFast)
            .unwrap();
        assert!(res.fault.is_none());
        // The budget helper is exact: a device with one byte less OOMs.
        let budget = frame_memory_budget(OptLevel::Full, 300);
        let err = {
            let cfg = OptLevel::Full.config();
            let particles: Vec<Particle> = (0..300)
                .map(|i| Particle {
                    pos: bodies.pos[i],
                    vel: bodies.vel[i],
                    mass: bodies.mass[i],
                })
                .collect();
            let mut gmem = GlobalMemory::new(budget - 1);
            DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)
                .and_then(|img| alloc_accel_out(&mut gmem, img.padded_n))
                .unwrap_err()
        };
        assert!(matches!(err.kind, FaultKind::OutOfMemory { .. }));
    }
}
