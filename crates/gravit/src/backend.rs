//! Force-calculation backends.
//!
//! The paper's Sec. I-C/I-D landscape, as selectable engines:
//!
//! * [`Backend::CpuSerial`] — the original O(n²) loop (the 87× baseline);
//! * [`Backend::CpuParallel`] — the same, Rayon-parallel (a fair multi-core
//!   comparator the paper didn't have);
//! * [`Backend::BarnesHut`] — Gravit's O(n log n) tree code;
//! * [`Backend::GpuSim`] — the tiled CUDA kernel at a chosen optimization
//!   level, *functionally executed* on the simulated GPU. Physics results
//!   are bit-identical to `CpuSerial`; wall-clock is that of the simulator,
//!   so use [`modeled_frame_seconds`](Backend::modeled_frame_seconds) for
//!   device-time questions (that is what Fig. 12 reports).
//!
//! # Fault handling
//!
//! The simulated device detects out-of-bounds, misaligned, uninitialized and
//! out-of-memory accesses (see `gpu_sim::fault`). A [`FaultPolicy`] decides
//! what a device fault means at the application layer:
//!
//! * [`FaultPolicy::FailFast`] — propagate the typed [`DeviceError`] to the
//!   caller (CI, debugging: you want the fault coordinates, not a rescue);
//! * [`FaultPolicy::FallbackToCpu`] — log a [`FaultReport`] and recompute the
//!   frame on [`Backend::CpuParallel`], which is bit-identical physics to the
//!   GPU path, so a degraded run produces the same trajectory.

use crate::pressure::{downgrade, gpu_frame_chunked, plan_frame, DegradeEvent, ExecMode};
use crate::recovery::{RecoveryPolicy, RetryEvent};
use gpu_kernels::force::{build_force_kernel, force_params, OptLevel};
use gpu_sim::exec::functional::{
    run_grid_injected_lowered, run_grid_lowered, run_grid_watchdog_lowered,
};
use gpu_sim::fault::{DeviceError, DeviceResult, FaultKind, FaultPlan};
use gpu_sim::ir::lower::lower;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::transient::{run_grid_chaos_lowered, TransientFaultPlan};
use gpu_sim::DriverModel;
use nbody::barnes_hut::accelerations_bh;
use nbody::direct::{accelerations, accelerations_par};
use nbody::model::{Bodies, ForceParams};
use particle_layouts::device::{alloc_accel_out, download_accels};
use particle_layouts::{DeviceImage, Particle};
use serde::{Deserialize, Serialize};
use simcore::Vec3;

/// A force backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Serial O(n²) on the CPU.
    CpuSerial,
    /// Rayon-parallel O(n²) on the CPU.
    CpuParallel,
    /// Barnes–Hut tree code with opening angle θ.
    BarnesHut {
        /// Opening angle (0.3–1.0 typical; smaller = more accurate).
        theta: f32,
    },
    /// The simulated-GPU tiled kernel at an optimization level.
    GpuSim {
        /// Optimization level (layout/unroll/ICM/block).
        level: OptLevel,
        /// Driver revision for the timing model.
        driver: DriverModel,
    },
}

/// What to do when the simulated device reports a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Propagate the typed error to the caller immediately.
    FailFast,
    /// Emit a [`FaultReport`] and recompute the frame on the parallel CPU
    /// backend (bit-identical physics, so the trajectory is unaffected).
    #[default]
    FallbackToCpu,
}

/// Structured record of a device fault and how the run recovered: the retry
/// history (if the frame was retried) and which backend finally produced the
/// frame. Serializable so checkpoints and chaos logs preserve full fault
/// attribution across a crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// The first device error of the frame, with kernel/block/thread/
    /// instruction coordinates.
    pub error: DeviceError,
    /// Label of the backend that faulted.
    pub degraded_from: String,
    /// Label of the backend (or retry attempt) that produced the frame.
    pub degraded_to: String,
    /// Every failed attempt of the frame, in order, with the backoff waited
    /// after each. Empty when the frame was not retried (permanent fault or
    /// retries disabled).
    pub retries: Vec<RetryEvent>,
    /// Every rung of the memory-pressure degradation ladder the frame
    /// descended (full → chunked → CPU), in order. Empty when the frame ran
    /// at its planned residency.
    pub ladder: Vec<DegradeEvent>,
}

impl FaultReport {
    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut s = self.error.report();
        for r in &self.retries {
            s.push_str(&format!(
                "\n  attempt {}: {} (backoff {} ms)",
                r.attempt, r.fault, r.backoff_ms
            ));
        }
        for d in &self.ladder {
            s.push_str(&format!("\n  degrade {} -> {}: {}", d.from, d.to, d.reason));
        }
        s.push_str(&format!(
            "\n  recovery: degraded {} -> {}",
            self.degraded_from, self.degraded_to
        ));
        s
    }
}

/// Accelerations plus the fault (if any) survived along the way.
#[derive(Debug, Clone)]
pub struct ForceResult {
    /// Per-body accelerations.
    pub accels: Vec<Vec3>,
    /// Present iff the device faulted and the CPU fallback produced `accels`.
    pub fault: Option<FaultReport>,
}

impl Backend {
    /// Short name for reports.
    pub fn label(&self) -> String {
        match self {
            Backend::CpuSerial => "cpu-serial".into(),
            Backend::CpuParallel => "cpu-parallel".into(),
            Backend::BarnesHut { theta } => format!("barnes-hut(θ={theta})"),
            Backend::GpuSim { level, .. } => format!("gpu-sim[{}]", level.label()),
        }
    }

    /// Compute accelerations, recovering from device faults via the CPU
    /// fallback (i.e. [`FaultPolicy::FallbackToCpu`], report discarded).
    pub fn accelerations(&self, bodies: &Bodies, fp: &ForceParams) -> Vec<Vec3> {
        self.accelerations_with_policy(bodies, fp, FaultPolicy::FallbackToCpu)
            .map(|r| r.accels)
            // The fallback path cannot itself fault; this arm is unreachable.
            .unwrap_or_else(|_| accelerations_par(bodies, fp))
    }

    /// Compute accelerations, propagating any device fault as a typed error.
    pub fn try_accelerations(&self, bodies: &Bodies, fp: &ForceParams) -> DeviceResult<Vec<Vec3>> {
        self.accelerations_with_policy(bodies, fp, FaultPolicy::FailFast)
            .map(|r| r.accels)
    }

    /// Compute accelerations under an explicit fault policy.
    pub fn accelerations_with_policy(
        &self,
        bodies: &Bodies,
        fp: &ForceParams,
        policy: FaultPolicy,
    ) -> DeviceResult<ForceResult> {
        self.accelerations_with_policy_injected(bodies, fp, policy, None)
    }

    /// [`accelerations_with_policy`](Self::accelerations_with_policy) with an
    /// optional fault-injection plan threaded into the GPU backend — the test
    /// hook proving detection and recovery work end to end.
    pub fn accelerations_with_policy_injected(
        &self,
        bodies: &Bodies,
        fp: &ForceParams,
        policy: FaultPolicy,
        plan: Option<&FaultPlan>,
    ) -> DeviceResult<ForceResult> {
        if bodies.is_empty() {
            return Ok(ForceResult {
                accels: Vec::new(),
                fault: None,
            });
        }
        let accels = match self {
            Backend::CpuSerial => accelerations(bodies, fp),
            Backend::CpuParallel => accelerations_par(bodies, fp),
            Backend::BarnesHut { theta } => accelerations_bh(bodies, fp, *theta),
            Backend::GpuSim { level, .. } => match gpu_accelerations(bodies, fp, *level, plan) {
                Ok(a) => a,
                Err(error) => match policy {
                    FaultPolicy::FailFast => return Err(error),
                    FaultPolicy::FallbackToCpu => {
                        let fallback = Backend::CpuParallel;
                        let accels = accelerations_par(bodies, fp);
                        return Ok(ForceResult {
                            accels,
                            fault: Some(FaultReport {
                                error,
                                degraded_from: self.label(),
                                degraded_to: fallback.label(),
                                retries: Vec::new(),
                                ladder: Vec::new(),
                            }),
                        });
                    }
                },
            },
        };
        Ok(ForceResult {
            accels,
            fault: None,
        })
    }

    /// Compute accelerations with transient-fault recovery *and* the
    /// memory-pressure degradation ladder.
    ///
    /// The frame is first planned against `recovery.device_capacity` (see
    /// [`crate::pressure::plan_frame`]): a working set that does not fit the
    /// device is admitted as chunked streaming (bit-identical physics) or,
    /// at the floor, handed to the CPU — each downgrade recorded in the
    /// [`FaultReport`]'s ladder with the typed OOM that forced it.
    ///
    /// Orthogonally, a frame that fails with a *transient* fault
    /// (`EccMismatch`, `WatchdogTimeout`, `TransientLaunch`,
    /// `NonFiniteResult`) is retried up to `recovery.max_retries` times with
    /// deterministic backoff — each retry rebuilds the device image from
    /// host state, so a vanished fault leaves the physics bit-identical to a
    /// fault-free frame. A runtime OOM that slipped past planning descends
    /// the same ladder reactively. Only when retries exhaust (or the fault
    /// is permanent) does `policy` decide between propagating the error and
    /// degrading to the CPU. `chaos` optionally injects transient faults
    /// (the soak-test hook); the retry history is returned in the
    /// [`FaultReport`].
    pub fn accelerations_recovering(
        &self,
        bodies: &Bodies,
        fp: &ForceParams,
        policy: FaultPolicy,
        recovery: &RecoveryPolicy,
        mut chaos: Option<&mut TransientFaultPlan>,
    ) -> DeviceResult<ForceResult> {
        let (level, _) = match self {
            Backend::GpuSim { level, driver } => (*level, *driver),
            // CPU backends have no transient faults to recover from.
            _ => return self.accelerations_with_policy(bodies, fp, policy),
        };
        if bodies.is_empty() {
            return Ok(ForceResult {
                accels: Vec::new(),
                fault: None,
            });
        }
        let n = bodies.len() as u32;
        // Admission control: plan the frame before touching device memory.
        let plan = plan_frame(level, n, recovery.device_capacity);
        let mut mode = plan.mode;
        let mut ladder = plan.ladder;
        let mut first_error: Option<DeviceError> = plan.root;
        let mut retries: Vec<RetryEvent> = Vec::new();
        loop {
            // The CPU rung ends the frame: the root-cause OOM propagates
            // under FailFast, or the CPU takes the frame with full history.
            if mode == ExecMode::Cpu {
                let error = first_error.expect("the CPU rung is only reached by a downgrade");
                match policy {
                    FaultPolicy::FailFast => return Err(error),
                    FaultPolicy::FallbackToCpu => {
                        return Ok(ForceResult {
                            accels: accelerations_par(bodies, fp),
                            fault: Some(FaultReport {
                                error,
                                degraded_from: self.label(),
                                degraded_to: Backend::CpuParallel.label(),
                                retries,
                                ladder,
                            }),
                        });
                    }
                }
            }
            let attempt = retries.len() as u32;
            let r = match mode {
                ExecMode::Full => gpu_accelerations_transient(
                    bodies,
                    fp,
                    level,
                    chaos.as_deref_mut(),
                    recovery.watchdog_instructions,
                ),
                ExecMode::Chunked { chunk } => gpu_frame_chunked(
                    bodies,
                    fp,
                    level,
                    chunk,
                    recovery.device_capacity,
                    chaos.as_deref_mut(),
                    recovery.watchdog_instructions,
                ),
                ExecMode::Cpu => unreachable!("handled above"),
            };
            match r {
                Ok(accels) => {
                    let fault = first_error.map(|error| FaultReport {
                        error,
                        degraded_from: self.label(),
                        degraded_to: self.survival_label(mode, attempt),
                        retries: std::mem::take(&mut retries),
                        ladder: std::mem::take(&mut ladder),
                    });
                    return Ok(ForceResult { accels, fault });
                }
                Err(error) => {
                    let transient = error.kind.is_transient();
                    if transient && attempt < recovery.max_retries {
                        let backoff_ms = recovery.backoff.delay_ms(attempt);
                        retries.push(RetryEvent {
                            attempt,
                            fault: error.kind.name().to_string(),
                            detail: error.to_string(),
                            backoff_ms,
                        });
                        first_error.get_or_insert(error);
                        if backoff_ms > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                        }
                        continue;
                    }
                    // Reactive safety net: a runtime OOM (exact planning
                    // makes this unreachable in practice, but the rule is
                    // cheap insurance) descends the same ladder planning
                    // uses instead of abandoning the frame.
                    if matches!(error.kind, FaultKind::OutOfMemory { .. }) {
                        if let Some(next) = downgrade(level, n, mode) {
                            ladder.push(DegradeEvent {
                                from: mode.label(),
                                to: next.label(),
                                reason: error.to_string(),
                            });
                            first_error.get_or_insert(error);
                            mode = next;
                            continue;
                        }
                    }
                    // Permanent fault, or the retry budget is spent: the
                    // FaultPolicy decides. The report leads with the first
                    // error of the frame (the root cause) and keeps the full
                    // retry history.
                    let error = first_error.unwrap_or(error);
                    match policy {
                        FaultPolicy::FailFast => return Err(error),
                        FaultPolicy::FallbackToCpu => {
                            return Ok(ForceResult {
                                accels: accelerations_par(bodies, fp),
                                fault: Some(FaultReport {
                                    error,
                                    degraded_from: self.label(),
                                    degraded_to: Backend::CpuParallel.label(),
                                    retries,
                                    ladder,
                                }),
                            });
                        }
                    }
                }
            }
        }
    }

    /// The `degraded_to` label of a frame that survived on the GPU: the
    /// backend label, tagged with the chunked rung and/or the winning retry.
    fn survival_label(&self, mode: ExecMode, attempt: u32) -> String {
        let mut tags = Vec::new();
        if let ExecMode::Chunked { chunk } = mode {
            tags.push(format!("chunked c={chunk}"));
        }
        if attempt > 0 {
            tags.push(format!("retry {attempt}"));
        }
        if tags.is_empty() {
            self.label()
        } else {
            format!("{} ({})", self.label(), tags.join(", "))
        }
    }

    /// The modeled wall-clock seconds one frame of this backend would take on
    /// the 8800 GTX (GPU backends only; `None` otherwise). This is the
    /// quantity Fig. 12 plots.
    pub fn modeled_frame_seconds(&self, n: u32) -> Option<f64> {
        match self {
            Backend::GpuSim { level, driver } => {
                Some(crate::model::model_frame(*level, n, *driver).total_s())
            }
            _ => None,
        }
    }
}

/// Exact device-memory budget of one GPU force frame: the layout's particle
/// buffers plus the `float4` acceleration output, with the allocator's
/// alignment and redzone overhead included.
pub fn frame_memory_budget(level: OptLevel, n: u32) -> u64 {
    let cfg = level.config();
    let padded = n.div_ceil(cfg.block) * cfg.block;
    let mut sizes = DeviceImage::alloc_sizes(cfg.layout, n, cfg.block);
    sizes.push(padded as u64 * 16);
    GlobalMemory::footprint(&sizes)
}

/// Run the force kernel functionally on the simulated device. An empty body
/// set is a valid no-op frame. `plan` optionally injects address faults.
fn gpu_accelerations(
    bodies: &Bodies,
    fp: &ForceParams,
    level: OptLevel,
    plan: Option<&FaultPlan>,
) -> DeviceResult<Vec<Vec3>> {
    gpu_frame(bodies, fp, level, plan, None, None)
}

/// As [`gpu_accelerations`], under a transient-fault plan and/or watchdog —
/// each call rebuilds the device image from host state, so it is the unit of
/// retry for [`Backend::accelerations_recovering`].
fn gpu_accelerations_transient(
    bodies: &Bodies,
    fp: &ForceParams,
    level: OptLevel,
    chaos: Option<&mut TransientFaultPlan>,
    watchdog: Option<u64>,
) -> DeviceResult<Vec<Vec3>> {
    gpu_frame(bodies, fp, level, None, chaos, watchdog)
}

fn gpu_frame(
    bodies: &Bodies,
    fp: &ForceParams,
    level: OptLevel,
    plan: Option<&FaultPlan>,
    chaos: Option<&mut TransientFaultPlan>,
    watchdog: Option<u64>,
) -> DeviceResult<Vec<Vec3>> {
    if bodies.is_empty() {
        return Ok(Vec::new());
    }
    let cfg = level.config();
    let kernel = build_force_kernel(cfg);
    // Decode once: the structured kernel is lowered to its flat pre-resolved
    // form a single time per frame, not once per launch-variant dispatch.
    let prog = lower(&kernel);
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle {
            pos: bodies.pos[i],
            vel: bodies.vel[i],
            // The kernels consume G-premultiplied masses (see gpu-kernels).
            mass: fp.g * bodies.mass[i],
        })
        .collect();
    // Memory budget: the exact footprint of the layout buffers + the float4
    // output under the device allocator (alignment + redzones), not a guess.
    let budget = frame_memory_budget(level, bodies.len() as u32);
    let mut gmem = GlobalMemory::new(budget);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)?;
    let out = alloc_accel_out(&mut gmem, img.padded_n)?;
    debug_assert_eq!(
        gmem.allocated(),
        budget,
        "frame_memory_budget must predict the allocator exactly"
    );
    let params = force_params(&img, out, fp.softening);
    let grid = img.padded_n / cfg.block;
    match (chaos, plan, watchdog) {
        (Some(c), _, w) => {
            run_grid_chaos_lowered(&prog, grid, cfg.block, &params, &mut gmem, c, w)?
        }
        (None, Some(p), _) => {
            run_grid_injected_lowered(&prog, grid, cfg.block, &params, &mut gmem, p)?
        }
        (None, None, Some(w)) => {
            run_grid_watchdog_lowered(&prog, grid, cfg.block, &params, &mut gmem, w)?
        }
        (None, None, None) => run_grid_lowered(&prog, grid, cfg.block, &params, &mut gmem)?,
    };
    let accels = download_accels(&gmem, out, img.n)?;
    // A non-finite acceleration is corrupted physics, not a value to
    // integrate: surface it as a typed (transient, hence retryable) fault
    // with the body index attributed.
    for (i, a) in accels.iter().enumerate() {
        if !(a.x.is_finite() && a.y.is_finite() && a.z.is_finite()) {
            return Err(
                DeviceError::new(FaultKind::NonFiniteResult { index: i as u64 })
                    .with_kernel(&kernel.name),
            );
        }
    }
    Ok(accels)
}

/// Run `steps` device-resident Euler steps: upload once, alternate the force
/// and integration kernels on the simulated device, download once — the full
/// port shape of the paper's Gravit (state stays on the GPU across a frame).
///
/// Bit-identical to `steps` iterations of `accelerations` + host
/// `step_euler` (the integration kernel mirrors the host operation order).
pub fn run_device_resident(
    bodies: &Bodies,
    fp: &ForceParams,
    dt: f32,
    steps: u32,
    level: OptLevel,
) -> DeviceResult<Bodies> {
    use gpu_kernels::integrate::{build_integrate_kernel, integrate_params};
    if bodies.is_empty() {
        return Ok(Bodies::default());
    }
    let cfg = level.config();
    // Decode once, launch `steps` times: both kernels are lowered before the
    // step loop so per-launch cost is execution alone.
    let force_p = lower(&build_force_kernel(cfg));
    let integ_p = lower(&build_integrate_kernel(cfg.layout));
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle {
            pos: bodies.pos[i],
            vel: bodies.vel[i],
            mass: fp.g * bodies.mass[i],
        })
        .collect();
    let budget = frame_memory_budget(level, bodies.len() as u32);
    let mut gmem = GlobalMemory::new(budget);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)?;
    let acc = alloc_accel_out(&mut gmem, img.padded_n)?;
    debug_assert_eq!(
        gmem.allocated(),
        budget,
        "resident-loop budget must be exact"
    );
    let grid = img.padded_n / cfg.block;
    let fparams = force_params(&img, acc, fp.softening);
    let iparams = integrate_params(&img, acc, dt);
    for _ in 0..steps {
        run_grid_lowered(&force_p, grid, cfg.block, &fparams, &mut gmem)?;
        run_grid_lowered(&integ_p, grid, cfg.block, &iparams, &mut gmem)?;
    }
    let out = img.read_all(&gmem)?;
    let mut result = Bodies::with_capacity(bodies.len());
    for (i, p) in out.into_iter().enumerate() {
        // Masses were pre-scaled by G for the kernels; restore the originals
        // (they are unchanged on device, so this avoids a divide round trip).
        result.push(p.pos, p.vel, bodies.mass[i]);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::fault::{FaultKind, Mutation};
    use nbody::spawn;

    #[test]
    fn all_backends_agree_on_physics() {
        let bodies = spawn::uniform_ball(300, 5.0, 2.0, 11);
        let fp = ForceParams::default();
        let reference = Backend::CpuSerial.accelerations(&bodies, &fp);
        // Parallel and GPU are bit-identical.
        let par = Backend::CpuParallel.accelerations(&bodies, &fp);
        assert_eq!(reference, par);
        let gpu = Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda10,
        }
        .accelerations(&bodies, &fp);
        assert_eq!(
            reference, gpu,
            "GPU functional execution must match CPU bitwise"
        );
        // Barnes-Hut is approximate.
        let bh = Backend::BarnesHut { theta: 0.4 }.accelerations(&bodies, &fp);
        for i in 0..bodies.len() {
            let err = (bh[i] - reference[i]).norm() / reference[i].norm().max(1e-9);
            assert!(err < 0.05, "body {i} err {err}");
        }
    }

    #[test]
    fn only_gpu_backends_have_a_frame_model() {
        assert!(Backend::CpuSerial.modeled_frame_seconds(1000).is_none());
        let t = Backend::GpuSim {
            level: OptLevel::SoAoaS,
            driver: DriverModel::Cuda10,
        }
        .modeled_frame_seconds(40_000)
        .unwrap();
        assert!(
            t > 0.0 && t < 10.0,
            "modeled frame {t}s out of plausible range"
        );
    }

    #[test]
    fn device_resident_loop_matches_host_euler_bitwise() {
        use nbody::integrator::step_euler;
        let fp = ForceParams {
            g: 1.0,
            softening: 0.05,
        };
        let dt = 0.01f32;
        let steps = 4u32;
        let bodies0 = spawn::disk_galaxy(200, 4.0, 1.0, fp.g, 21);

        // Host loop: acc at current positions, then Euler, repeated.
        let mut host = bodies0.clone();
        for _ in 0..steps {
            let acc = Backend::CpuSerial.accelerations(&host, &fp);
            step_euler(&mut host, &acc, dt, None);
        }

        let dev = run_device_resident(&bodies0, &fp, dt, steps, OptLevel::Full).unwrap();
        assert_eq!(host, dev, "device-resident trajectory must match the host");
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Backend::CpuSerial.label(), "cpu-serial");
        assert!(Backend::BarnesHut { theta: 0.5 }.label().contains("0.5"));
        assert!(Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda22
        }
        .label()
        .contains("SoAoaS"));
    }

    #[test]
    fn empty_body_set_is_a_noop_for_every_backend() {
        let bodies = Bodies::default();
        let fp = ForceParams::default();
        for backend in [
            Backend::CpuSerial,
            Backend::CpuParallel,
            Backend::BarnesHut { theta: 0.5 },
            Backend::GpuSim {
                level: OptLevel::Full,
                driver: DriverModel::Cuda10,
            },
        ] {
            assert!(
                backend.accelerations(&bodies, &fp).is_empty(),
                "{}",
                backend.label()
            );
            assert!(backend.try_accelerations(&bodies, &fp).unwrap().is_empty());
        }
        assert_eq!(
            run_device_resident(&bodies, &fp, 0.01, 3, OptLevel::Full)
                .unwrap()
                .len(),
            0
        );
    }

    fn gpu() -> Backend {
        Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda10,
        }
    }

    /// A plan that redirects one lane's global accesses far out of bounds
    /// (keeping 16-byte alignment so the class is OutOfBounds, not
    /// Misaligned).
    fn oob_plan() -> FaultPlan {
        FaultPlan::at_thread(0, 7, Mutation::SetAddr(1 << 40))
    }

    #[test]
    fn injected_fault_fails_fast_with_coordinates() {
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        let err = gpu()
            .accelerations_with_policy_injected(
                &bodies,
                &fp,
                FaultPolicy::FailFast,
                Some(&oob_plan()),
            )
            .unwrap_err();
        assert!(
            matches!(err.kind, FaultKind::OutOfBounds { .. }),
            "got {:?}",
            err.kind
        );
        assert_eq!(err.site.block, Some(0));
        assert_eq!(err.site.thread, Some(7));
        assert!(err.site.kernel.as_deref().unwrap_or("").contains("force"));
    }

    #[test]
    fn injected_fault_degrades_to_cpu_with_identical_physics() {
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        let res = gpu()
            .accelerations_with_policy_injected(
                &bodies,
                &fp,
                FaultPolicy::FallbackToCpu,
                Some(&oob_plan()),
            )
            .unwrap();
        let report = res.fault.expect("the injected fault must be reported");
        assert!(report.degraded_from.contains("gpu-sim"));
        assert_eq!(report.degraded_to, "cpu-parallel");
        assert!(report.render().contains("OutOfBounds"));
        // The degraded frame is bit-identical to the serial CPU reference.
        assert_eq!(res.accels, Backend::CpuSerial.accelerations(&bodies, &fp));
    }

    #[test]
    fn transient_fault_is_retried_and_physics_stay_bit_identical() {
        use gpu_sim::transient::{FaultRates, LaunchFault, TransientFaultPlan};
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        let reference = Backend::CpuSerial.accelerations(&bodies, &fp);
        let recovery = RecoveryPolicy {
            max_retries: 3,
            ..RecoveryPolicy::default()
        };
        // Find a seed whose first launch faults transiently and whose second
        // is healthy: retry must succeed without touching the CPU path.
        let rates = FaultRates {
            bit_flip: 0.0,
            launch_failure: 0.5,
            hang: 0.0,
        };
        let seed = (0..200u64)
            .find(|&s| {
                let p = TransientFaultPlan::new(s, rates);
                p.fate_of(0) == LaunchFault::LaunchFailure && p.fate_of(1) == LaunchFault::None
            })
            .expect("some seed faults exactly once");
        let mut plan = TransientFaultPlan::new(seed, rates);
        let res = gpu()
            .accelerations_recovering(
                &bodies,
                &fp,
                FaultPolicy::FailFast,
                &recovery,
                Some(&mut plan),
            )
            .expect("the retry must rescue the frame");
        assert_eq!(
            res.accels, reference,
            "recovered frame must be bit-identical"
        );
        let report = res.fault.expect("the survived fault must be reported");
        assert_eq!(report.retries.len(), 1);
        assert_eq!(report.retries[0].attempt, 0);
        assert_eq!(report.retries[0].fault, "TransientLaunch");
        assert!(
            report.degraded_to.contains("retry 1"),
            "got {}",
            report.degraded_to
        );
        assert!(report.render().contains("attempt 0"));
    }

    #[test]
    fn permanent_faults_are_never_retried() {
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        // The permanent-fault path goes through the injection plan, which the
        // recovering entry point does not accept — so exercise the policy
        // decision directly: a permanent fault under FallbackToCpu must show
        // an empty retry history.
        let res = gpu()
            .accelerations_with_policy_injected(
                &bodies,
                &fp,
                FaultPolicy::FallbackToCpu,
                Some(&oob_plan()),
            )
            .unwrap();
        let report = res.fault.expect("reported");
        assert!(
            report.retries.is_empty(),
            "permanent faults must not be retried"
        );
        assert_eq!(report.degraded_to, "cpu-parallel");
        // And the recovering path with retries disabled behaves identically
        // for transient faults: straight to the policy.
        use gpu_sim::transient::{FaultRates, TransientFaultPlan};
        let mut plan = TransientFaultPlan::new(
            1,
            FaultRates {
                bit_flip: 0.0,
                launch_failure: 1.0,
                hang: 0.0,
            },
        );
        let none = RecoveryPolicy {
            max_retries: 0,
            ..RecoveryPolicy::default()
        };
        let err = gpu()
            .accelerations_recovering(&bodies, &fp, FaultPolicy::FailFast, &none, Some(&mut plan))
            .unwrap_err();
        assert!(matches!(err.kind, FaultKind::TransientLaunch { .. }));
        assert_eq!(
            plan.launches(),
            1,
            "exactly one attempt with retries disabled"
        );
    }

    #[test]
    fn exhausted_retries_fall_back_to_cpu_with_full_history() {
        use gpu_sim::transient::{FaultRates, TransientFaultPlan};
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        let reference = Backend::CpuSerial.accelerations(&bodies, &fp);
        // Every launch fails: retries exhaust, the CPU takes the frame.
        let mut plan = TransientFaultPlan::new(
            9,
            FaultRates {
                bit_flip: 0.0,
                launch_failure: 1.0,
                hang: 0.0,
            },
        );
        let recovery = RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        };
        let res = gpu()
            .accelerations_recovering(
                &bodies,
                &fp,
                FaultPolicy::FallbackToCpu,
                &recovery,
                Some(&mut plan),
            )
            .unwrap();
        assert_eq!(
            res.accels, reference,
            "degraded frame must be bit-identical"
        );
        let report = res.fault.expect("reported");
        assert_eq!(report.retries.len(), 2, "max_retries bounds the history");
        assert_eq!(plan.launches(), 3, "initial attempt + 2 retries");
        assert_eq!(report.degraded_to, "cpu-parallel");
        assert!(matches!(
            report.error.kind,
            FaultKind::TransientLaunch { .. }
        ));
    }

    #[test]
    fn non_finite_accelerations_are_typed_faults_with_the_body_index() {
        // A near-f32-max mass at a tiny separation overflows the force to
        // infinity. The GPU path must surface that as a typed fault, not
        // integrate Inf/NaN.
        let mut bodies = Bodies::with_capacity(2);
        bodies.push(Vec3::ZERO, Vec3::ZERO, 1e38);
        bodies.push(
            Vec3 {
                x: 1e-6,
                y: 0.0,
                z: 0.0,
            },
            Vec3::ZERO,
            1e38,
        );
        let fp = ForceParams {
            g: 1.0,
            softening: 0.0,
        };
        let err = gpu().try_accelerations(&bodies, &fp).unwrap_err();
        match err.kind {
            FaultKind::NonFiniteResult { index } => assert_eq!(index, 0),
            other => panic!("expected NonFiniteResult, got {other:?}"),
        }
        assert!(err.kind.is_transient(), "retryable by classification");
        assert!(err.site.kernel.as_deref().unwrap_or("").contains("force"));
    }

    #[test]
    fn watchdogged_healthy_frame_is_bit_transparent() {
        let bodies = spawn::uniform_ball(256, 5.0, 2.0, 3);
        let fp = ForceParams::default();
        let reference = gpu().accelerations(&bodies, &fp);
        let recovery = RecoveryPolicy {
            watchdog_instructions: Some(1 << 24),
            ..RecoveryPolicy::default()
        };
        let res = gpu()
            .accelerations_recovering(&bodies, &fp, FaultPolicy::FailFast, &recovery, None)
            .unwrap();
        assert!(res.fault.is_none());
        assert_eq!(res.accels, reference);
        // A starved watchdog kills the frame as a transient timeout.
        let starved = RecoveryPolicy {
            max_retries: 0,
            watchdog_instructions: Some(1),
            ..RecoveryPolicy::default()
        };
        let err = gpu()
            .accelerations_recovering(&bodies, &fp, FaultPolicy::FailFast, &starved, None)
            .unwrap_err();
        assert!(matches!(err.kind, FaultKind::WatchdogTimeout { .. }));
    }

    #[test]
    fn healthy_run_reports_no_fault_and_budget_is_exact() {
        let bodies = spawn::uniform_ball(300, 5.0, 2.0, 11);
        let fp = ForceParams::default();
        let res = gpu()
            .accelerations_with_policy(&bodies, &fp, FaultPolicy::FailFast)
            .unwrap();
        assert!(res.fault.is_none());
        // The budget helper is exact: a device with one byte less OOMs.
        let budget = frame_memory_budget(OptLevel::Full, 300);
        let err = {
            let cfg = OptLevel::Full.config();
            let particles: Vec<Particle> = (0..300)
                .map(|i| Particle {
                    pos: bodies.pos[i],
                    vel: bodies.vel[i],
                    mass: bodies.mass[i],
                })
                .collect();
            let mut gmem = GlobalMemory::new(budget - 1);
            DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)
                .and_then(|img| alloc_accel_out(&mut gmem, img.padded_n))
                .unwrap_err()
        };
        assert!(matches!(err.kind, FaultKind::OutOfMemory { .. }));
    }
}
