//! Frame-granular checkpoint/resume.
//!
//! A checkpoint captures the *entire* integration state of a
//! [`Simulation`](crate::sim::Simulation) — bodies, accelerations, clock,
//! step count, energy reference and the survived-fault log — so a run killed
//! at any frame and resumed with `gravit run --resume <ckpt>` finishes
//! **bit-identical** to the uninterrupted run. To make that guarantee hold:
//!
//! * floats that must round-trip exactly are stored as raw bits (`f64`) or
//!   rely on the shortest-round-trip JSON encoding (`f32`);
//! * the file is written atomically (temp file in the same directory, then
//!   rename), so a crash mid-write leaves the previous checkpoint intact;
//! * a one-line header `GRAVITCKPT v1 crc=<hex> len=<bytes>` carries a
//!   CRC-32 of the payload: truncation, corruption and version skew are
//!   typed [`CheckpointError`]s, never a panic or a silently wrong resume.

use crate::backend::FaultReport;
use crate::config::SimConfig;
use serde::{Deserialize, Serialize};
use simcore::crc32;
use std::fmt;
use std::path::Path;

/// Checkpoint format version this build writes and reads.
pub const CKPT_VERSION: u32 = 1;

const MAGIC: &str = "GRAVITCKPT";

/// The complete resumable state of a simulation at a step boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Body count (must match the resuming config).
    pub n: usize,
    /// Workload seed (must match).
    pub seed: u64,
    /// Exact bits of the configured time step (must match).
    pub dt_bits: u32,
    /// Integrator label (must match).
    pub integrator: String,
    /// Backend label (must match — resuming on a different backend would
    /// silently change the trajectory).
    pub backend: String,
    /// Simulated time, as exact `f64` bits.
    pub time_bits: u64,
    /// Steps taken.
    pub steps: u64,
    /// Body positions.
    pub pos: Vec<[f32; 3]>,
    /// Body velocities.
    pub vel: Vec<[f32; 3]>,
    /// Body masses.
    pub mass: Vec<f32>,
    /// Accelerations of the last computed step.
    pub accels: Vec<[f32; 3]>,
    /// Initial total energy, as exact `f64` bits (the drift reference).
    pub energy0_bits: u64,
    /// Device faults survived before the checkpoint, with retry history.
    pub fault_reports: Vec<FaultReport>,
}

/// Why a checkpoint could not be saved, loaded, or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
    /// The file does not start with the `GRAVITCKPT` magic.
    BadMagic,
    /// The file is a checkpoint, but of an unsupported format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The payload is shorter or longer than the header promised.
    Truncated {
        /// Payload bytes the header promised.
        expected: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The payload does not match the header's CRC-32.
    CrcMismatch {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload as read.
        actual: u32,
    },
    /// The header or JSON payload is malformed.
    Parse(String),
    /// The checkpoint does not belong to the resuming configuration.
    ConfigMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a gravit checkpoint (bad magic)"),
            CheckpointError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint format v{found} is not supported (this build reads v{supported})"
            ),
            CheckpointError::Truncated { expected, actual } => write!(
                f,
                "checkpoint truncated: header promises {expected} payload bytes, found {actual}"
            ),
            CheckpointError::CrcMismatch { expected, actual } => write!(
                f,
                "checkpoint corrupted: payload crc {actual:08x} != header crc {expected:08x}"
            ),
            CheckpointError::Parse(e) => write!(f, "checkpoint malformed: {e}"),
            CheckpointError::ConfigMismatch(e) => {
                write!(f, "checkpoint does not match the configuration: {e}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl Checkpoint {
    /// Reject resuming under a configuration that would not reproduce the
    /// uninterrupted run: every field that shapes the trajectory must match.
    pub fn compatible_with(&self, config: &SimConfig) -> Result<(), CheckpointError> {
        let mismatch = |what: String| Err(CheckpointError::ConfigMismatch(what));
        if self.n != config.n {
            return mismatch(format!("n: checkpoint {} vs config {}", self.n, config.n));
        }
        if self.seed != config.seed {
            return mismatch(format!(
                "seed: checkpoint {} vs config {}",
                self.seed, config.seed
            ));
        }
        if self.dt_bits != config.dt.to_bits() {
            return mismatch(format!(
                "dt: checkpoint {} vs config {}",
                f32::from_bits(self.dt_bits),
                config.dt
            ));
        }
        let integ = format!("{:?}", config.integrator);
        if self.integrator != integ {
            return mismatch(format!(
                "integrator: checkpoint {} vs config {integ}",
                self.integrator
            ));
        }
        let backend = config.backend.label();
        if self.backend != backend {
            return mismatch(format!(
                "backend: checkpoint {} vs config {backend}",
                self.backend
            ));
        }
        Ok(())
    }

    /// Serialize to the on-disk format: header line + JSON payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = serde_json::to_string(self).expect("checkpoint serializes");
        let mut out = format!(
            "{MAGIC} v{CKPT_VERSION} crc={:08x} len={}\n",
            crc32(payload.as_bytes()),
            payload.len()
        );
        out.push_str(&payload);
        out.into_bytes()
    }

    /// Parse the on-disk format, verifying magic, version, length and CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(CheckpointError::BadMagic)?;
        let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| CheckpointError::BadMagic)?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some(MAGIC) {
            return Err(CheckpointError::BadMagic);
        }
        let version: u32 = fields
            .next()
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("missing version field".into()))?;
        if version != CKPT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                supported: CKPT_VERSION,
            });
        }
        let expected_crc: u32 = fields
            .next()
            .and_then(|v| v.strip_prefix("crc="))
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| CheckpointError::Parse("missing crc field".into()))?;
        let expected_len: u64 = fields
            .next()
            .and_then(|v| v.strip_prefix("len="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Parse("missing len field".into()))?;
        let payload = &bytes[nl + 1..];
        if payload.len() as u64 != expected_len {
            return Err(CheckpointError::Truncated {
                expected: expected_len,
                actual: payload.len() as u64,
            });
        }
        let actual_crc = crc32(payload);
        if actual_crc != expected_crc {
            return Err(CheckpointError::CrcMismatch {
                expected: expected_crc,
                actual: actual_crc,
            });
        }
        let payload =
            std::str::from_utf8(payload).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        serde_json::from_str(payload).map_err(|e| CheckpointError::Parse(e.to_string()))
    }

    /// Save atomically: write a temp file in the destination directory, then
    /// rename over `path`. A crash mid-save never clobbers the previous
    /// checkpoint.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load and fully verify a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            n: 2,
            seed: 7,
            dt_bits: 0.005f32.to_bits(),
            integrator: "Leapfrog".into(),
            backend: "cpu-parallel".into(),
            time_bits: 1.25f64.to_bits(),
            steps: 250,
            pos: vec![[1.0, 2.0, 3.0], [-0.5, 0.25, 1e-7]],
            vel: vec![[0.0, 0.1, 0.2], [0.3, 0.4, 0.5]],
            mass: vec![1.0, 2.0],
            accels: vec![[0.01, 0.02, 0.03], [0.04, 0.05, 0.06]],
            energy0_bits: (-3.5f64).to_bits(),
            fault_reports: Vec::new(),
        }
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let c = sample();
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let bytes = sample().to_bytes();
        // Truncated payload.
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            Checkpoint::from_bytes(cut),
            Err(CheckpointError::Truncated { .. })
        ));
        // Flipped payload byte: length intact, CRC wrong.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x20;
        assert!(matches!(
            Checkpoint::from_bytes(&flipped),
            Err(CheckpointError::CrcMismatch { .. })
        ));
        // Not a checkpoint at all.
        assert!(matches!(
            Checkpoint::from_bytes(b"{\"frames\": []}\n"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = sample().to_bytes();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let header = String::from_utf8(bytes[..header_end].to_vec()).unwrap();
        let bumped = header.replace("v1", "v2");
        bytes.splice(..header_end, bumped.into_bytes());
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::VersionMismatch {
                found: 2,
                supported: 1,
            }) => {}
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn config_compatibility_is_enforced() {
        let c = sample();
        let mut cfg = SimConfig {
            n: 2,
            seed: 7,
            dt: 0.005,
            ..SimConfig::default()
        };
        c.compatible_with(&cfg).unwrap();
        cfg.n = 3;
        let e = c.compatible_with(&cfg).unwrap_err();
        assert!(matches!(e, CheckpointError::ConfigMismatch(_)));
        assert!(e.to_string().contains("n:"), "{e}");
    }

    #[test]
    fn save_is_atomic_and_load_verifies() {
        let dir = std::env::temp_dir().join("gravit-ckpt-test");
        let path = dir.join("state.ckpt");
        let c = sample();
        c.save(&path).unwrap();
        assert!(
            !path.with_extension("ckpt.tmp").exists(),
            "temp file renamed away"
        );
        assert_eq!(Checkpoint::load(&path).unwrap(), c);
        // A damaged file on disk is a typed error, not a panic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, bytes).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
