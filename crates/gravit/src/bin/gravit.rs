//! The `gravit` CLI: a Gravit-like gravity simulator over the reproduction's
//! backends.
//!
//! ```text
//! gravit run    [--n N] [--steps S] [--backend cpu|par|bh|gpu] [--spawn ball|disk|collision|plummer]
//!               [--dt DT] [--record FILE] [--seed SEED]
//!               [--checkpoint FILE] [--checkpoint-every K] [--resume FILE]
//! gravit ladder                 # the paper's optimization ladder (Fig. 12 levels)
//! gravit model  [--n N]         # modeled GPU frame times at size N
//! gravit fleet  [--devices D] [--jobs J] [--seed S] [--fault-rates F,L,H]
//! gravit help
//! ```
//!
//! Exit codes: 0 success, 2 usage/configuration/checkpoint error, 3 device
//! fault under `--fault-policy fail`.

use gpu_kernels::force::OptLevel;
use gpu_sim::fault::DeviceError;
use gpu_sim::{DeviceConfig, DriverModel};
use gravit_app::backend::{Backend, FaultPolicy};
use gravit_app::checkpoint::Checkpoint;
use gravit_app::config::{SimConfig, SpawnKind};
use gravit_app::recorder::Recording;
use gravit_app::sim::{SimError, Simulation};
use simcore::format_duration_s;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("ladder") => cmd_ladder(),
        Some("model") => cmd_model(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        _ => print_help(),
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse a byte count with an optional K/M/G suffix (binary multiples).
fn parse_bytes(v: &str) -> Option<u64> {
    let v = v.trim();
    let (digits, mult) = match v.as_bytes().last()? {
        b'K' | b'k' => (&v[..v.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&v[..v.len() - 1], 1u64 << 20),
        b'G' | b'g' => (&v[..v.len() - 1], 1u64 << 30),
        _ => (v, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

fn cmd_run(args: &[String]) {
    let n: usize = flag(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2048);
    let steps: u64 = flag(args, "--steps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let dt: f32 = flag(args, "--dt")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.005);
    let seed: u64 = flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let backend = match flag(args, "--backend").as_deref() {
        Some("cpu") => Backend::CpuSerial,
        Some("bh") => Backend::BarnesHut { theta: 0.6 },
        Some("gpu") => Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda10,
        },
        _ => Backend::CpuParallel,
    };
    let spawn = match flag(args, "--spawn").as_deref() {
        Some("ball") => SpawnKind::UniformBall { radius: 5.0 },
        Some("plummer") => SpawnKind::Plummer { a: 1.0 },
        Some("collision") => SpawnKind::Collision {
            separation: 20.0,
            approach_speed: 0.4,
        },
        _ => SpawnKind::DiskGalaxy { radius: 5.0 },
    };
    let fault_policy = match flag(args, "--fault-policy").as_deref() {
        Some("fail") => FaultPolicy::FailFast,
        Some("fallback") | None => FaultPolicy::FallbackToCpu,
        Some(other) => {
            eprintln!("unknown --fault-policy {other:?} (expected fail|fallback)");
            std::process::exit(2);
        }
    };
    let mut cfg = SimConfig {
        n,
        spawn,
        seed,
        dt,
        backend,
        fault_policy,
        ..SimConfig::default()
    };
    if let Some(r) = flag(args, "--max-retries").and_then(|v| v.parse().ok()) {
        cfg.recovery.max_retries = r;
    }
    if let Some(v) = flag(args, "--device-mem") {
        match parse_bytes(&v) {
            Some(bytes) => cfg.recovery.device_capacity = Some(bytes),
            None => {
                eprintln!("invalid --device-mem {v:?} (expected BYTES with optional K/M/G suffix)");
                std::process::exit(2);
            }
        }
    }
    if args.iter().any(|a| a == "--dry-run") {
        match backend {
            Backend::GpuSim { level, .. } => {
                let plan =
                    gravit_app::pressure::plan_frame(level, n as u32, cfg.recovery.device_capacity);
                print!("{}", plan.render());
            }
            other => println!(
                "memory plan: backend {} is not device-bound; no device memory needed",
                other.label()
            ),
        }
        return;
    }
    let ckpt_every: u64 = flag(args, "--checkpoint-every")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    cfg.recovery.checkpoint_every = ckpt_every;
    let ckpt_path =
        flag(args, "--checkpoint").or_else(|| (ckpt_every > 0).then(|| "gravit.ckpt".to_string()));
    println!(
        "gravit: n={n}, steps={steps}, dt={dt}, backend={}",
        backend.label()
    );

    let t0 = Instant::now();
    let mut sim = match flag(args, "--resume") {
        Some(path) => {
            let ckpt = Checkpoint::load(&path).unwrap_or_else(|e| {
                eprintln!("gravit: cannot resume from {path}: {e}");
                std::process::exit(2);
            });
            let sim = Simulation::resume(cfg, &ckpt).unwrap_or_else(|e| sim_error_exit(&e));
            println!(
                "resumed from {path} at step {} (t={:.3})",
                sim.steps, sim.time
            );
            sim
        }
        None => Simulation::new(cfg).unwrap_or_else(|e| sim_error_exit(&e)),
    };
    let mut recording = flag(args, "--record").map(|_| Recording::new(n, (n / 512).max(1)));
    if let Some(rec) = recording.as_mut() {
        rec.capture(&sim);
    }
    for s in sim.steps + 1..=steps {
        if let Err(e) = sim.step() {
            device_fault_exit(&e);
        }
        if let Some(rec) = recording.as_mut() {
            if s % 5 == 0 {
                rec.capture(&sim);
            }
        }
        if let (Some(path), true) = (&ckpt_path, ckpt_every > 0 && s % ckpt_every == 0) {
            if let Err(e) = sim.checkpoint().save(path) {
                eprintln!("gravit: checkpoint to {path} failed: {e}");
                std::process::exit(2);
            }
        }
    }
    // A memory-constrained run degrades every frame; cap the noise.
    const MAX_REPORTS: usize = 8;
    for report in sim.fault_reports.iter().take(MAX_REPORTS) {
        eprintln!("sanitizer: recovered device fault\n{}", report.render());
    }
    if sim.fault_reports.len() > MAX_REPORTS {
        eprintln!(
            "sanitizer: ... and {} more recovered faults (identical degradations elided)",
            sim.fault_reports.len() - MAX_REPORTS
        );
    }
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "done: t={:.3}, wall={}, {:.1} steps/s, energy drift {:.3e}, |momentum| {:.3e}",
        sim.time,
        format_duration_s(wall),
        steps as f64 / wall,
        sim.energy_drift(),
        sim.momentum_magnitude()
    );
    if let (Some(rec), Some(path)) = (recording, flag(args, "--record")) {
        if let Err(e) = rec.write(&path) {
            eprintln!("gravit: cannot write recording to {path}: {e}");
            std::process::exit(2);
        }
        println!("recording written to {path} ({} frames)", rec_len(&path));
    }
}

/// Print the sanitizer report and exit with the device-fault code (3),
/// distinct from usage errors (2).
fn device_fault_exit(e: &DeviceError) -> ! {
    eprintln!(
        "gravit: device fault detected by the sanitizer\n{}",
        e.report()
    );
    std::process::exit(3);
}

/// Map construction failures to exit codes: device faults exit 3;
/// configuration and checkpoint problems are usage errors, exit 2 with a
/// readable message.
fn sim_error_exit(e: &SimError) -> ! {
    match e {
        SimError::Device(d) => device_fault_exit(d),
        other => {
            eprintln!("gravit: {other}");
            std::process::exit(2);
        }
    }
}

fn rec_len(path: &str) -> usize {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| Recording::from_json(&s).ok())
        .map(|r| r.frames.len())
        .unwrap_or(0)
}

fn cmd_ladder() {
    let dev = DeviceConfig::g8800gtx();
    println!("Optimization ladder on {} (CUDA 1.0 model):\n", dev.name);
    println!(
        "{:<32} {:>10} {:>12} {:>6} {:>10}",
        "level", "tile-fetch", "instrs/elem", "regs", "occupancy"
    );
    for step in gravit_core::pipeline::optimization_ladder(&dev, DriverModel::Cuda10) {
        println!(
            "{:<32} {:>10} {:>12.2} {:>6} {:>9.0}%",
            step.level.label(),
            step.tile_fetch_transactions,
            step.instrs_per_element,
            step.regs,
            step.occupancy.percent()
        );
    }
}

fn cmd_model(args: &[String]) {
    let n: u32 = flag(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    println!("Modeled 8800 GTX frame times at N = {n} (CUDA 1.0):\n");
    let base = gravit_app::model::model_frame(OptLevel::Baseline, n, DriverModel::Cuda10).total_s();
    for level in OptLevel::ALL {
        let p = gravit_app::model::model_frame(level, n, DriverModel::Cuda10);
        println!(
            "{:<32} {:>10}  (kernel {:>10}, transfers {:>9})  {:>5.2}x",
            level.label(),
            format_duration_s(p.total_s()),
            format_duration_s(p.kernel_s),
            format_duration_s(p.upload_s + p.download_s),
            base / p.total_s()
        );
    }
}

fn cmd_report(args: &[String]) {
    use gravit_core::layout_advisor::StructSchema;
    let dev = DeviceConfig::g8800gtx();
    let report =
        gravit_core::build_report(&dev, DriverModel::Cuda10, &StructSchema::gravit_particle());
    let json = report.to_json();
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("gravit: cannot write report to {path}: {e}");
                std::process::exit(2);
            }
            println!("optimization report written to {path}");
        }
        None => println!("{json}"),
    }
}

fn cmd_render(args: &[String]) {
    let Some(input) = flag(args, "--input") else {
        eprintln!("render: --input FILE.json required (produced by `gravit run --record`)");
        std::process::exit(2);
    };
    let out = flag(args, "--out").unwrap_or_else(|| "frames".into());
    let size: usize = flag(args, "--size")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let rec = Recording::load(&input).unwrap_or_else(|e| {
        eprintln!("gravit: cannot load recording {input}: {e}");
        std::process::exit(2);
    });
    let n = gravit_app::render::render_recording(&rec, &out, size).unwrap_or_else(|e| {
        eprintln!("gravit: render failed: {e}");
        std::process::exit(2);
    });
    println!("rendered {n} frames to {out}/frame_NNNN.pgm");
    if let Some(last) = rec.frames.last() {
        let bounds = gravit_app::render::auto_bounds(&rec);
        match gravit_app::render::render_frame(last, size, size, bounds) {
            Ok(img) => println!("last frame preview:\n{}", img.ascii_preview(64)),
            Err(e) => eprintln!("gravit: preview skipped: {e}"),
        }
    }
}

/// Parse `--fault-rates flip,launch,hang` (three comma-separated
/// probabilities).
fn parse_fault_rates(v: &str) -> Option<gpu_sim::FaultRates> {
    let mut parts = v.split(',').map(|p| p.trim().parse::<f64>());
    let rates = gpu_sim::FaultRates {
        bit_flip: parts.next()?.ok()?,
        launch_failure: parts.next()?.ok()?,
        hang: parts.next()?.ok()?,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(rates)
}

fn cmd_fleet(args: &[String]) {
    use gpu_sim::{DevicePool, DeviceSpec};
    use gravit_app::fleet::{drive, Fleet, FleetConfig, FleetEvent, JobSpec};

    let devices: usize = flag(args, "--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let jobs: u64 = flag(args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let seed: u64 = flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let n: usize = flag(args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let steps: u64 = flag(args, "--steps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let ticks: u64 = flag(args, "--ticks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let rates = match flag(args, "--fault-rates") {
        Some(v) => match parse_fault_rates(&v) {
            Some(r) => r,
            None => {
                eprintln!("invalid --fault-rates {v:?} (expected FLIP,LAUNCH,HANG probabilities)");
                std::process::exit(2);
            }
        },
        None => gpu_sim::FaultRates::QUIET,
    };
    let capacity = match flag(args, "--device-mem") {
        Some(v) => match parse_bytes(&v) {
            Some(bytes) => Some(bytes),
            None => {
                eprintln!("invalid --device-mem {v:?} (expected BYTES with optional K/M/G suffix)");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let spec = DeviceSpec {
        capacity,
        fault_rates: rates,
        watchdog_instructions: Some(1 << 22),
    };
    let pool = match DevicePool::uniform(seed, devices, spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gravit: invalid pool: {e}");
            std::process::exit(2);
        }
    };
    let mut cfg = FleetConfig {
        seed,
        ..FleetConfig::default()
    };
    if let Some(s) = flag(args, "--slice").and_then(|v| v.parse().ok()) {
        cfg.slice_steps = s;
    }
    if let Some(q) = flag(args, "--queue-cap").and_then(|v| v.parse().ok()) {
        cfg.queue_capacity = q;
    }
    if let Some(p) = flag(args, "--preempt-rate").and_then(|v| v.parse().ok()) {
        cfg.preempt_rate = p;
    }
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|id| JobSpec {
            id,
            tenant: format!("tenant-{}", id % 4),
            config: SimConfig {
                n,
                spawn: SpawnKind::UniformBall { radius: 4.0 },
                seed: seed ^ id,
                dt: 0.01,
                backend: Backend::GpuSim {
                    level: OptLevel::Full,
                    driver: DriverModel::Cuda10,
                },
                fault_policy: FaultPolicy::FallbackToCpu,
                ..SimConfig::default()
            },
            steps,
        })
        .collect();
    println!(
        "fleet: {devices} device(s), {jobs} job(s) of n={n} x {steps} steps, seed {seed}, \
         rates (flip {:.2}, launch {:.2}, hang {:.2})",
        rates.bit_flip, rates.launch_failure, rates.hang
    );
    let mut fleet = Fleet::new(cfg, pool);
    let t0 = Instant::now();
    let outcome = match drive(&mut fleet, specs, ticks) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gravit: fleet did not converge: {e}");
            std::process::exit(2);
        }
    };
    let wall = t0.elapsed().as_secs_f64();
    let (mut faults, mut migrations, mut preemptions) = (0usize, 0usize, 0usize);
    for ev in fleet.events() {
        match ev {
            FleetEvent::Faulted { .. } => faults += 1,
            FleetEvent::Migrated { .. } => migrations += 1,
            FleetEvent::Preempted { .. } => preemptions += 1,
            _ => {}
        }
    }
    println!(
        "done: {} completed, {} rejected in {} tick(s), wall={} ({:.1} jobs/s)",
        fleet.completed().len(),
        outcome.rejected.len(),
        outcome.ticks,
        format_duration_s(wall),
        fleet.completed().len() as f64 / wall.max(1e-9),
    );
    println!("faults seen: {faults}, migrations: {migrations}, preemptions: {preemptions}");
    for d in 0..devices {
        let health = fleet
            .device_health(d)
            .map(|h| h.label().to_string())
            .unwrap_or_else(|| "?".into());
        println!(
            "device {d}: health {health}, {} fault(s) on record",
            fleet.fault_history(d).len()
        );
    }
    for (spec, why) in &outcome.rejected {
        println!("rejected job {} ({}): {why}", spec.id, why.label());
    }
}

fn print_help() {
    println!(
        "gravit — a Gravit-like gravity simulator (ICPP'09 CUDA-optimizations reproduction)

USAGE:
  gravit run    [--n N] [--steps S] [--backend cpu|par|bh|gpu]
                [--spawn ball|disk|collision|plummer] [--dt DT]
                [--seed SEED] [--record FILE] [--fault-policy fail|fallback]
                [--max-retries R] [--checkpoint FILE] [--checkpoint-every K]
                [--resume FILE] [--device-mem BYTES[K|M|G]] [--dry-run]
                (on a device fault: `fail` exits 3 with the sanitizer
                report; `fallback` retries transient faults up to R times,
                then finishes the frame on the CPU)
                (--device-mem caps the simulated device memory: a working
                set that does not fit degrades full -> chunked streaming ->
                CPU, bit-identical physics throughout; --dry-run prints the
                per-frame memory plan — budget, per-buffer breakdown, mode,
                chunk size — and exits without running)
                (--checkpoint-every K saves a crash-safe checkpoint every K
                steps; --resume continues a killed run bit-identically;
                --steps is the total step count of the run, so a resumed
                run stops at the same step the uninterrupted one would)
  gravit ladder             print the paper's optimization ladder
  gravit model  [--n N]     modeled GPU frame times at size N
  gravit render --input REC.json [--out DIR] [--size PX]
  gravit report [--out FILE]    full optimization report as JSON
  gravit fleet  [--devices D] [--jobs J] [--seed SEED]
                [--fault-rates FLIP,LAUNCH,HANG] [--n N] [--steps S]
                [--slice K] [--queue-cap Q] [--preempt-rate P]
                [--device-mem BYTES[K|M|G]] [--ticks MAX]
                (runs J simulations across a supervised pool of D
                simulated devices: faulty devices are quarantined and
                their queues drained; running jobs preempt/migrate via
                in-memory checkpoints, bit-identically; the whole
                schedule and fault history replay from SEED)
  gravit help"
    );
}
