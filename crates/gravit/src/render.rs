//! Rendering recordings to images — Gravit is a *visual* simulator ("it also
//! creates beautiful looking gravity patterns"), so the reproduction can show
//! its work: each recorded frame projects onto the XY plane as a density
//! splat and is written as a binary PGM (portable graymap) image, plus an
//! ASCII preview for terminals.

use crate::recorder::{Frame, Recording};
use std::fmt;
use std::io;
use std::path::Path;

/// Why a render request was refused. Degenerate viewports are typed errors,
/// never panics — a fleet worker thread must not be poisoned by a bad render
/// request.
#[derive(Debug)]
pub enum RenderError {
    /// The requested image is below the 8×8 minimum.
    BadSize {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// The viewport half-extent must be positive and finite.
    BadBounds {
        /// The offending value.
        bounds: f32,
    },
    /// Filesystem failure while writing images.
    Io(io::Error),
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::BadSize { width, height } => {
                write!(f, "image {width}x{height} is below the 8x8 minimum")
            }
            RenderError::BadBounds { bounds } => {
                write!(
                    f,
                    "viewport bounds must be positive and finite, got {bounds}"
                )
            }
            RenderError::Io(e) => write!(f, "render I/O error: {e}"),
        }
    }
}

impl std::error::Error for RenderError {}

impl From<io::Error> for RenderError {
    fn from(e: io::Error) -> Self {
        RenderError::Io(e)
    }
}

/// A grayscale image buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels, 0–255.
    pub pixels: Vec<u8>,
}

impl GrayImage {
    /// Pixel accessor (row-major).
    pub fn at(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Serialize as binary PGM (P5).
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Write as a `.pgm` file.
    pub fn write_pgm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_pgm())
    }

    /// A coarse ASCII preview (for terminals): `cols` characters wide.
    pub fn ascii_preview(&self, cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let cols = cols.clamp(8, self.width);
        let rows = (cols * self.height / self.width / 2).max(4);
        let mut out = String::new();
        for r in 0..rows {
            for c in 0..cols {
                // Max over the source region: sparse splats stay visible
                // (averaging would wash single particles out).
                let x0 = c * self.width / cols;
                let x1 = ((c + 1) * self.width / cols).max(x0 + 1);
                let y0 = r * self.height / rows;
                let y1 = ((r + 1) * self.height / rows).max(y0 + 1);
                let mut peak = 0u8;
                for y in y0..y1 {
                    for x in x0..x1 {
                        peak = peak.max(self.at(x, y));
                    }
                }
                let idx = (peak as usize * (RAMP.len() - 1)) / 255;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Render one frame as a density splat over the XY plane.
///
/// `bounds` is the half-extent of the viewport (world units); positions
/// outside are clipped. Each particle deposits intensity into its pixel;
/// the result is tone-mapped with a sqrt curve so dense cores do not clip
/// everything else to white.
pub fn render_frame(
    frame: &Frame,
    width: usize,
    height: usize,
    bounds: f32,
) -> Result<GrayImage, RenderError> {
    if width < 8 || height < 8 {
        return Err(RenderError::BadSize { width, height });
    }
    if !(bounds > 0.0 && bounds.is_finite()) {
        return Err(RenderError::BadBounds { bounds });
    }
    let mut counts = vec![0u32; width * height];
    for p in &frame.positions {
        let nx = (p[0] / bounds + 1.0) * 0.5;
        let ny = (p[1] / bounds + 1.0) * 0.5;
        if !(0.0..1.0).contains(&nx) || !(0.0..1.0).contains(&ny) {
            continue;
        }
        let x = (nx * (width - 1) as f32) as usize;
        let y = ((1.0 - ny) * (height - 1) as f32) as usize;
        counts[y * width + x] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1) as f32;
    let pixels = counts
        .into_iter()
        .map(|c| ((c as f32 / max).sqrt() * 255.0).round() as u8)
        .collect();
    Ok(GrayImage {
        width,
        height,
        pixels,
    })
}

/// Auto-fit bounds: the largest |x|,|y| across all frames, padded 10 %.
pub fn auto_bounds(rec: &Recording) -> f32 {
    let mut m = 0.0f32;
    for f in &rec.frames {
        for p in &f.positions {
            m = m.max(p[0].abs()).max(p[1].abs());
        }
    }
    (m * 1.1).max(1e-3)
}

/// Render every frame of a recording into `dir/frame_NNNN.pgm`; returns the
/// number of images written.
pub fn render_recording(
    rec: &Recording,
    dir: impl AsRef<Path>,
    size: usize,
) -> Result<usize, RenderError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let bounds = auto_bounds(rec);
    for (i, f) in rec.frames.iter().enumerate() {
        render_frame(f, size, size, bounds)?.write_pgm(dir.join(format!("frame_{i:04}.pgm")))?;
    }
    Ok(rec.frames.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with(positions: Vec<[f32; 3]>) -> Frame {
        Frame {
            time: 0.0,
            step: 0,
            positions,
            energy_drift: 0.0,
        }
    }

    #[test]
    fn single_particle_lights_its_pixel() {
        let f = frame_with(vec![[0.0, 0.0, 0.0]]);
        let img = render_frame(&f, 64, 64, 1.0).unwrap();
        // Center pixel bright, corners dark.
        let cx = (0.5 * 63.0) as usize;
        assert_eq!(img.at(cx, cx), 255);
        assert_eq!(img.at(0, 0), 0);
        assert_eq!(img.at(63, 63), 0);
    }

    #[test]
    fn out_of_bounds_particles_are_clipped() {
        let f = frame_with(vec![[100.0, 0.0, 0.0], [0.0, -100.0, 0.0]]);
        let img = render_frame(&f, 32, 32, 1.0).unwrap();
        assert!(img.pixels.iter().all(|&p| p == 0));
    }

    #[test]
    fn y_axis_points_up() {
        // A particle at +y should land in the top half of the image.
        let f = frame_with(vec![[0.0, 0.9, 0.0]]);
        let img = render_frame(&f, 32, 32, 1.0).unwrap();
        let bright_y = (0..32)
            .flat_map(|y| (0..32).map(move |x| (x, y)))
            .find(|&(x, y)| img.at(x, y) > 0)
            .map(|(_, y)| y)
            .unwrap();
        assert!(
            bright_y < 8,
            "bright pixel at row {bright_y}, expected near the top"
        );
    }

    #[test]
    fn pgm_header_is_wellformed() {
        let img = render_frame(&frame_with(vec![[0.0, 0.0, 0.0]]), 16, 8, 1.0).unwrap();
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(pgm.len(), "P5\n16 8\n255\n".len() + 16 * 8);
    }

    #[test]
    fn ascii_preview_has_requested_shape() {
        let img = render_frame(&frame_with(vec![[0.0, 0.0, 0.0]]), 64, 64, 1.0).unwrap();
        let a = img.ascii_preview(32);
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines.iter().all(|l| l.chars().count() == 32));
        assert!(lines.len() >= 4);
        assert!(
            a.contains('@') || a.contains('%'),
            "the splat should be visible"
        );
    }

    #[test]
    fn auto_bounds_covers_everything() {
        let mut rec = Recording::new(2, 1);
        rec.frames
            .push(frame_with(vec![[3.0, -7.0, 0.0], [1.0, 2.0, 0.0]]));
        let b = auto_bounds(&rec);
        assert!((b - 7.7).abs() < 1e-4);
    }

    #[test]
    fn degenerate_requests_are_typed_errors_not_panics() {
        let f = frame_with(vec![[0.0, 0.0, 0.0]]);
        assert!(matches!(
            render_frame(&f, 4, 64, 1.0),
            Err(RenderError::BadSize { width: 4, .. })
        ));
        assert!(matches!(
            render_frame(&f, 64, 64, 0.0),
            Err(RenderError::BadBounds { .. })
        ));
        assert!(matches!(
            render_frame(&f, 64, 64, f32::NAN),
            Err(RenderError::BadBounds { .. })
        ));
        assert!(matches!(
            render_frame(&f, 64, 64, f32::INFINITY),
            Err(RenderError::BadBounds { .. })
        ));
    }

    #[test]
    fn render_recording_writes_files() {
        let mut rec = Recording::new(1, 1);
        rec.frames.push(frame_with(vec![[0.0, 0.0, 0.0]]));
        rec.frames.push(frame_with(vec![[0.5, 0.5, 0.0]]));
        let dir = std::env::temp_dir().join(format!("gravit_render_test_{}", std::process::id()));
        let n = render_recording(&rec, &dir, 32).unwrap();
        assert_eq!(n, 2);
        assert!(dir.join("frame_0000.pgm").exists());
        assert!(dir.join("frame_0001.pgm").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
