//! Simulation configuration.

use crate::backend::{Backend, FaultPolicy};
use crate::recovery::RecoveryPolicy;
use nbody::model::{Bodies, ForceParams};
use nbody::spawn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Initial-condition generators (Gravit's spawn scripts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpawnKind {
    /// Uniform ball of the given radius.
    UniformBall {
        /// Ball radius.
        radius: f32,
    },
    /// Plummer-like sphere with scale length `a`.
    Plummer {
        /// Scale length.
        a: f32,
    },
    /// Rotating disk galaxy of the given radius.
    DiskGalaxy {
        /// Disk radius.
        radius: f32,
    },
    /// Two colliding disk galaxies.
    Collision {
        /// Initial separation.
        separation: f32,
        /// Approach speed of the second galaxy.
        approach_speed: f32,
    },
}

impl SpawnKind {
    /// Generate `n` bodies deterministically from `seed`. `n == 0` yields an
    /// empty set (the spawners themselves require a positive count).
    pub fn generate(self, n: usize, g: f32, seed: u64) -> Bodies {
        if n == 0 {
            return Bodies::default();
        }
        match self {
            SpawnKind::UniformBall { radius } => spawn::uniform_ball(n, radius, 1.0, seed),
            SpawnKind::Plummer { a } => spawn::plummer(n, a, 1.0, seed),
            SpawnKind::DiskGalaxy { radius } => spawn::disk_galaxy(n, radius, 1.0, g, seed),
            SpawnKind::Collision {
                separation,
                approach_speed,
            } => spawn::colliding_galaxies(n / 2, separation, approach_speed, seed),
        }
    }
}

/// Time integrator choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Integrator {
    /// Semi-implicit Euler (Gravit's simple update).
    Euler,
    /// Leapfrog kick-drift-kick.
    Leapfrog,
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of bodies.
    pub n: usize,
    /// Workload generator.
    pub spawn: SpawnKind,
    /// RNG seed for the workload.
    pub seed: u64,
    /// Time step.
    pub dt: f32,
    /// Force-law parameters.
    pub force: ForceParams,
    /// Integrator.
    pub integrator: Integrator,
    /// Force backend.
    pub backend: Backend,
    /// What to do when the simulated device faults.
    pub fault_policy: FaultPolicy,
    /// Retry/backoff/checkpoint policy for transient faults.
    pub recovery: RecoveryPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 2048,
            spawn: SpawnKind::DiskGalaxy { radius: 5.0 },
            seed: 42,
            dt: 0.005,
            force: ForceParams::default(),
            integrator: Integrator::Leapfrog,
            backend: Backend::CpuParallel,
            fault_policy: FaultPolicy::default(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// A rejected [`SimConfig`], with enough context to print an actionable
/// message. Surfaced by [`SimConfig::validate`] and threaded through
/// [`Simulation::new`](crate::sim::Simulation::new) to the CLI, which exits
/// with status 2 — configuration mistakes are usage errors, never panics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConfigError {
    /// `dt` must be positive and finite.
    BadTimeStep {
        /// The offending value.
        dt: f32,
    },
    /// Softening must be non-negative and finite.
    BadSoftening {
        /// The offending value.
        softening: f32,
    },
    /// The gravitational constant must be finite.
    BadGravity {
        /// The offending value.
        g: f32,
    },
    /// A Barnes–Hut opening angle must be positive and finite.
    BadOpeningAngle {
        /// The offending value.
        theta: f32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadTimeStep { dt } => {
                write!(f, "time step must be positive and finite, got dt = {dt}")
            }
            ConfigError::BadSoftening { softening } => {
                write!(
                    f,
                    "softening must be non-negative and finite, got {softening}"
                )
            }
            ConfigError::BadGravity { g } => {
                write!(f, "gravitational constant must be finite, got G = {g}")
            }
            ConfigError::BadOpeningAngle { theta } => {
                write!(
                    f,
                    "Barnes-Hut opening angle must be positive and finite, got θ = {theta}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Validate the configuration. An empty body set (`n == 0`) is valid:
    /// every backend treats it as a no-op frame.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.dt > 0.0 && self.dt.is_finite()) {
            return Err(ConfigError::BadTimeStep { dt: self.dt });
        }
        if !(self.force.softening >= 0.0 && self.force.softening.is_finite()) {
            return Err(ConfigError::BadSoftening {
                softening: self.force.softening,
            });
        }
        if !self.force.g.is_finite() {
            return Err(ConfigError::BadGravity { g: self.force.g });
        }
        if let Backend::BarnesHut { theta } = self.backend {
            if !(theta > 0.0 && theta.is_finite()) {
                return Err(ConfigError::BadOpeningAngle { theta });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn spawners_generate_requested_counts() {
        for kind in [
            SpawnKind::UniformBall { radius: 3.0 },
            SpawnKind::Plummer { a: 1.0 },
            SpawnKind::DiskGalaxy { radius: 4.0 },
        ] {
            let b = kind.generate(500, 1.0, 7);
            assert_eq!(b.len(), 500, "{kind:?}");
            b.validate();
        }
        // Collision spawns n/2 per galaxy.
        let b = SpawnKind::Collision {
            separation: 20.0,
            approach_speed: 0.5,
        }
        .generate(600, 1.0, 7);
        assert_eq!(b.len(), 600);
    }

    #[test]
    fn bad_configs_are_typed_errors_not_panics() {
        let c = SimConfig {
            dt: 0.0,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::BadTimeStep { dt: 0.0 }));
        let c = SimConfig {
            dt: f32::NAN,
            ..SimConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BadTimeStep { .. })));
        let mut c = SimConfig::default();
        c.force.softening = -1.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadSoftening { softening: -1.0 })
        );
        let c = SimConfig {
            backend: Backend::BarnesHut { theta: 0.0 },
            ..SimConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadOpeningAngle { .. })
        ));
        let msg = c.validate().unwrap_err().to_string();
        assert!(
            msg.contains("opening angle"),
            "message must be readable: {msg}"
        );
    }
}
