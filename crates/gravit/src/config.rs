//! Simulation configuration.

use crate::backend::{Backend, FaultPolicy};
use nbody::model::{Bodies, ForceParams};
use nbody::spawn;
use serde::{Deserialize, Serialize};

/// Initial-condition generators (Gravit's spawn scripts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpawnKind {
    /// Uniform ball of the given radius.
    UniformBall {
        /// Ball radius.
        radius: f32,
    },
    /// Plummer-like sphere with scale length `a`.
    Plummer {
        /// Scale length.
        a: f32,
    },
    /// Rotating disk galaxy of the given radius.
    DiskGalaxy {
        /// Disk radius.
        radius: f32,
    },
    /// Two colliding disk galaxies.
    Collision {
        /// Initial separation.
        separation: f32,
        /// Approach speed of the second galaxy.
        approach_speed: f32,
    },
}

impl SpawnKind {
    /// Generate `n` bodies deterministically from `seed`. `n == 0` yields an
    /// empty set (the spawners themselves require a positive count).
    pub fn generate(self, n: usize, g: f32, seed: u64) -> Bodies {
        if n == 0 {
            return Bodies::default();
        }
        match self {
            SpawnKind::UniformBall { radius } => spawn::uniform_ball(n, radius, 1.0, seed),
            SpawnKind::Plummer { a } => spawn::plummer(n, a, 1.0, seed),
            SpawnKind::DiskGalaxy { radius } => spawn::disk_galaxy(n, radius, 1.0, g, seed),
            SpawnKind::Collision { separation, approach_speed } => {
                spawn::colliding_galaxies(n / 2, separation, approach_speed, seed)
            }
        }
    }
}

/// Time integrator choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Integrator {
    /// Semi-implicit Euler (Gravit's simple update).
    Euler,
    /// Leapfrog kick-drift-kick.
    Leapfrog,
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of bodies.
    pub n: usize,
    /// Workload generator.
    pub spawn: SpawnKind,
    /// RNG seed for the workload.
    pub seed: u64,
    /// Time step.
    pub dt: f32,
    /// Force-law parameters.
    pub force: ForceParams,
    /// Integrator.
    pub integrator: Integrator,
    /// Force backend.
    pub backend: Backend,
    /// What to do when the simulated device faults.
    pub fault_policy: FaultPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 2048,
            spawn: SpawnKind::DiskGalaxy { radius: 5.0 },
            seed: 42,
            dt: 0.005,
            force: ForceParams::default(),
            integrator: Integrator::Leapfrog,
            backend: Backend::CpuParallel,
            fault_policy: FaultPolicy::default(),
        }
    }
}

impl SimConfig {
    /// Validate the configuration, panicking on nonsense. An empty body set
    /// (`n == 0`) is valid: every backend treats it as a no-op frame.
    pub fn validate(&self) {
        assert!(self.dt > 0.0 && self.dt.is_finite(), "bad time step");
        assert!(self.force.softening >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SimConfig::default().validate();
    }

    #[test]
    fn spawners_generate_requested_counts() {
        for kind in [
            SpawnKind::UniformBall { radius: 3.0 },
            SpawnKind::Plummer { a: 1.0 },
            SpawnKind::DiskGalaxy { radius: 4.0 },
        ] {
            let b = kind.generate(500, 1.0, 7);
            assert_eq!(b.len(), 500, "{kind:?}");
            b.validate();
        }
        // Collision spawns n/2 per galaxy.
        let b = SpawnKind::Collision { separation: 20.0, approach_speed: 0.5 }.generate(600, 1.0, 7);
        assert_eq!(b.len(), 600);
    }

    #[test]
    #[should_panic]
    fn zero_dt_rejected() {
        let c = SimConfig { dt: 0.0, ..SimConfig::default() };
        c.validate();
    }
}
