//! The simulation loop.

use crate::config::{Integrator, SimConfig};
use nbody::energy::{momentum, total_energy};
use nbody::integrator::{step_euler, step_leapfrog};
use nbody::model::Bodies;
use simcore::Vec3;

/// A running simulation.
#[derive(Debug)]
pub struct Simulation {
    /// Configuration (immutable after construction).
    pub config: SimConfig,
    /// Current body state.
    pub bodies: Bodies,
    /// Current accelerations (of the last computed step).
    pub accels: Vec<Vec3>,
    /// Simulated time.
    pub time: f64,
    /// Steps taken.
    pub steps: u64,
    energy0: f64,
}

impl Simulation {
    /// Initialize from a configuration: spawn the workload and compute the
    /// initial accelerations.
    pub fn new(config: SimConfig) -> Simulation {
        config.validate();
        let bodies = config.spawn.generate(config.n, config.force.g, config.seed);
        let accels = config.backend.accelerations(&bodies, &config.force);
        let energy0 = total_energy(&bodies, &config.force);
        Simulation { config, bodies, accels, time: 0.0, steps: 0, energy0 }
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        let dt = self.config.dt;
        match self.config.integrator {
            Integrator::Euler => {
                step_euler(&mut self.bodies, &self.accels, dt, None);
                self.accels = self.config.backend.accelerations(&self.bodies, &self.config.force);
            }
            Integrator::Leapfrog => {
                let backend = self.config.backend;
                let force = self.config.force;
                self.accels = step_leapfrog(&mut self.bodies, &self.accels, dt, None, |b| {
                    backend.accelerations(b, &force)
                });
            }
        }
        self.time += dt as f64;
        self.steps += 1;
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Relative energy drift since t = 0 (diagnostic; small for leapfrog).
    pub fn energy_drift(&self) -> f64 {
        let e = total_energy(&self.bodies, &self.config.force);
        if self.energy0 == 0.0 {
            0.0
        } else {
            ((e - self.energy0) / self.energy0).abs()
        }
    }

    /// Current total linear momentum magnitude (diagnostic; conserved by the
    /// pairwise force).
    pub fn momentum_magnitude(&self) -> f64 {
        let m = momentum(&self.bodies);
        (m[0] * m[0] + m[1] * m[1] + m[2] * m[2]).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::config::SpawnKind;
    use gpu_kernels::force::OptLevel;
    use gpu_sim::DriverModel;

    fn small_config(backend: Backend) -> SimConfig {
        SimConfig {
            n: 256,
            spawn: SpawnKind::UniformBall { radius: 3.0 },
            seed: 9,
            dt: 0.005,
            backend,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_advances_time_and_steps() {
        let mut sim = Simulation::new(small_config(Backend::CpuParallel));
        sim.run(10);
        assert_eq!(sim.steps, 10);
        assert!((sim.time - 0.05).abs() < 1e-6); // dt is f32; time accumulates its rounding
        sim.bodies.validate();
    }

    #[test]
    fn leapfrog_keeps_energy_drift_small() {
        let mut sim = Simulation::new(small_config(Backend::CpuParallel));
        sim.run(100);
        assert!(sim.energy_drift() < 0.05, "drift {}", sim.energy_drift());
    }

    #[test]
    fn momentum_stays_conserved() {
        let mut sim = Simulation::new(small_config(Backend::CpuSerial));
        let m0 = sim.momentum_magnitude();
        sim.run(50);
        let m1 = sim.momentum_magnitude();
        // Started at rest: momentum ~0 and stays ~0 relative to |p|·|v| scale.
        let scale: f64 = (0..sim.bodies.len())
            .map(|i| (sim.bodies.mass[i] * sim.bodies.vel[i].norm()) as f64)
            .sum();
        assert!(m0 <= 1e-6);
        assert!(m1 < 1e-3 * scale.max(1e-9), "momentum {m1} vs scale {scale}");
    }

    #[test]
    fn gpu_backend_trajectory_matches_cpu_exactly() {
        let mut cpu = Simulation::new(small_config(Backend::CpuSerial));
        let mut gpu = Simulation::new(small_config(Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda10,
        }));
        cpu.run(5);
        gpu.run(5);
        assert_eq!(cpu.bodies, gpu.bodies, "trajectories must be bit-identical");
    }
}
