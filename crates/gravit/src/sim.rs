//! The simulation loop.

use crate::backend::FaultReport;
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::config::{ConfigError, Integrator, SimConfig};
use gpu_sim::fault::{DeviceError, DeviceResult};
use gpu_sim::transient::TransientFaultPlan;
use nbody::energy::{momentum, total_energy};
use nbody::integrator::{step_euler, step_leapfrog};
use nbody::model::Bodies;
use simcore::Vec3;
use std::fmt;

/// Why a simulation could not be constructed (or resumed).
#[derive(Debug)]
pub enum SimError {
    /// The configuration was rejected — a usage error (CLI exit code 2).
    Config(ConfigError),
    /// The device faulted and the policy said fail fast (CLI exit code 3).
    Device(DeviceError),
    /// The checkpoint could not be loaded or does not match the config.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Device(e) => write!(f, "{e}"),
            SimError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<DeviceError> for SimError {
    fn from(e: DeviceError) -> Self {
        SimError::Device(e)
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        SimError::Checkpoint(e)
    }
}

/// A running simulation.
///
/// Device faults surface according to the configured
/// [`FaultPolicy`](crate::backend::FaultPolicy): with `FailFast`,
/// [`step`](Simulation::step) returns the typed [`DeviceError`]; with
/// `FallbackToCpu`, the step completes on the CPU (bit-identical physics) and
/// the fault is appended to [`fault_reports`](Simulation::fault_reports).
#[derive(Debug)]
pub struct Simulation {
    /// Configuration (immutable after construction).
    pub config: SimConfig,
    /// Current body state.
    pub bodies: Bodies,
    /// Current accelerations (of the last computed step).
    pub accels: Vec<Vec3>,
    /// Simulated time.
    pub time: f64,
    /// Steps taken.
    pub steps: u64,
    /// Device faults survived via CPU fallback or retry, in occurrence order.
    pub fault_reports: Vec<FaultReport>,
    energy0: f64,
    /// Transient-fault injection plan (chaos testing); `None` in production.
    fault_plan: Option<TransientFaultPlan>,
}

impl Simulation {
    /// Initialize from a configuration: spawn the workload and compute the
    /// initial accelerations. A rejected configuration is a typed
    /// [`SimError::Config`], never a panic.
    pub fn new(config: SimConfig) -> Result<Simulation, SimError> {
        config.validate()?;
        let bodies = config.spawn.generate(config.n, config.force.g, config.seed);
        let mut fault_reports = Vec::new();
        let accels = compute_accels(&config, &bodies, &mut fault_reports, None)?;
        let energy0 = total_energy(&bodies, &config.force);
        Ok(Simulation {
            config,
            bodies,
            accels,
            time: 0.0,
            steps: 0,
            fault_reports,
            energy0,
            fault_plan: None,
        })
    }

    /// Rebuild a simulation mid-run from a [`Checkpoint`]: the resumed run
    /// continues bit-identical to the uninterrupted one. The configuration
    /// must describe the same run (same n, seed, dt, integrator, backend) or
    /// a [`SimError::Checkpoint`] config-mismatch is returned.
    ///
    /// The resuming device's capacity is validated against the frame plan
    /// (see [`crate::pressure::plan_frame`]) *before* any upload: a smaller
    /// device than the one that wrote the checkpoint degrades down the
    /// ladder (full → chunked → CPU, bit-identical physics) exactly like a
    /// fresh run would. Under [`FaultPolicy::FailFast`](crate::backend::FaultPolicy)
    /// a capacity that cannot admit even the smallest chunk is the typed
    /// admission `OutOfMemory` here at resume time — not a raw device fault
    /// in the middle of the first restored frame.
    pub fn resume(config: SimConfig, ckpt: &Checkpoint) -> Result<Simulation, SimError> {
        config.validate()?;
        ckpt.compatible_with(&config)?;
        if let crate::backend::Backend::GpuSim { level, .. } = config.backend {
            let plan = crate::pressure::plan_frame(
                level,
                config.n as u32,
                config.recovery.device_capacity,
            );
            if plan.mode == crate::pressure::ExecMode::Cpu
                && config.fault_policy == crate::backend::FaultPolicy::FailFast
            {
                if let Some(root) = plan.root {
                    return Err(SimError::Device(root));
                }
            }
        }
        let mut bodies = Bodies::with_capacity(ckpt.n);
        for i in 0..ckpt.n {
            let p = ckpt.pos[i];
            let v = ckpt.vel[i];
            bodies.push(
                Vec3 {
                    x: p[0],
                    y: p[1],
                    z: p[2],
                },
                Vec3 {
                    x: v[0],
                    y: v[1],
                    z: v[2],
                },
                ckpt.mass[i],
            );
        }
        let accels = ckpt
            .accels
            .iter()
            .map(|a| Vec3 {
                x: a[0],
                y: a[1],
                z: a[2],
            })
            .collect();
        Ok(Simulation {
            config,
            bodies,
            accels,
            time: f64::from_bits(ckpt.time_bits),
            steps: ckpt.steps,
            fault_reports: ckpt.fault_reports.clone(),
            energy0: f64::from_bits(ckpt.energy0_bits),
            fault_plan: None,
        })
    }

    /// Capture the complete resumable state at the current step boundary.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            n: self.config.n,
            seed: self.config.seed,
            dt_bits: self.config.dt.to_bits(),
            integrator: format!("{:?}", self.config.integrator),
            backend: self.config.backend.label(),
            time_bits: self.time.to_bits(),
            steps: self.steps,
            pos: self.bodies.pos.iter().map(|p| p.to_array()).collect(),
            vel: self.bodies.vel.iter().map(|v| v.to_array()).collect(),
            mass: self.bodies.mass.clone(),
            accels: self.accels.iter().map(|a| a.to_array()).collect(),
            energy0_bits: self.energy0.to_bits(),
            fault_reports: self.fault_reports.clone(),
        }
    }

    /// Inject transient device faults from `plan` into every subsequent GPU
    /// frame (chaos testing; see `gpu_sim::transient`).
    pub fn set_transient_faults(&mut self, plan: TransientFaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The active transient-fault plan, if any (its launch counter tells how
    /// many device launches the simulation has attempted).
    pub fn transient_faults(&self) -> Option<&TransientFaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Take the transient-fault plan out of the simulation, launch counter
    /// included. The fleet harvests a device's plan here at slice
    /// boundaries so its fault schedule stays continuous across the jobs it
    /// hosts.
    pub fn take_transient_faults(&mut self) -> Option<TransientFaultPlan> {
        self.fault_plan.take()
    }

    /// Advance one time step.
    pub fn step(&mut self) -> DeviceResult<()> {
        let dt = self.config.dt;
        match self.config.integrator {
            Integrator::Euler => {
                step_euler(&mut self.bodies, &self.accels, dt, None);
                self.accels = compute_accels(
                    &self.config,
                    &self.bodies,
                    &mut self.fault_reports,
                    self.fault_plan.as_mut(),
                )?;
            }
            Integrator::Leapfrog => {
                let backend = self.config.backend;
                let force = self.config.force;
                let policy = self.config.fault_policy;
                let recovery = self.config.recovery;
                let mut plan = self.fault_plan.take();
                // `step_leapfrog` takes an infallible closure; a fail-fast
                // fault is parked here and returned after the call. (The
                // zero-filled stand-in accelerations are never observed: the
                // error abandons the simulation state.)
                let mut pending: Option<DeviceError> = None;
                let mut reports: Vec<FaultReport> = Vec::new();
                self.accels =
                    step_leapfrog(&mut self.bodies, &self.accels, dt, None, |b| match backend
                        .accelerations_recovering(b, &force, policy, &recovery, plan.as_mut())
                    {
                        Ok(r) => {
                            reports.extend(r.fault);
                            r.accels
                        }
                        Err(e) => {
                            pending = Some(e);
                            vec![Vec3::ZERO; b.len()]
                        }
                    });
                self.fault_plan = plan;
                self.fault_reports.extend(reports);
                if let Some(e) = pending {
                    return Err(e);
                }
            }
        }
        self.time += dt as f64;
        self.steps += 1;
        Ok(())
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: u64) -> DeviceResult<()> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Relative energy drift since t = 0 (diagnostic; small for leapfrog).
    pub fn energy_drift(&self) -> f64 {
        let e = total_energy(&self.bodies, &self.config.force);
        if self.energy0 == 0.0 {
            0.0
        } else {
            ((e - self.energy0) / self.energy0).abs()
        }
    }

    /// Current total linear momentum magnitude (diagnostic; conserved by the
    /// pairwise force).
    pub fn momentum_magnitude(&self) -> f64 {
        let m = momentum(&self.bodies);
        (m[0] * m[0] + m[1] * m[1] + m[2] * m[2]).sqrt()
    }
}

/// One force evaluation under the configured fault and recovery policies,
/// appending any survived fault (with its retry history) to `reports`.
fn compute_accels(
    config: &SimConfig,
    bodies: &Bodies,
    reports: &mut Vec<FaultReport>,
    chaos: Option<&mut TransientFaultPlan>,
) -> DeviceResult<Vec<Vec3>> {
    let r = config.backend.accelerations_recovering(
        bodies,
        &config.force,
        config.fault_policy,
        &config.recovery,
        chaos,
    )?;
    reports.extend(r.fault);
    Ok(r.accels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::config::SpawnKind;
    use gpu_kernels::force::OptLevel;
    use gpu_sim::DriverModel;

    fn small_config(backend: Backend) -> SimConfig {
        SimConfig {
            n: 256,
            spawn: SpawnKind::UniformBall { radius: 3.0 },
            seed: 9,
            dt: 0.005,
            backend,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_advances_time_and_steps() {
        let mut sim = Simulation::new(small_config(Backend::CpuParallel)).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.steps, 10);
        assert!((sim.time - 0.05).abs() < 1e-6); // dt is f32; time accumulates its rounding
        sim.bodies.validate();
        assert!(sim.fault_reports.is_empty());
    }

    #[test]
    fn leapfrog_keeps_energy_drift_small() {
        let mut sim = Simulation::new(small_config(Backend::CpuParallel)).unwrap();
        sim.run(100).unwrap();
        assert!(sim.energy_drift() < 0.05, "drift {}", sim.energy_drift());
    }

    #[test]
    fn momentum_stays_conserved() {
        let mut sim = Simulation::new(small_config(Backend::CpuSerial)).unwrap();
        let m0 = sim.momentum_magnitude();
        sim.run(50).unwrap();
        let m1 = sim.momentum_magnitude();
        // Started at rest: momentum ~0 and stays ~0 relative to |p|·|v| scale.
        let scale: f64 = (0..sim.bodies.len())
            .map(|i| (sim.bodies.mass[i] * sim.bodies.vel[i].norm()) as f64)
            .sum();
        assert!(m0 <= 1e-6);
        assert!(
            m1 < 1e-3 * scale.max(1e-9),
            "momentum {m1} vs scale {scale}"
        );
    }

    #[test]
    fn gpu_backend_trajectory_matches_cpu_exactly() {
        let mut cpu = Simulation::new(small_config(Backend::CpuSerial)).unwrap();
        let mut gpu = Simulation::new(small_config(Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda10,
        }))
        .unwrap();
        cpu.run(5).unwrap();
        gpu.run(5).unwrap();
        assert_eq!(cpu.bodies, gpu.bodies, "trajectories must be bit-identical");
    }

    #[test]
    fn empty_simulation_runs_without_crashing() {
        let cfg = SimConfig {
            n: 0,
            ..small_config(Backend::CpuParallel)
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run(3).unwrap();
        assert_eq!(sim.steps, 3);
        assert_eq!(sim.bodies.len(), 0);
        assert_eq!(sim.energy_drift(), 0.0);
    }
}
