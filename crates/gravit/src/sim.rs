//! The simulation loop.

use crate::backend::FaultReport;
use crate::config::{Integrator, SimConfig};
use gpu_sim::fault::{DeviceError, DeviceResult};
use nbody::energy::{momentum, total_energy};
use nbody::integrator::{step_euler, step_leapfrog};
use nbody::model::Bodies;
use simcore::Vec3;

/// A running simulation.
///
/// Device faults surface according to the configured
/// [`FaultPolicy`](crate::backend::FaultPolicy): with `FailFast`,
/// [`step`](Simulation::step) returns the typed [`DeviceError`]; with
/// `FallbackToCpu`, the step completes on the CPU (bit-identical physics) and
/// the fault is appended to [`fault_reports`](Simulation::fault_reports).
#[derive(Debug)]
pub struct Simulation {
    /// Configuration (immutable after construction).
    pub config: SimConfig,
    /// Current body state.
    pub bodies: Bodies,
    /// Current accelerations (of the last computed step).
    pub accels: Vec<Vec3>,
    /// Simulated time.
    pub time: f64,
    /// Steps taken.
    pub steps: u64,
    /// Device faults survived via CPU fallback, in occurrence order.
    pub fault_reports: Vec<FaultReport>,
    energy0: f64,
}

impl Simulation {
    /// Initialize from a configuration: spawn the workload and compute the
    /// initial accelerations.
    pub fn new(config: SimConfig) -> DeviceResult<Simulation> {
        config.validate();
        let bodies = config.spawn.generate(config.n, config.force.g, config.seed);
        let mut fault_reports = Vec::new();
        let accels = compute_accels(&config, &bodies, &mut fault_reports)?;
        let energy0 = total_energy(&bodies, &config.force);
        Ok(Simulation { config, bodies, accels, time: 0.0, steps: 0, fault_reports, energy0 })
    }

    /// Advance one time step.
    pub fn step(&mut self) -> DeviceResult<()> {
        let dt = self.config.dt;
        match self.config.integrator {
            Integrator::Euler => {
                step_euler(&mut self.bodies, &self.accels, dt, None);
                self.accels = compute_accels(&self.config, &self.bodies, &mut self.fault_reports)?;
            }
            Integrator::Leapfrog => {
                let backend = self.config.backend;
                let force = self.config.force;
                let policy = self.config.fault_policy;
                // `step_leapfrog` takes an infallible closure; a fail-fast
                // fault is parked here and returned after the call. (The
                // zero-filled stand-in accelerations are never observed: the
                // error abandons the simulation state.)
                let mut pending: Option<DeviceError> = None;
                let mut reports: Vec<FaultReport> = Vec::new();
                self.accels = step_leapfrog(&mut self.bodies, &self.accels, dt, None, |b| {
                    match backend.accelerations_with_policy(b, &force, policy) {
                        Ok(r) => {
                            reports.extend(r.fault);
                            r.accels
                        }
                        Err(e) => {
                            pending = Some(e);
                            vec![Vec3::ZERO; b.len()]
                        }
                    }
                });
                self.fault_reports.extend(reports);
                if let Some(e) = pending {
                    return Err(e);
                }
            }
        }
        self.time += dt as f64;
        self.steps += 1;
        Ok(())
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: u64) -> DeviceResult<()> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Relative energy drift since t = 0 (diagnostic; small for leapfrog).
    pub fn energy_drift(&self) -> f64 {
        let e = total_energy(&self.bodies, &self.config.force);
        if self.energy0 == 0.0 {
            0.0
        } else {
            ((e - self.energy0) / self.energy0).abs()
        }
    }

    /// Current total linear momentum magnitude (diagnostic; conserved by the
    /// pairwise force).
    pub fn momentum_magnitude(&self) -> f64 {
        let m = momentum(&self.bodies);
        (m[0] * m[0] + m[1] * m[1] + m[2] * m[2]).sqrt()
    }
}

/// One force evaluation under the configured policy, appending any survived
/// fault to `reports`.
fn compute_accels(
    config: &SimConfig,
    bodies: &Bodies,
    reports: &mut Vec<FaultReport>,
) -> DeviceResult<Vec<Vec3>> {
    let r = config.backend.accelerations_with_policy(bodies, &config.force, config.fault_policy)?;
    reports.extend(r.fault);
    Ok(r.accels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::config::SpawnKind;
    use gpu_kernels::force::OptLevel;
    use gpu_sim::DriverModel;

    fn small_config(backend: Backend) -> SimConfig {
        SimConfig {
            n: 256,
            spawn: SpawnKind::UniformBall { radius: 3.0 },
            seed: 9,
            dt: 0.005,
            backend,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_advances_time_and_steps() {
        let mut sim = Simulation::new(small_config(Backend::CpuParallel)).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.steps, 10);
        assert!((sim.time - 0.05).abs() < 1e-6); // dt is f32; time accumulates its rounding
        sim.bodies.validate();
        assert!(sim.fault_reports.is_empty());
    }

    #[test]
    fn leapfrog_keeps_energy_drift_small() {
        let mut sim = Simulation::new(small_config(Backend::CpuParallel)).unwrap();
        sim.run(100).unwrap();
        assert!(sim.energy_drift() < 0.05, "drift {}", sim.energy_drift());
    }

    #[test]
    fn momentum_stays_conserved() {
        let mut sim = Simulation::new(small_config(Backend::CpuSerial)).unwrap();
        let m0 = sim.momentum_magnitude();
        sim.run(50).unwrap();
        let m1 = sim.momentum_magnitude();
        // Started at rest: momentum ~0 and stays ~0 relative to |p|·|v| scale.
        let scale: f64 = (0..sim.bodies.len())
            .map(|i| (sim.bodies.mass[i] * sim.bodies.vel[i].norm()) as f64)
            .sum();
        assert!(m0 <= 1e-6);
        assert!(m1 < 1e-3 * scale.max(1e-9), "momentum {m1} vs scale {scale}");
    }

    #[test]
    fn gpu_backend_trajectory_matches_cpu_exactly() {
        let mut cpu = Simulation::new(small_config(Backend::CpuSerial)).unwrap();
        let mut gpu = Simulation::new(small_config(Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda10,
        }))
        .unwrap();
        cpu.run(5).unwrap();
        gpu.run(5).unwrap();
        assert_eq!(cpu.bodies, gpu.bodies, "trajectories must be bit-identical");
    }

    #[test]
    fn empty_simulation_runs_without_crashing() {
        let cfg = SimConfig { n: 0, ..small_config(Backend::CpuParallel) };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run(3).unwrap();
        assert_eq!(sim.steps, 3);
        assert_eq!(sim.bodies.len(), 0);
        assert_eq!(sim.energy_drift(), 0.0);
    }
}
