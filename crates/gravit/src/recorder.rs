//! Frame recording: positions (optionally strided) per step, serialized to
//! JSON for offline rendering or analysis.

use crate::sim::Simulation;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One recorded frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Simulated time.
    pub time: f64,
    /// Step index.
    pub step: u64,
    /// Recorded positions as `[x, y, z]` triples.
    pub positions: Vec<[f32; 3]>,
    /// Relative energy drift at this frame.
    pub energy_drift: f64,
}

/// A recording of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// Body count of the simulation.
    pub n: usize,
    /// Every `stride`-th body is recorded.
    pub stride: usize,
    /// The frames.
    pub frames: Vec<Frame>,
}

impl Recording {
    /// New recording sampling every `stride`-th body. A zero stride is
    /// clamped to 1 (record every body) — a degenerate request must not
    /// panic a fleet worker thread.
    pub fn new(n: usize, stride: usize) -> Recording {
        Recording {
            n,
            stride: stride.max(1),
            frames: Vec::new(),
        }
    }

    /// Capture the current simulation state.
    pub fn capture(&mut self, sim: &Simulation) {
        let positions = sim
            .bodies
            .pos
            .iter()
            .step_by(self.stride)
            .map(|p| p.to_array())
            .collect();
        self.frames.push(Frame {
            time: sim.time,
            step: sim.steps,
            positions,
            energy_drift: sim.energy_drift(),
        });
    }

    /// Serialize to pretty JSON. Serialization failure (unrepresentable
    /// state) is a typed error, never a panic.
    pub fn to_json(&self) -> Result<String, RecordingError> {
        serde_json::to_string_pretty(self).map_err(|e| RecordingError::Serialize(e.to_string()))
    }

    /// Write to a file, creating parent directories. Atomic: the JSON goes
    /// to a temp file in the destination directory first and is renamed over
    /// `path`, so a crash mid-write never leaves a truncated recording.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), RecordingError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(RecordingError::Io)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json()?).map_err(RecordingError::Io)?;
        std::fs::rename(&tmp, path).map_err(RecordingError::Io)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Recording> {
        serde_json::from_str(s)
    }

    /// Load a recording file. Missing files, truncation and corrupt JSON are
    /// typed [`RecordingError`]s, never panics.
    pub fn load(path: impl AsRef<Path>) -> Result<Recording, RecordingError> {
        let s = std::fs::read_to_string(path).map_err(RecordingError::Io)?;
        Recording::from_json(&s).map_err(|e| RecordingError::Parse(e.to_string()))
    }
}

/// Why a recording could not be read back or written out.
#[derive(Debug)]
pub enum RecordingError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file exists but is not a valid recording (truncated, corrupted,
    /// or not JSON).
    Parse(String),
    /// The recording could not be serialized.
    Serialize(String),
}

impl std::fmt::Display for RecordingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordingError::Io(e) => write!(f, "recording I/O error: {e}"),
            RecordingError::Parse(e) => write!(f, "recording malformed: {e}"),
            RecordingError::Serialize(e) => write!(f, "recording does not serialize: {e}"),
        }
    }
}

impl std::error::Error for RecordingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::config::{SimConfig, SpawnKind};

    #[test]
    fn capture_and_roundtrip() {
        let cfg = SimConfig {
            n: 64,
            spawn: SpawnKind::UniformBall { radius: 2.0 },
            backend: Backend::CpuSerial,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg).unwrap();
        let mut rec = Recording::new(64, 4);
        rec.capture(&sim);
        sim.run(3).unwrap();
        rec.capture(&sim);
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[0].positions.len(), 16);
        assert_eq!(rec.frames[1].step, 3);
        let json = rec.to_json().unwrap();
        let back = Recording::from_json(&json).unwrap();
        // Positions (f32) roundtrip exactly; f64 metadata may differ by an
        // ulp (serde_json's default float parse is not shortest-roundtrip).
        assert_eq!(back.n, rec.n);
        assert_eq!(back.stride, rec.stride);
        assert_eq!(back.frames.len(), rec.frames.len());
        for (a, b) in back.frames.iter().zip(&rec.frames) {
            assert_eq!(a.positions, b.positions);
            assert_eq!(a.step, b.step);
            assert!((a.time - b.time).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_stride_is_clamped_not_a_panic() {
        assert_eq!(Recording::new(10, 0).stride, 1);
        assert_eq!(Recording::new(10, 3).stride, 3);
    }

    #[test]
    fn write_is_atomic_and_damaged_files_load_as_typed_errors() {
        let dir = std::env::temp_dir().join("gravit-rec-test");
        let path = dir.join("run.json");
        let rec = Recording::new(8, 1);
        rec.write(&path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temp file renamed away"
        );
        assert_eq!(Recording::load(&path).unwrap(), rec);

        // Truncated JSON: a typed parse error, not a panic.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            Recording::load(&path),
            Err(RecordingError::Parse(_))
        ));
        // Valid JSON of the wrong shape: also a parse error.
        std::fs::write(&path, "{\"bogus\": 1}").unwrap();
        assert!(matches!(
            Recording::load(&path),
            Err(RecordingError::Parse(_))
        ));
        // Missing file: an I/O error.
        assert!(matches!(
            Recording::load(dir.join("nope.json")),
            Err(RecordingError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
