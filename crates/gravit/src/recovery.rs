//! Retry/backoff policy for transient device faults.
//!
//! [`crate::backend::FaultPolicy`] decides what a device fault *means*
//! (propagate vs degrade to CPU). A [`RecoveryPolicy`] sits in front of that
//! decision and handles the faults that are worth a second try: the
//! transient classes (`EccMismatch`, `WatchdogTimeout`, `TransientLaunch`,
//! `NonFiniteResult` — see `gpu_sim::fault::FaultKind::is_transient`) vanish
//! when the frame is re-uploaded from host state and re-run, so the backend
//! retries them with a deterministic exponential backoff before giving up
//! and letting the `FaultPolicy` take over. Permanent faults (out-of-bounds,
//! misalignment, …) are *never* retried — they recur by construction and the
//! retries would only delay the diagnosis.

use serde::{Deserialize, Serialize};

/// Deterministic exponential backoff: attempt `k` waits
/// `min(base_ms << k, cap_ms)` milliseconds. With `base_ms == 0` (the
/// default) retries are immediate — correct for the simulated device, where
/// a transient fault does not need wall-clock time to clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffSchedule {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
}

impl Default for BackoffSchedule {
    fn default() -> Self {
        BackoffSchedule {
            base_ms: 0,
            cap_ms: 1000,
        }
    }
}

impl BackoffSchedule {
    /// The delay before retry number `attempt` (0-based), in milliseconds.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        self.base_ms
            .saturating_mul(1u64 << attempt.min(63))
            .min(self.cap_ms)
    }
}

/// How the application recovers from transient device faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Transient-fault retries per frame before the
    /// [`FaultPolicy`](crate::backend::FaultPolicy) decides (fallback or
    /// fail). `0` disables retrying.
    pub max_retries: u32,
    /// Delay schedule between retries.
    pub backoff: BackoffSchedule,
    /// Write a checkpoint every this many steps (`0` disables
    /// checkpointing). Only consulted by the driver loop, not per-frame
    /// recovery.
    pub checkpoint_every: u64,
    /// Warp-instruction budget per kernel launch: a launch exceeding it is
    /// killed as a `WatchdogTimeout` (and retried, since the timeout is
    /// transient). `None` disables the watchdog.
    pub watchdog_instructions: Option<u64>,
    /// Simulated device-memory capacity in bytes. `None` sizes the device to
    /// the frame (unconstrained). With a capacity set, every GPU frame is
    /// admission-checked against it and degrades down the ladder —
    /// full → chunked streaming → CPU — instead of faulting mid-upload (see
    /// [`crate::pressure`]).
    pub device_capacity: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff: BackoffSchedule::default(),
            checkpoint_every: 0,
            watchdog_instructions: None,
            device_capacity: None,
        }
    }
}

/// One retry, as recorded in a
/// [`FaultReport`](crate::backend::FaultReport)'s history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryEvent {
    /// 0-based attempt number that faulted.
    pub attempt: u32,
    /// Fault class name (`FaultKind::name`).
    pub fault: String,
    /// Human-readable fault description.
    pub detail: String,
    /// Backoff waited after this failure, in milliseconds.
    pub backoff_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let b = BackoffSchedule {
            base_ms: 10,
            cap_ms: 60,
        };
        assert_eq!(b.delay_ms(0), 10);
        assert_eq!(b.delay_ms(1), 20);
        assert_eq!(b.delay_ms(2), 40);
        assert_eq!(b.delay_ms(3), 60, "capped");
        assert_eq!(b.delay_ms(63), 60, "shift overflow saturates to the cap");
    }

    #[test]
    fn default_backoff_never_sleeps() {
        let b = BackoffSchedule::default();
        assert!((0..10).all(|k| b.delay_ms(k) == 0));
    }

    #[test]
    fn policy_round_trips_through_json() {
        let p = RecoveryPolicy {
            max_retries: 5,
            backoff: BackoffSchedule {
                base_ms: 2,
                cap_ms: 100,
            },
            checkpoint_every: 16,
            watchdog_instructions: Some(1 << 20),
            device_capacity: Some(1 << 20),
        };
        let json = serde_json::to_string(&p).expect("serialize");
        let back: RecoveryPolicy = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, p);
    }
}
