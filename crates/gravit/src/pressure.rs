//! Memory-pressure planning and chunked streaming execution.
//!
//! The paper fits Gravit's large data-structures into the 8800 GTX's global
//! memory; this module handles the case the paper's subject matter guarantees
//! at scale — the working set that *doesn't* fit. Before any upload, a frame
//! is planned against the configured device capacity
//! ([`RecoveryPolicy::device_capacity`](crate::recovery::RecoveryPolicy)):
//!
//! * **full** — the whole working set is resident (the normal path);
//! * **chunked** — the O(n²) frame is tiled over body chunks: the targets
//!   and the sources stream through a bounded device footprint, the
//!   acceleration accumulator is carried on device between launches, and the
//!   result is **bit-identical** to the unconstrained run (see
//!   [`gpu_kernels::chunk`] for why);
//! * **cpu** — even the smallest chunk does not fit; the CPU takes the
//!   frame (bit-identical physics, as everywhere in this workspace).
//!
//! The descent full → chunked (halving down to one block) → CPU is the
//! *degradation ladder*; every downgrade is recorded as a [`DegradeEvent`]
//! and surfaces in the frame's [`FaultReport`](crate::backend::FaultReport).
//! Planning is an admission check: the typed `OutOfMemory` produced by the
//! rejected reservation becomes the report's root cause, and no partial
//! upload ever happens. The same downgrade rule doubles as a reactive safety
//! net should a launch OOM anyway.

use crate::backend::frame_memory_budget;
use gpu_kernels::chunk::{build_chunk_force_kernel, chunk_force_params};
use gpu_kernels::force::OptLevel;
use gpu_sim::exec::functional::{run_grid_lowered, run_grid_watchdog_lowered};
use gpu_sim::fault::{DeviceError, DeviceResult, FaultKind};
use gpu_sim::ir::lower::lower;
use gpu_sim::mem::{GlobalMemory, MemoryBudget};
use gpu_sim::transient::{run_grid_chaos_lowered, TransientFaultPlan};
use nbody::model::{Bodies, ForceParams};
use particle_layouts::device::{alloc_accel_out, download_accels};
use particle_layouts::{DeviceImage, Particle};
use serde::{Deserialize, Serialize};
use simcore::Vec3;

/// How a GPU frame executes under the device-memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// The whole working set is device-resident.
    Full,
    /// Streamed `chunk` bodies at a time (a multiple of the block size).
    Chunked {
        /// Bodies per chunk.
        chunk: u32,
    },
    /// The frame runs on the parallel CPU backend.
    Cpu,
}

impl ExecMode {
    /// Ladder-rung label (`full`, `chunked(c=512)`, `cpu-parallel`).
    pub fn label(&self) -> String {
        match self {
            ExecMode::Full => "full".into(),
            ExecMode::Chunked { chunk } => format!("chunked(c={chunk})"),
            ExecMode::Cpu => "cpu-parallel".into(),
        }
    }
}

/// One rung-to-rung downgrade of the degradation ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeEvent {
    /// The rung that was rejected (or faulted).
    pub from: String,
    /// The rung execution moved to.
    pub to: String,
    /// Why — the admission check's typed OOM, or the runtime fault.
    pub reason: String,
}

/// The per-frame memory plan: what one GPU force frame needs, what the
/// device offers, and the execution mode that follows.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Optimization level planned for.
    pub level: OptLevel,
    /// Real body count.
    pub n: u32,
    /// Device capacity the plan was admitted against (`None` = unlimited).
    pub capacity: Option<u64>,
    /// Exact full-resident footprint (allocator alignment and redzones
    /// included) — [`frame_memory_budget`].
    pub full_budget: u64,
    /// Per-buffer breakdown of the full-resident frame: `(name, bytes)`,
    /// raw sizes before alignment/redzone overhead.
    pub buffers: Vec<(String, u64)>,
    /// The admitted execution mode.
    pub mode: ExecMode,
    /// Downgrades taken during planning (empty when `mode` is `Full`).
    pub ladder: Vec<DegradeEvent>,
    /// The admission failure that forced the first downgrade, if any — the
    /// root cause a degraded frame's fault report leads with.
    pub root: Option<DeviceError>,
}

impl MemoryPlan {
    /// Device bytes the admitted mode actually touches at once.
    pub fn resident_footprint(&self) -> u64 {
        match self.mode {
            ExecMode::Full => self.full_budget,
            ExecMode::Chunked { chunk } => chunked_memory_budget(self.level, chunk),
            ExecMode::Cpu => 0,
        }
    }

    /// Human-readable multi-line plan (the `--dry-run` output).
    pub fn render(&self) -> String {
        let mut s = format!("memory plan: n={} level={}\n", self.n, self.level.label());
        let cap = match self.capacity {
            Some(c) => format!("{c} B"),
            None => "unlimited".into(),
        };
        s.push_str(&format!(
            "  frame budget: {} B resident (device capacity {cap})\n",
            self.full_budget
        ));
        for (name, bytes) in &self.buffers {
            s.push_str(&format!("    {name}: {bytes} B\n"));
        }
        s.push_str("    (+ per-buffer alignment and redzone overhead)\n");
        match self.mode {
            ExecMode::Full => s.push_str("  mode: full (whole working set resident)\n"),
            ExecMode::Chunked { chunk } => s.push_str(&format!(
                "  mode: chunked, {chunk} bodies per chunk ({} B device footprint)\n",
                self.resident_footprint()
            )),
            ExecMode::Cpu => {
                s.push_str("  mode: cpu-parallel (no chunk fits the device)\n");
            }
        }
        for e in &self.ladder {
            s.push_str(&format!("  degrade {} -> {}: {}\n", e.from, e.to, e.reason));
        }
        s
    }
}

/// Exact device footprint of chunked execution at `chunk` bodies per chunk:
/// the resident target chunk, its `float4` accumulator, and one source chunk
/// (source chunks are freed LIFO between launches, so one slot suffices).
pub fn chunked_memory_budget(level: OptLevel, chunk: u32) -> u64 {
    let cfg = level.config();
    let mut sizes = DeviceImage::alloc_sizes(cfg.layout, chunk, cfg.block);
    sizes.push(chunk.div_ceil(cfg.block) as u64 * cfg.block as u64 * 16);
    sizes.extend(DeviceImage::alloc_sizes(cfg.layout, chunk, cfg.block));
    GlobalMemory::footprint(&sizes)
}

/// The smallest chunk the ladder will try: one block of bodies.
pub fn chunk_floor(level: OptLevel) -> u32 {
    level.config().block
}

/// Halve a chunk size, keeping it a block multiple; `None` below the floor.
fn halve_chunk(level: OptLevel, chunk: u32) -> Option<u32> {
    let block = chunk_floor(level);
    if chunk <= block {
        return None;
    }
    Some((chunk / 2).div_ceil(block) * block)
}

/// The next rung down from `mode` (the ladder's single source of truth,
/// used both by planning and by the reactive safety net).
pub fn downgrade(level: OptLevel, n: u32, mode: ExecMode) -> Option<ExecMode> {
    let block = chunk_floor(level);
    match mode {
        ExecMode::Full => {
            let padded = n.div_ceil(block) * block;
            // Chunking at the full padded count costs *more* than full
            // residency (duplicate source buffers), so the first chunked
            // rung is already a halving.
            match halve_chunk(level, padded) {
                Some(c) => Some(ExecMode::Chunked { chunk: c }),
                None => Some(ExecMode::Cpu),
            }
        }
        ExecMode::Chunked { chunk } => match halve_chunk(level, chunk) {
            Some(c) => Some(ExecMode::Chunked { chunk: c }),
            None => Some(ExecMode::Cpu),
        },
        ExecMode::Cpu => None,
    }
}

/// Plan one GPU force frame against a device capacity. The plan is a chain
/// of admission checks — no device memory is touched, and the typed OOM of
/// each rejected rung is recorded on the ladder.
pub fn plan_frame(level: OptLevel, n: u32, capacity: Option<u64>) -> MemoryPlan {
    let cfg = level.config();
    let full_budget = frame_memory_budget(level, n);
    let padded = if n == 0 {
        0
    } else {
        n.div_ceil(cfg.block) * cfg.block
    };
    let mut buffers: Vec<(String, u64)> = cfg
        .layout
        .buffers()
        .iter()
        .zip(DeviceImage::alloc_sizes(cfg.layout, n, cfg.block))
        .map(|(kind, bytes)| (format!("{kind:?}"), bytes))
        .collect();
    if n > 0 {
        buffers.push(("AccelOut4".into(), padded as u64 * 16));
    }
    let mut plan = MemoryPlan {
        level,
        n,
        capacity,
        full_budget,
        buffers,
        mode: ExecMode::Full,
        ladder: Vec::new(),
        root: None,
    };
    let Some(cap) = capacity else {
        return plan;
    };
    if n == 0 {
        return plan; // an empty frame allocates nothing
    }
    // Admission check per rung, descending the ladder until one fits.
    let mut budget = MemoryBudget::new(cap);
    let mut mode = ExecMode::Full;
    loop {
        let need = match mode {
            ExecMode::Full => full_budget,
            ExecMode::Chunked { chunk } => chunked_memory_budget(level, chunk),
            ExecMode::Cpu => 0,
        };
        match budget.reserve(need) {
            Ok(()) => {
                budget.release(need);
                plan.mode = mode;
                return plan;
            }
            Err(error) => {
                let next = downgrade(level, n, mode)
                    .expect("the CPU rung reserves zero bytes and always admits");
                plan.ladder.push(DegradeEvent {
                    from: mode.label(),
                    to: next.label(),
                    reason: error.to_string(),
                });
                plan.root.get_or_insert(error);
                mode = next;
            }
        }
    }
}

/// Execute one force frame by chunked streaming: for each target chunk,
/// upload it with a zeroed accumulator, then stream every source chunk
/// through the device in ascending body order — the accumulator carried on
/// device replays the unconstrained kernel's exact addition sequence, so the
/// result is bit-identical to [`Full`](ExecMode::Full) execution.
///
/// `chaos`/`watchdog` thread the transient-fault machinery through every
/// launch, exactly as in full execution; the whole frame is the retry unit.
pub fn gpu_frame_chunked(
    bodies: &Bodies,
    fp: &ForceParams,
    level: OptLevel,
    chunk: u32,
    capacity: Option<u64>,
    mut chaos: Option<&mut TransientFaultPlan>,
    watchdog: Option<u64>,
) -> DeviceResult<Vec<Vec3>> {
    if bodies.is_empty() {
        return Ok(Vec::new());
    }
    let cfg = level.config();
    assert!(
        chunk >= cfg.block && chunk.is_multiple_of(cfg.block),
        "chunk must be block-aligned"
    );
    let kernel = build_chunk_force_kernel(cfg);
    // Decode once for the whole target × source launch matrix.
    let prog = lower(&kernel);
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle {
            pos: bodies.pos[i],
            vel: bodies.vel[i],
            mass: fp.g * bodies.mass[i],
        })
        .collect();
    let footprint = chunked_memory_budget(level, chunk);
    let mut gmem = GlobalMemory::new(capacity.unwrap_or(footprint));
    let mut accels = Vec::with_capacity(bodies.len());
    let mut t = 0usize;
    while t < particles.len() {
        let t_hi = (t + chunk as usize).min(particles.len());
        // Rewind the device between target chunks: the footprint never
        // exceeds one target image + accumulator + one source image.
        gmem.reset();
        let tgt = DeviceImage::upload(&mut gmem, cfg.layout, &particles[t..t_hi], cfg.block)?;
        let out = alloc_accel_out(&mut gmem, tgt.padded_n)?;
        let grid = tgt.padded_n / cfg.block;
        let mut s = 0usize;
        while s < particles.len() {
            let s_hi = (s + chunk as usize).min(particles.len());
            let src = DeviceImage::upload(&mut gmem, cfg.layout, &particles[s..s_hi], cfg.block)?;
            let params = chunk_force_params(&tgt, &src, out, fp.softening);
            match (chaos.as_deref_mut(), watchdog) {
                (Some(c), w) => {
                    run_grid_chaos_lowered(&prog, grid, cfg.block, &params, &mut gmem, c, w)?
                }
                (None, Some(w)) => {
                    run_grid_watchdog_lowered(&prog, grid, cfg.block, &params, &mut gmem, w)?
                }
                (None, None) => run_grid_lowered(&prog, grid, cfg.block, &params, &mut gmem)?,
            };
            src.free(&mut gmem)?;
            s = s_hi;
        }
        accels.extend(download_accels(&gmem, out, tgt.n)?);
        t = t_hi;
    }
    debug_assert!(
        gmem.high_water() <= footprint,
        "chunked execution exceeded its planned footprint: {} > {footprint}",
        gmem.high_water()
    );
    for (i, a) in accels.iter().enumerate() {
        if !(a.x.is_finite() && a.y.is_finite() && a.z.is_finite()) {
            return Err(
                DeviceError::new(FaultKind::NonFiniteResult { index: i as u64 })
                    .with_kernel(&kernel.name),
            );
        }
    }
    Ok(accels)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEVEL: OptLevel = OptLevel::Full; // block 128, SoAoaS

    #[test]
    fn unconstrained_plans_are_full_with_exact_budget() {
        let plan = plan_frame(LEVEL, 960, None);
        assert_eq!(plan.mode, ExecMode::Full);
        assert!(plan.ladder.is_empty());
        assert!(plan.root.is_none());
        assert_eq!(plan.full_budget, frame_memory_budget(LEVEL, 960));
        assert!(plan.render().contains("mode: full"));
    }

    #[test]
    fn ample_capacity_admits_full_execution() {
        let budget = frame_memory_budget(LEVEL, 960);
        let plan = plan_frame(LEVEL, 960, Some(budget));
        assert_eq!(
            plan.mode,
            ExecMode::Full,
            "exactly-fitting budget must admit"
        );
        assert!(plan.ladder.is_empty());
    }

    #[test]
    fn constricted_capacity_degrades_to_chunked_with_recorded_ladder() {
        let budget = frame_memory_budget(LEVEL, 960);
        let plan = plan_frame(LEVEL, 960, Some(budget / 4));
        let ExecMode::Chunked { chunk } = plan.mode else {
            panic!("expected chunked, got {:?}", plan.mode);
        };
        assert!(chunk >= chunk_floor(LEVEL) && chunk.is_multiple_of(chunk_floor(LEVEL)));
        assert!(
            chunked_memory_budget(LEVEL, chunk) <= budget / 4,
            "admitted rung must fit"
        );
        assert!(!plan.ladder.is_empty());
        assert_eq!(plan.ladder[0].from, "full");
        assert!(
            plan.ladder[0].reason.contains("out of memory"),
            "{}",
            plan.ladder[0].reason
        );
        let root = plan
            .root
            .as_ref()
            .expect("the admission OOM is the root cause");
        assert!(matches!(root.kind, FaultKind::OutOfMemory { .. }));
        let text = plan.render();
        assert!(text.contains("mode: chunked"), "{text}");
        assert!(text.contains("degrade full ->"), "{text}");
    }

    #[test]
    fn hopeless_capacity_degrades_to_cpu_at_the_floor() {
        let plan = plan_frame(LEVEL, 960, Some(64));
        assert_eq!(plan.mode, ExecMode::Cpu);
        let last = plan.ladder.last().unwrap();
        assert_eq!(last.to, "cpu-parallel");
        // The ladder walked chunked rungs before giving up.
        assert!(plan.ladder.len() >= 2, "{:?}", plan.ladder);
        assert!(plan.render().contains("mode: cpu-parallel"));
    }

    #[test]
    fn downgrade_halves_to_the_floor_then_cpu() {
        let mut mode = ExecMode::Full;
        let mut rungs = vec![];
        while let Some(next) = downgrade(LEVEL, 960, mode) {
            rungs.push(next);
            mode = next;
        }
        assert_eq!(*rungs.last().unwrap(), ExecMode::Cpu);
        let chunks: Vec<u32> = rungs
            .iter()
            .filter_map(|m| match m {
                ExecMode::Chunked { chunk } => Some(*chunk),
                _ => None,
            })
            .collect();
        assert!(
            chunks.windows(2).all(|w| w[1] < w[0]),
            "strictly shrinking: {chunks:?}"
        );
        assert_eq!(*chunks.last().unwrap(), chunk_floor(LEVEL));
        assert!(chunks.iter().all(|c| c.is_multiple_of(chunk_floor(LEVEL))));
    }

    #[test]
    fn empty_frames_admit_anywhere() {
        let plan = plan_frame(LEVEL, 0, Some(1));
        assert_eq!(plan.mode, ExecMode::Full);
        assert!(plan.ladder.is_empty());
    }
}
