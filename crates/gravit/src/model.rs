//! The device frame-time model (the quantity Figure 12 plots).
//!
//! One Gravit GPU frame is: upload the particle buffers, run the tiled force
//! kernel over the whole grid, download the accelerations. Kernel time comes
//! from cycle-level simulation of one SM's resident wave at two reduced tile
//! counts, linearly extrapolated to the real particle count and scaled by the
//! wave count (see DESIGN.md §6 for why ratios survive this extrapolation).

use gpu_kernels::force::{build_force_kernel, force_params, ForceKernelConfig, OptLevel};
use gpu_sim::exec::launch::extrapolate_linear;
use gpu_sim::exec::timed::time_resident;
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::occupancy::{occupancy, Occupancy};
use gpu_sim::transfer::PcieModel;
use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
use particle_layouts::device::alloc_accel_out;
use particle_layouts::{DeviceImage, Particle};
use simcore::Vec3;

/// One modeled Gravit frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FramePoint {
    /// Optimization level.
    pub level: OptLevel,
    /// Real particle count.
    pub n: u32,
    /// Host→device copy seconds.
    pub upload_s: f64,
    /// Kernel seconds (modeled).
    pub kernel_s: f64,
    /// Device→host copy seconds.
    pub download_s: f64,
    /// Registers per thread (from the allocator).
    pub regs: u32,
    /// Occupancy of the launch.
    pub occupancy: Occupancy,
}

impl FramePoint {
    /// End-to-end frame seconds (the Fig. 12 metric).
    pub fn total_s(&self) -> f64 {
        self.upload_s + self.kernel_s + self.download_s
    }
}

/// Tile counts (as multiples of the block) used for the steady-state fit.
const FIT_TILES: [u32; 2] = [4, 8];

/// Frame decomposition for an arbitrary kernel configuration (no named
/// optimization level) — used by the block-size ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigFrame {
    /// Host→device copy seconds.
    pub upload_s: f64,
    /// Kernel seconds (modeled).
    pub kernel_s: f64,
    /// Device→host copy seconds.
    pub download_s: f64,
    /// Occupancy of the launch.
    pub occupancy: Occupancy,
}

/// Model one Gravit frame at optimization level `level` and size `n`, under
/// the given driver revision.
pub fn model_frame(level: OptLevel, n: u32, driver: DriverModel) -> FramePoint {
    let (f, regs) = model_frame_config(level.config(), n, driver);
    FramePoint {
        level,
        n,
        upload_s: f.upload_s,
        kernel_s: f.kernel_s,
        download_s: f.download_s,
        regs: regs as u32,
        occupancy: f.occupancy,
    }
}

/// Model one Gravit frame for an arbitrary force-kernel configuration.
/// Returns the decomposition and the registers per thread.
pub fn model_frame_config(
    cfg: ForceKernelConfig,
    n: u32,
    driver: DriverModel,
) -> (ConfigFrame, u16) {
    let dev = DeviceConfig::g8800gtx();
    let tp = TimingParams::for_driver(driver);
    let pcie = PcieModel::pcie1_x16();
    let kernel = build_force_kernel(cfg);
    let regs = register_demand(&kernel).regs_per_thread as u32;
    let occ = occupancy(&dev, cfg.block, regs, kernel.smem_bytes);

    let padded = n.div_ceil(cfg.block) * cfg.block;

    // Kernel time: simulate the resident wave at two small tile counts and
    // extrapolate per-wave cycles to the real tile count. Residency is
    // clamped to the smallest measured grid: a resident block beyond the
    // uploaded tiles would read past the particle buffers (the sanitizer's
    // redzones catch exactly this).
    let resident: Vec<u32> = (0..occ.active_blocks.min(FIT_TILES[0])).collect();
    let mut measured = Vec::new();
    for tiles in FIT_TILES {
        let small_n = tiles * cfg.block;
        let particles: Vec<Particle> = (0..small_n)
            .map(|i| Particle {
                pos: Vec3::new(i as f32 * 0.01, 1.0, 2.0),
                vel: Vec3::ZERO,
                mass: 1.0,
            })
            .collect();
        let mut gmem = GlobalMemory::new(64 << 20);
        let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)
            .expect("fit-sized upload fits in the model device");
        let out = alloc_accel_out(&mut gmem, img.padded_n).expect("output buffer fits");
        let params = force_params(&img, out, 0.05);
        let run = time_resident(
            &kernel,
            &resident,
            cfg.block,
            resident.len() as u32,
            &params,
            &mut gmem,
            &dev,
            driver,
            &tp,
        )
        .expect("the model launch is well-formed");
        measured.push((small_n as u64, run.cycles));
    }
    let wave_cycles =
        extrapolate_linear(&measured, padded as u64).expect("steady-state cost grows with tiles");

    let blocks = (padded / cfg.block) as u64;
    let waves = blocks.div_ceil(dev.num_sms as u64 * resident.len() as u64);
    let kernel_s = (wave_cycles * waves) as f64 / dev.clock_hz;

    let buffer_sizes: Vec<u64> = cfg
        .layout
        .buffers()
        .iter()
        .map(|b| b.stride() * padded as u64)
        .collect();
    (
        ConfigFrame {
            upload_s: pcie.copies_time_s(&buffer_sizes),
            kernel_s,
            download_s: pcie.copy_time_s(16 * padded as u64),
            occupancy: occ,
        },
        regs as u16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroll_step_gives_paper_scale_speedup() {
        let n = 200_000;
        let rolled = model_frame(OptLevel::SoAoaS, n, DriverModel::Cuda10).total_s();
        let unrolled = model_frame(OptLevel::SoAoaSUnrolled, n, DriverModel::Cuda10).total_s();
        let s = rolled / unrolled;
        assert!(
            (1.1..1.3).contains(&s),
            "unroll speedup {s:.3} outside the paper's ~1.18 band"
        );
    }

    #[test]
    fn full_ladder_lands_near_one_point_27() {
        let n = 400_000;
        let base = model_frame(OptLevel::Baseline, n, DriverModel::Cuda10).total_s();
        let full = model_frame(OptLevel::Full, n, DriverModel::Cuda10).total_s();
        let s = base / full;
        assert!(
            (1.15..1.40).contains(&s),
            "total speedup {s:.3} outside the paper's 1.27 band"
        );
    }
}
