//! Demonstrates the device-fault sanitizer end to end: inject an
//! out-of-bounds access into the GPU force kernel and show (a) the fail-fast
//! sanitizer report and (b) graceful degradation to the CPU backend with
//! bit-identical physics.
//!
//! ```text
//! cargo run --release -p gravit-app --example sanitizer_demo
//! ```

use gpu_kernels::force::OptLevel;
use gpu_sim::fault::{FaultPlan, Mutation};
use gpu_sim::DriverModel;
use gravit_app::backend::{Backend, FaultPolicy};
use gravit_app::config::SpawnKind;
use nbody::model::ForceParams;

fn main() {
    let bodies = SpawnKind::UniformBall { radius: 3.0 }.generate(256, 1.0, 7);
    let fp = ForceParams::default();
    let gpu = Backend::GpuSim {
        level: OptLevel::Full,
        driver: DriverModel::Cuda10,
    };

    // Strike thread 9 of block 0: wherever it accesses memory, send it far
    // out of bounds (a synthetic layout/stride bug).
    let plan = FaultPlan::at_thread(0, 9, Mutation::SetAddr(1 << 40));

    println!("--- fail-fast policy ---");
    match gpu.accelerations_with_policy_injected(&bodies, &fp, FaultPolicy::FailFast, Some(&plan)) {
        Ok(_) => println!("unexpected: no fault"),
        Err(e) => println!("{}", e.report()),
    }

    println!("\n--- fallback policy ---");
    let r = gpu
        .accelerations_with_policy_injected(&bodies, &fp, FaultPolicy::FallbackToCpu, Some(&plan))
        .expect("fallback absorbs the fault");
    let report = r.fault.expect("the survived fault is reported");
    println!("{}", report.render());

    let cpu = Backend::CpuSerial.accelerations(&bodies, &fp);
    let identical = r.accels == cpu;
    println!("\nrecovered accelerations bit-identical to CpuSerial: {identical}");
    assert!(identical);
}
