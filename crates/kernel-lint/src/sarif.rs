//! SARIF 2.1.0 emission for the lint gate — the format GitHub code
//! scanning ingests, so kernel findings annotate pull requests.
//!
//! The vendored `serde_json` shim has no dynamic `Value`, so the document
//! is assembled by hand; [`escape`] covers the JSON string grammar.
//!
//! Kernels are IR built in memory, not files on disk, so each finding is
//! anchored to a pseudo artifact `kernels/<kernel-name>.ir` with the
//! 1-based instruction index as the line — stable coordinates that
//! survive re-runs (the report's diagnostics are deterministically
//! ordered).

use gpu_sim::analyze::{AnalysisReport, Severity};

/// Escape a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Render one SARIF run over every analyzed report (one result per
/// diagnostic, one rule per lint kind that fired).
pub fn render(reports: &[(String, &AnalysisReport)]) -> String {
    // Rules: every kind that occurs, deduped, sorted for stable output.
    let mut kinds: Vec<&'static str> = reports
        .iter()
        .flat_map(|(_, r)| r.diagnostics.iter().map(|d| d.kind.name()))
        .collect();
    kinds.sort_unstable();
    kinds.dedup();

    let rules = kinds
        .iter()
        .map(|k| format!("{{\"id\":\"{}\"}}", escape(k)))
        .collect::<Vec<_>>()
        .join(",");

    let mut results: Vec<String> = Vec::new();
    for (driver, report) in reports {
        for d in &report.diagnostics {
            let line = d.site.instruction.map_or(1, |i| i + 1);
            let msg = format!("[{}] {}", driver, d.message);
            let fixit = d
                .fixit
                .as_ref()
                .map(|f| format!(" Suggested fix: {f}"))
                .unwrap_or_default();
            results.push(format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"kernels/{}.ir\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                escape(d.kind.name()),
                level(d.severity),
                escape(&format!("{msg}{fixit}")),
                escape(&report.kernel),
                line
            ));
        }
    }

    format!(
        "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":\
         {{\"driver\":{{\"name\":\"kernel-lint\",\"informationUri\":\
         \"https://github.com/gravit-sim\",\"rules\":[{rules}]}}}},\"results\":[{}]}}]}}",
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_the_json_string_grammar() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn empty_input_is_still_valid_sarif() {
        let doc = render(&[]);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"results\":[]"));
    }
}
