//! `kernel-lint` — static IR lints for every kernel in the workspace.
//!
//! Runs `gpu_sim::analyze` over the curated target set
//! (`gpu_kernels::lintset`), enriches findings with the paper's remedies
//! (`gravit_core::lint`), and gates on expectations:
//!
//! * default mode: each kernel must produce **exactly** its documented
//!   findings (the CI gate) — exit 1 on any deviation;
//! * `--deny`: stricter — exit 1 if *any* error-severity finding exists,
//!   expected or not (useful when hunting for a clean build);
//! * `--json`: machine-readable report array on stdout;
//! * `--driver cuda10|cuda11|cuda22|all`: coalescing protocol(s) to lint
//!   under (default cuda10, the paper's G80 driver);
//! * `--kernel <substring>`: only lint matching kernels;
//! * `--list`: print the target set and exit;
//! * `--verify`: translation validation instead of linting — prove every
//!   workspace kernel × pass pair and the cross-layout force ladder
//!   equivalent (`gpu_kernels::verifyset`); exit 1 on any unproven target
//!   (a `Mismatch` prints its counterexample fault site);
//! * `--cost`: static cycle model instead of linting — print the
//!   `gpu_sim::analyze::cost` estimate per kernel per driver;
//! * `--suggest`: run the layout/schedule synthesizer
//!   (`gpu_sim::analyze::synth`) over the synthesis targets and print the
//!   ranked, *proven* rewrite suggestions with predicted cycle deltas;
//! * `--fix`: like `--suggest`, but emit the winning rewrite as a
//!   machine-applied patch (transformed kernel IR + synthesized layout
//!   descriptor), gated on its translation-validation certificate — a
//!   target whose winner cannot be proven produces no patch and exit 1;
//! * `--format text|json|sarif`: output format. `sarif` (lint gate only)
//!   emits SARIF 2.1.0 for GitHub code scanning; `--json` is shorthand
//!   for `--format json`.

mod sarif;

use std::process::ExitCode;

use gpu_kernels::lintset::{workspace_lint_targets, LintTarget};
use gpu_kernels::synthset::{synth_targets, synthesized_layout};
use gpu_kernels::verifyset::{bounds_targets, layout_ladder_targets, workspace_pass_targets};
use gpu_sim::analyze::verify::VerifyResult;
use gpu_sim::analyze::{analyze_kernel, cost};
use gpu_sim::DriverModel;
use gravit_core::lint::{enrich_report, EnrichedReport};
use particle_layouts::plan::SynthesizedLayout;
use serde::Serialize;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    format: Format,
    deny: bool,
    list: bool,
    verify: bool,
    cost: bool,
    suggest: bool,
    fix: bool,
    kernel_filter: Option<String>,
    drivers: Vec<DriverModel>,
}

impl Options {
    fn json(&self) -> bool {
        self.format == Format::Json
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        deny: false,
        list: false,
        verify: false,
        cost: false,
        suggest: false,
        fix: false,
        kernel_filter: None,
        drivers: vec![DriverModel::Cuda10],
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.format = Format::Json,
            "--deny" => opts.deny = true,
            "--list" => opts.list = true,
            "--verify" => opts.verify = true,
            "--cost" => opts.cost = true,
            "--suggest" => opts.suggest = true,
            "--fix" => opts.fix = true,
            "--format" => {
                let f = args.next().ok_or("--format needs an argument")?;
                opts.format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--kernel" => {
                opts.kernel_filter =
                    Some(args.next().ok_or("--kernel needs a substring argument")?);
            }
            "--driver" => {
                let d = args.next().ok_or("--driver needs an argument")?;
                opts.drivers = match d.as_str() {
                    "cuda10" => vec![DriverModel::Cuda10],
                    "cuda11" => vec![DriverModel::Cuda11],
                    "cuda22" => vec![DriverModel::Cuda22],
                    "all" => DriverModel::ALL.to_vec(),
                    other => return Err(format!("unknown driver `{other}`")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "kernel-lint [--json | --format text|json|sarif] [--deny] [--list] \
                     [--verify] [--cost] [--suggest] [--fix] \
                     [--driver cuda10|cuda11|cuda22|all] [--kernel SUBSTR]\n\
                     \n\
                     Modes (mutually exclusive; default is the lint gate):\n\
                     \x20 --verify  prove every kernel x pass pair, the layout ladder,\n\
                     \x20           and the interval-bounds certificates (Barnes-Hut)\n\
                     \x20 --cost    static cycle estimates; data-dependent kernels get\n\
                     \x20           [best, worst] cycle ranges instead of a point value\n\
                     \x20 --suggest synthesize layout+schedule rewrites from the access\n\
                     \x20           summaries; print only candidates whose equivalence\n\
                     \x20           the translation validator proved\n\
                     \x20 --fix     emit the winning proven rewrite per target as a\n\
                     \x20           machine-applied patch (kernel IR + layout descriptor);\n\
                     \x20           exit 1 if any target has no certified winner\n\
                     \x20 --list    print the target set and exit\n\
                     \n\
                     --json composes with every mode: the lint gate emits enriched\n\
                     reports, --verify emits structured results (including\n\
                     `unsupported` reasons and interval certificates), --cost emits\n\
                     per-kernel estimates with cycle ranges. --format sarif emits\n\
                     SARIF 2.1.0 code-scanning annotations (lint gate only).\n\
                     \n\
                     Exit codes:\n\
                     \x20 0  success - gate clean / all targets proved\n\
                     \x20 1  gate violation, unproven verify target, --deny hit,\n\
                     \x20    uncertified --fix winner, empty filter match, or bad usage"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

/// One lint run of one kernel under one driver, as emitted by `--json`.
#[derive(Serialize)]
struct JsonEntry {
    driver: String,
    /// Expectation violations (empty = the gate passes for this kernel).
    violations: Vec<String>,
    report: EnrichedReport,
}

/// One translation-validation proof attempt, as emitted by `--verify --json`.
#[derive(Serialize)]
struct VerifyEntry {
    kernel: String,
    /// Pass label, `layout:<from>-><to>` for ladder equivalences, or
    /// `interval-bounds` for analyzer certificates.
    pass: String,
    proved: bool,
    /// `proved`, `proved-bounded`, `bounded`, `mismatch`, or `unsupported`.
    result: String,
    /// Why the checker could not decide, when `result` is `unsupported`.
    unsupported_reason: Option<String>,
    /// `[best, worst]` global transactions (interval-bounds targets only).
    transaction_bounds: Option<(u64, u64)>,
    /// `[best, worst]` predicted cycles (interval-bounds targets only).
    cycle_bounds: Option<(f64, f64)>,
    detail: String,
}

impl VerifyEntry {
    fn from_result(kernel: String, pass: String, r: &VerifyResult) -> VerifyEntry {
        let (result, unsupported_reason) = match r {
            VerifyResult::Proved { .. } => ("proved", None),
            VerifyResult::ProvedBounded { .. } => ("proved-bounded", None),
            VerifyResult::Mismatch { .. } => ("mismatch", None),
            VerifyResult::Unsupported { reason } => ("unsupported", Some(reason.clone())),
        };
        VerifyEntry {
            kernel,
            pass,
            proved: r.is_proved() || r.is_proved_bounded(),
            result: result.to_string(),
            unsupported_reason,
            transaction_bounds: None,
            cycle_bounds: None,
            detail: r.to_string(),
        }
    }
}

/// Run `--verify`: prove the whole `verifyset`, exit 1 on any unproven pair.
fn run_verify(opts: &Options) -> ExitCode {
    let mut entries: Vec<VerifyEntry> = Vec::new();
    let matches = |name: &str| match &opts.kernel_filter {
        Some(f) => name.contains(f.as_str()),
        None => true,
    };

    for t in workspace_pass_targets() {
        if !matches(&t.kernel.name) {
            continue;
        }
        let r = t.verify();
        entries.push(VerifyEntry::from_result(
            t.kernel.name.clone(),
            t.pass.label(),
            &r,
        ));
    }
    for t in layout_ladder_targets() {
        if !(matches(&t.a.name) || matches(&t.b.name)) {
            continue;
        }
        let r = t.verify();
        entries.push(VerifyEntry::from_result(
            t.a.name.clone(),
            format!("layout:{}->{}", t.from.label(), t.to.label()),
            &r,
        ));
    }
    for t in bounds_targets() {
        if !matches(&t.kernel.name) {
            continue;
        }
        match t.verify() {
            Ok(cert) => entries.push(VerifyEntry {
                kernel: cert.kernel.clone(),
                pass: "interval-bounds".to_string(),
                proved: true,
                result: "bounded".to_string(),
                unsupported_reason: None,
                transaction_bounds: Some(cert.transaction_bounds),
                cycle_bounds: Some(cert.cycle_bounds),
                detail: format!(
                    "certified: transactions in [{}, {}], cycles in [{:.0}, {:.0}], \
                     {} possible-out-of-bounds warning(s)",
                    cert.transaction_bounds.0,
                    cert.transaction_bounds.1,
                    cert.cycle_bounds.0,
                    cert.cycle_bounds.1,
                    cert.oob_warnings
                ),
            }),
            Err(reason) => entries.push(VerifyEntry {
                kernel: t.kernel.name.clone(),
                pass: "interval-bounds".to_string(),
                proved: false,
                result: "unsupported".to_string(),
                unsupported_reason: Some(reason.clone()),
                transaction_bounds: None,
                cycle_bounds: None,
                detail: format!("unsupported: {reason}"),
            }),
        }
    }

    if entries.is_empty() {
        eprintln!("kernel-lint: no verify targets match the filter");
        return ExitCode::FAILURE;
    }

    let unproven = entries.iter().filter(|e| !e.proved).count();
    if opts.json() {
        match serde_json::to_string_pretty(&entries) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("kernel-lint: serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for e in &entries {
            let verdict = if e.proved { "proved" } else { "FAILED" };
            println!("{:<28} {:<24} {verdict}: {}", e.kernel, e.pass, e.detail);
        }
        println!(
            "verified {} target(s): {} proved, {} unproven",
            entries.len(),
            entries.len() - unproven,
            unproven
        );
    }
    if unproven > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One cycle estimate, as emitted by `--cost --json`.
#[derive(Serialize)]
struct CostEntry {
    kernel: String,
    driver: String,
    /// Point estimate — only for statically exact kernels.
    total_cycles: Option<f64>,
    issue_cycles: Option<f64>,
    memory_cycles: Option<f64>,
    smem_conflict_cycles: Option<f64>,
    exposed_latency_cycles: Option<f64>,
    active_warps: Option<u32>,
    /// `[best, worst]` predicted cycles — present whenever the interval
    /// analyzer could bound the kernel (degenerate iff exact).
    cycle_bounds: Option<(f64, f64)>,
    /// `[best, worst]` global transactions over the launch.
    transaction_bounds: Option<(u64, u64)>,
    regs_per_thread: u16,
    error: Option<String>,
}

/// Run `--cost`: price every lint target under each requested driver.
/// Statically exact kernels get a point estimate; data-dependent ones
/// (Barnes–Hut) get the `[best, worst]` interval from the widening analyzer.
fn run_cost(opts: &Options, targets: &[LintTarget]) -> ExitCode {
    let mut entries: Vec<CostEntry> = Vec::new();
    for target in targets {
        for &driver in &opts.drivers {
            let cfg = target.config().with_driver(driver);
            let regs = cost::regs_per_thread(&target.kernel);
            let report = analyze_kernel(&target.kernel, &cfg);
            let bounds = cost::estimate_bounds_from_report(&target.kernel, &cfg, &report);
            let (cycle_bounds, transaction_bounds, bounds_err) = match &bounds {
                Ok(b) => (Some(b.cycle_range()), Some(report.transaction_bounds), None),
                Err(e) => (None, None, Some(e.to_string())),
            };
            match cost::estimate_from_report(&target.kernel, &cfg, &report) {
                Ok(c) => entries.push(CostEntry {
                    kernel: target.kernel.name.clone(),
                    driver: driver.label().to_string(),
                    total_cycles: Some(c.total_cycles()),
                    issue_cycles: Some(c.issue_cycles),
                    memory_cycles: Some(c.memory_cycles),
                    smem_conflict_cycles: Some(c.smem_conflict_cycles),
                    exposed_latency_cycles: Some(c.exposed_latency_cycles),
                    active_warps: Some(c.active_warps),
                    cycle_bounds,
                    transaction_bounds,
                    regs_per_thread: regs,
                    error: None,
                }),
                Err(e) => entries.push(CostEntry {
                    kernel: target.kernel.name.clone(),
                    driver: driver.label().to_string(),
                    total_cycles: None,
                    issue_cycles: None,
                    memory_cycles: None,
                    smem_conflict_cycles: None,
                    exposed_latency_cycles: None,
                    active_warps: None,
                    error: if cycle_bounds.is_some() {
                        None // bounded, just not exact
                    } else {
                        Some(bounds_err.unwrap_or_else(|| e.to_string()))
                    },
                    cycle_bounds,
                    transaction_bounds,
                    regs_per_thread: regs,
                }),
            }
        }
    }
    if opts.json() {
        match serde_json::to_string_pretty(&entries) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("kernel-lint: serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "{:<28} {:<7} {:>12} {:>12} {:>12} {:>8} {:>8} {:>5}",
            "kernel", "driver", "total", "issue", "memory", "smem", "latency", "regs"
        );
        for e in &entries {
            match (e.total_cycles, e.cycle_bounds) {
                (Some(total), _) => println!(
                    "{:<28} {:<7} {:>12.0} {:>12.0} {:>12.0} {:>8.0} {:>8.0} {:>5}",
                    e.kernel,
                    e.driver,
                    total,
                    e.issue_cycles.unwrap_or(0.0),
                    e.memory_cycles.unwrap_or(0.0),
                    e.smem_conflict_cycles.unwrap_or(0.0),
                    e.exposed_latency_cycles.unwrap_or(0.0),
                    e.regs_per_thread
                ),
                (None, Some((lo, hi))) => {
                    let tx = e
                        .transaction_bounds
                        .map(|(a, b)| format!(", transactions in [{a}, {b}]"))
                        .unwrap_or_default();
                    println!(
                        "{:<28} {:<7} cycles in [{lo:.0}, {hi:.0}]{tx} ({} regs)",
                        e.kernel, e.driver, e.regs_per_thread
                    );
                }
                (None, None) => println!(
                    "{:<28} {:<7} (no static estimate: {})",
                    e.kernel,
                    e.driver,
                    e.error.as_deref().unwrap_or("unknown")
                ),
            }
        }
    }
    ExitCode::SUCCESS
}

/// One synthesized candidate, as emitted by `--suggest --json`.
#[derive(Serialize)]
struct SuggestCandidate {
    label: String,
    predicted_cycles: f64,
    predicted_speedup: f64,
    regs: u16,
}

/// One proven suggestion, as emitted by `--suggest --json` / `--fix`.
#[derive(Serialize)]
struct SuggestPatch {
    label: String,
    predicted_cycles: f64,
    predicted_speedup: f64,
    regs: u16,
    /// Certificate summary (`layout: proved; schedule: proved`). Present —
    /// and affirmative — on every emitted patch by construction.
    certificate: String,
    /// Host-side layout descriptor (`None` = layout unchanged).
    layout: Option<SynthesizedLayout>,
    /// Pass schedule label (`None` = schedule unchanged).
    schedule: Option<String>,
    /// The transformed kernel, ready to splice in.
    kernel: gpu_sim::ir::Kernel,
}

/// One synthesis run, as emitted by `--suggest --json` / `--fix`.
#[derive(Serialize)]
struct SuggestEntry {
    kernel: String,
    driver: String,
    baseline_cycles: f64,
    baseline_regs: u16,
    candidates: Vec<SuggestCandidate>,
    suggestions: Vec<SuggestPatch>,
    skipped: Vec<String>,
}

/// Run `--suggest` / `--fix`: synthesize proven rewrites for every target.
///
/// `--fix` is `--suggest` restricted to the winner, emitted as JSON
/// patches, failing when any target lacks a certified winner.
fn run_suggest(opts: &Options) -> ExitCode {
    let fixing = opts.fix;
    let mut entries: Vec<SuggestEntry> = Vec::new();
    let mut failed = false;
    for &driver in &opts.drivers {
        for target in synth_targets(driver) {
            if let Some(f) = &opts.kernel_filter {
                if !target.kernel.name.contains(f.as_str()) && !target.name.contains(f.as_str()) {
                    continue;
                }
            }
            let report = match target.synthesize() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("kernel-lint: {}: {e}", target.name);
                    failed = true;
                    continue;
                }
            };
            if report.suggestions.is_empty() {
                failed = true;
            }
            let suggestions = report
                .suggestions
                .iter()
                .take(if fixing { 1 } else { usize::MAX })
                .map(|s| SuggestPatch {
                    label: s.label.clone(),
                    predicted_cycles: s.predicted_cycles,
                    predicted_speedup: s.predicted_speedup,
                    regs: s.regs,
                    certificate: s.certificate.summary(),
                    layout: s.rewrite.as_ref().map(synthesized_layout),
                    schedule: s.schedule.as_ref().map(|p| p.label()),
                    kernel: s.kernel.clone(),
                })
                .collect();
            entries.push(SuggestEntry {
                kernel: report.kernel.clone(),
                driver: driver.label().to_string(),
                baseline_cycles: report.baseline_cycles,
                baseline_regs: report.baseline_regs,
                candidates: report
                    .candidates
                    .iter()
                    .map(|c| SuggestCandidate {
                        label: c.label.clone(),
                        predicted_cycles: c.predicted_cycles,
                        predicted_speedup: c.predicted_speedup,
                        regs: c.regs,
                    })
                    .collect(),
                suggestions,
                skipped: report.skipped.clone(),
            });
        }
    }

    if entries.is_empty() {
        eprintln!("kernel-lint: no synthesis targets match the filter");
        return ExitCode::FAILURE;
    }

    if fixing || opts.json() {
        match serde_json::to_string_pretty(&entries) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("kernel-lint: serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for e in &entries {
            println!(
                "{} [{}]: baseline {:.0} cycles, {} regs",
                e.kernel, e.driver, e.baseline_cycles, e.baseline_regs
            );
            for c in &e.candidates {
                let mark = if e.suggestions.iter().any(|s| s.label == c.label) {
                    "*"
                } else {
                    " "
                };
                println!(
                    " {mark} {:<44} {:>9.0} cyc  {:>6.3}x  {:>2} regs",
                    c.label, c.predicted_cycles, c.predicted_speedup, c.regs
                );
            }
            for s in &e.suggestions {
                println!(
                    "  suggest: {} ({:.3}x) [{}]",
                    s.label, s.predicted_speedup, s.certificate
                );
            }
            for s in &e.skipped {
                println!("  skipped: {s}");
            }
            if e.suggestions.is_empty() {
                println!("  NO certified suggestion");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("kernel-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let modes = [opts.verify, opts.cost, opts.suggest, opts.fix, opts.list]
        .iter()
        .filter(|&&m| m)
        .count();
    if modes > 1 {
        eprintln!("kernel-lint: --verify/--cost/--suggest/--fix/--list are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if opts.format == Format::Sarif && (opts.verify || opts.cost || opts.suggest || opts.fix) {
        eprintln!("kernel-lint: --format sarif only applies to the lint gate");
        return ExitCode::FAILURE;
    }

    if opts.suggest || opts.fix {
        return run_suggest(&opts);
    }

    if opts.verify {
        return run_verify(&opts);
    }

    let targets: Vec<LintTarget> = workspace_lint_targets()
        .into_iter()
        .filter(|t| match &opts.kernel_filter {
            Some(f) => t.kernel.name.contains(f.as_str()),
            None => true,
        })
        .collect();
    if targets.is_empty() {
        eprintln!("kernel-lint: no kernels match the filter");
        return ExitCode::FAILURE;
    }

    if opts.cost {
        return run_cost(&opts, &targets);
    }

    if opts.list {
        for t in &targets {
            println!(
                "{:<28} grid {} x block {:<4} expect errors {:?} warnings {:?}",
                t.kernel.name, t.grid, t.block, t.expect_errors, t.expect_warnings
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut entries: Vec<JsonEntry> = Vec::new();
    let mut gate_failed = false;
    for target in &targets {
        for &driver in &opts.drivers {
            let cfg = target.config().with_driver(driver);
            let report = analyze_kernel(&target.kernel, &cfg);
            // Expectations are curated under the default (CUDA 1.0) rules;
            // under other drivers only unexpected *kinds* still gate.
            let violations = if driver == DriverModel::Cuda10 {
                target.check(&report)
            } else {
                Vec::new()
            };
            if !violations.is_empty() || (opts.deny && report.has_errors()) {
                gate_failed = true;
            }
            let enriched = enrich_report(report);
            if opts.format == Format::Text {
                print!("{}", enriched.render());
                for v in &violations {
                    println!("  GATE: {v}");
                }
            }
            entries.push(JsonEntry {
                driver: driver.label().to_string(),
                violations,
                report: enriched,
            });
        }
    }

    if opts.format == Format::Sarif {
        let reports: Vec<(String, &gpu_sim::analyze::AnalysisReport)> = entries
            .iter()
            .map(|e| (e.driver.clone(), &e.report.report))
            .collect();
        println!("{}", sarif::render(&reports));
    } else if opts.json() {
        match serde_json::to_string_pretty(&entries) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("kernel-lint: serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let n_err: usize = entries
            .iter()
            .filter(|e| e.report.report.has_errors())
            .count();
        let n_viol: usize = entries.iter().map(|e| e.violations.len()).sum();
        println!(
            "linted {} kernel run(s): {} with error-severity findings, {} gate violation(s)",
            entries.len(),
            n_err,
            n_viol
        );
    }

    if gate_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
