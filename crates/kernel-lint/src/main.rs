//! `kernel-lint` — static IR lints for every kernel in the workspace.
//!
//! Runs `gpu_sim::analyze` over the curated target set
//! (`gpu_kernels::lintset`), enriches findings with the paper's remedies
//! (`gravit_core::lint`), and gates on expectations:
//!
//! * default mode: each kernel must produce **exactly** its documented
//!   findings (the CI gate) — exit 1 on any deviation;
//! * `--deny`: stricter — exit 1 if *any* error-severity finding exists,
//!   expected or not (useful when hunting for a clean build);
//! * `--json`: machine-readable report array on stdout;
//! * `--driver cuda10|cuda11|cuda22|all`: coalescing protocol(s) to lint
//!   under (default cuda10, the paper's G80 driver);
//! * `--kernel <substring>`: only lint matching kernels;
//! * `--list`: print the target set and exit.

use std::process::ExitCode;

use gpu_kernels::lintset::{workspace_lint_targets, LintTarget};
use gpu_sim::analyze::analyze_kernel;
use gpu_sim::DriverModel;
use gravit_core::lint::{enrich_report, EnrichedReport};
use serde::Serialize;

struct Options {
    json: bool,
    deny: bool,
    list: bool,
    kernel_filter: Option<String>,
    drivers: Vec<DriverModel>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny: false,
        list: false,
        kernel_filter: None,
        drivers: vec![DriverModel::Cuda10],
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--deny" => opts.deny = true,
            "--list" => opts.list = true,
            "--kernel" => {
                opts.kernel_filter =
                    Some(args.next().ok_or("--kernel needs a substring argument")?);
            }
            "--driver" => {
                let d = args.next().ok_or("--driver needs an argument")?;
                opts.drivers = match d.as_str() {
                    "cuda10" => vec![DriverModel::Cuda10],
                    "cuda11" => vec![DriverModel::Cuda11],
                    "cuda22" => vec![DriverModel::Cuda22],
                    "all" => DriverModel::ALL.to_vec(),
                    other => return Err(format!("unknown driver `{other}`")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "kernel-lint [--json] [--deny] [--list] [--driver cuda10|cuda11|cuda22|all] \
                     [--kernel SUBSTR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

/// One lint run of one kernel under one driver, as emitted by `--json`.
#[derive(Serialize)]
struct JsonEntry {
    driver: String,
    /// Expectation violations (empty = the gate passes for this kernel).
    violations: Vec<String>,
    report: EnrichedReport,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("kernel-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let targets: Vec<LintTarget> = workspace_lint_targets()
        .into_iter()
        .filter(|t| match &opts.kernel_filter {
            Some(f) => t.kernel.name.contains(f.as_str()),
            None => true,
        })
        .collect();
    if targets.is_empty() {
        eprintln!("kernel-lint: no kernels match the filter");
        return ExitCode::FAILURE;
    }

    if opts.list {
        for t in &targets {
            println!(
                "{:<28} grid {} x block {:<4} expect errors {:?} warnings {:?}",
                t.kernel.name, t.grid, t.block, t.expect_errors, t.expect_warnings
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut entries: Vec<JsonEntry> = Vec::new();
    let mut gate_failed = false;
    for target in &targets {
        for &driver in &opts.drivers {
            let cfg = target.config().with_driver(driver);
            let report = analyze_kernel(&target.kernel, &cfg);
            // Expectations are curated under the default (CUDA 1.0) rules;
            // under other drivers only unexpected *kinds* still gate.
            let violations = if driver == DriverModel::Cuda10 {
                target.check(&report)
            } else {
                Vec::new()
            };
            if !violations.is_empty() || (opts.deny && report.has_errors()) {
                gate_failed = true;
            }
            let enriched = enrich_report(report);
            if !opts.json {
                print!("{}", enriched.render());
                for v in &violations {
                    println!("  GATE: {v}");
                }
            }
            entries.push(JsonEntry { driver: driver.label().to_string(), violations, report: enriched });
        }
    }

    if opts.json {
        match serde_json::to_string_pretty(&entries) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("kernel-lint: serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let n_err: usize = entries.iter().filter(|e| e.report.report.has_errors()).count();
        let n_viol: usize = entries.iter().map(|e| e.violations.len()).sum();
        println!(
            "linted {} kernel run(s): {} with error-severity findings, {} gate violation(s)",
            entries.len(),
            n_err,
            n_viol
        );
    }

    if gate_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
