//! Host-side layout effects: the same AoS/SoA/split-SoA trade-offs the paper
//! studies on the GPU also exist in CPU caches. This bench sweeps a hot-field
//! reduction (sum of x+mass over all particles) across the host layout types
//! from particle-layouts — real `repr(C)` data, real cache behaviour.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use particle_layouts::host::{
    Particle, ParticleAligned, ParticlePacked, PosMass, SoaParticles, Velocity4,
};
use simcore::Vec3;
use std::hint::black_box;
use std::time::Duration;

fn particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| Particle {
            pos: Vec3::new(i as f32, 1.0, 2.0),
            vel: Vec3::new(3.0, 4.0, 5.0),
            mass: 1.0 + (i % 7) as f32,
        })
        .collect()
}

fn bench_hot_field_sweep(c: &mut Criterion) {
    let n = 1 << 20;
    let ps = particles(n);
    let packed: Vec<ParticlePacked> = ps.iter().map(|&p| p.into()).collect();
    let aligned: Vec<ParticleAligned> = ps.iter().map(|&p| p.into()).collect();
    let soa = SoaParticles::from_particles(&ps);
    let split: (Vec<PosMass>, Vec<Velocity4>) =
        ps.iter().map(|&p| <(PosMass, Velocity4)>::from(p)).unzip();

    let mut g = c.benchmark_group("cpu_hot_field_sweep");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.throughput(Throughput::Elements(n as u64));
    g.bench_with_input(BenchmarkId::new("packed_aos", n), &packed, |b, d| {
        b.iter(|| d.iter().map(|p| p.px + p.mass).sum::<f32>())
    });
    g.bench_with_input(BenchmarkId::new("aligned_aos", n), &aligned, |b, d| {
        b.iter(|| d.iter().map(|p| p.px + p.mass).sum::<f32>())
    });
    g.bench_with_input(BenchmarkId::new("soa", n), &soa, |b, d| {
        b.iter(|| d.px.iter().zip(&d.mass).map(|(x, m)| x + m).sum::<f32>())
    });
    g.bench_with_input(BenchmarkId::new("split_posmass", n), &split.0, |b, d| {
        b.iter(|| d.iter().map(|p| p.x + p.mass).sum::<f32>())
    });
    g.finish();
    black_box(&split.1);
}

criterion_group!(benches, bench_hot_field_sweep);
criterion_main!(benches);
