//! CPU N-body solver benchmarks: serial vs Rayon vs Barnes-Hut — the
//! comparators behind the paper's 87x narrative and Sec. I-C's complexity
//! discussion (the O(n log n) tree beating O(n^2) on a general-purpose CPU).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody::barnes_hut::accelerations_bh;
use nbody::direct::{accelerations, accelerations_par};
use nbody::model::ForceParams;
use nbody::spawn;
use std::hint::black_box;
use std::time::Duration;

fn bench_solvers(c: &mut Criterion) {
    let fp = ForceParams::default();
    let mut g = c.benchmark_group("nbody_cpu_solvers");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for n in [1024usize, 4096] {
        let bodies = spawn::plummer(n, 1.0, 1.0, 7);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("serial", n), &bodies, |b, d| {
            b.iter(|| black_box(accelerations(d, &fp)))
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &bodies, |b, d| {
            b.iter(|| black_box(accelerations_par(d, &fp)))
        });
        g.bench_with_input(BenchmarkId::new("barnes_hut_0.6", n), &bodies, |b, d| {
            b.iter(|| black_box(accelerations_bh(d, &fp, 0.6)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
