//! Criterion wrapper around the Fig. 12 frame model: one measurement per
//! optimization level at a fixed size, so regressions in the modeled ladder
//! show up in CI history.
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_kernels::force::OptLevel;
use gpu_sim::DriverModel;
use gravit_app::model::model_frame;
use std::hint::black_box;
use std::time::Duration;

fn bench_frame_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_frame_model");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for level in OptLevel::ALL {
        g.bench_function(level.label(), |b| {
            b.iter(|| black_box(model_frame(black_box(level), 100_000, DriverModel::Cuda10)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_frame_model);
criterion_main!(benches);
