//! Criterion wrapper around the Fig. 10 microbenchmark: wall time of the
//! cycle-level simulation per layout (the simulated cycle counts themselves
//! are the figure; this bench tracks the simulator's own cost and guards the
//! per-layout relative ordering against regressions).
use bench::membench_harness::run_membench;
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DriverModel;
use particle_layouts::Layout;
use std::hint::black_box;
use std::time::Duration;

fn bench_membench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_membench_sim");
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for layout in Layout::ALL {
        g.bench_function(layout.label(), |b| {
            b.iter(|| black_box(run_membench(black_box(layout), DriverModel::Cuda10)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_membench);
criterion_main!(benches);
