//! Regenerates **Figures 3/5/7/9** as a table: per-half-warp reads,
//! transactions, bus bytes and efficiency for a full 7-float record fetch
//! under each layout and driver protocol.
use bench::report::emit;
use bench::tables::transaction_table;
use gpu_sim::DriverModel;
use simcore::Table;

fn main() {
    for driver in DriverModel::ALL {
        let mut t = Table::new(
            format!("Figs. 3/5/7/9 — per-half-warp traffic, full record fetch ({driver})"),
            &[
                "layout",
                "loads",
                "transactions",
                "bus bytes",
                "useful bytes",
                "efficiency",
                "coalesced",
            ],
        );
        for a in transaction_table(driver) {
            t.row(vec![
                a.layout.label().into(),
                a.reads.to_string(),
                a.transactions.to_string(),
                a.bus_bytes.to_string(),
                a.useful_bytes.to_string(),
                format!("{:.0}%", 100.0 * a.efficiency()),
                a.all_coalesced.to_string(),
            ]);
        }
        emit(
            &t,
            &format!(
                "table_transactions_{}",
                driver.label().replace([' ', '.'], "_")
            ),
        );
    }
    println!("Paper (CC 1.0): unopt 7 reads -> 112 transactions; SoA 7 -> 7;");
    println!("AoaS 2 -> 32; SoAoaS 2 -> 4 (two coalesced 128-bit reads).");
}
