//! Regenerates **Figure 11**: speedup of each optimized layout over the
//! unoptimized baseline, per CUDA driver revision.
use bench::membench_harness::{fig10_sweep, fig11_speedups};
use bench::report::emit;
use gpu_sim::DriverModel;
use particle_layouts::Layout;
use simcore::Table;

fn main() {
    let sweep = fig10_sweep();
    let sp = fig11_speedups(&sweep);
    let mut t = Table::new(
        "Fig. 11 — Speedup for the different memory layouts (baseline: unoptimized AoS)",
        &["driver", "SoA", "AoaS", "SoAoaS"],
    );
    for driver in DriverModel::ALL {
        let get = |l: Layout| {
            sp.iter()
                .find(|(d, ll, _)| *d == driver && *ll == l)
                .unwrap()
                .2
        };
        t.row(vec![
            driver.label().into(),
            format!("{:.2}", get(Layout::SoA)),
            format!("{:.2}", get(Layout::AoaS)),
            format!("{:.2}", get(Layout::SoAoaS)),
        ]);
    }
    emit(&t, "fig11_speedup");
    println!("Paper bands: SoA ≈ 1.1x, SoAoaS ≈ 1.5x (CUDA 1.0) / ≈ 1.3x (CUDA 2.2);");
    println!("CUDA 1.1 shows a flattened, reordered profile. See EXPERIMENTS.md.");
}
