//! Regenerates the **static-analyzer cross-validation**: `gpu_sim::analyze`
//! predicts per-launch global transaction counts from per-lane symbolic
//! addresses; this table checks that prediction against the timed executor's
//! dynamic coalescer on the real membench kernels, per layout × driver.
use bench::report::emit;
use bench::tables::lint_cross_validation;
use simcore::Table;

fn main() {
    let rows = lint_cross_validation();
    let mut t = Table::new(
        "Static transaction prediction vs dynamic coalescer — membench kernels",
        &["layout", "driver", "static", "measured", "match"],
    );
    let mut mismatches = 0usize;
    for r in &rows {
        if r.predicted != r.measured {
            mismatches += 1;
        }
        t.row(vec![
            r.layout.label().to_string(),
            r.driver.label().to_string(),
            r.predicted.to_string(),
            r.measured.to_string(),
            if r.predicted == r.measured {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    emit(&t, "table_lint_validation");
    if mismatches == 0 {
        println!("The analyzer's symbolic coalescer agrees with the executor on every");
        println!("layout and driver; `kernel-lint` findings rest on exact counts.");
    } else {
        println!("[FAIL] {mismatches} static/dynamic transaction mismatches");
        std::process::exit(1);
    }
}
