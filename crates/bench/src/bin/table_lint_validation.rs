//! Regenerates the **static-analyzer cross-validation**: `gpu_sim::analyze`
//! predicts per-launch global transaction counts from per-lane symbolic
//! addresses; this table checks that prediction against the timed executor's
//! dynamic coalescer on the real membench kernels, per layout × driver.
//!
//! The second table covers the interval fragment: on the Barnes–Hut
//! traversal the analyzer cannot be exact, so its `[best, worst]`
//! transaction interval must *enclose* the dynamic measurement instead.
//!
//! Also emits `BENCH_analyze.json` — analyzer + synthesizer wall time per
//! kernel × driver across all families, so analysis-cost regressions show
//! up in review. With `--check-against PATH`, the committed baseline is
//! loaded *before* the new report overwrites it and any kernel whose wall
//! time regressed more than 2x (plus a small absolute slack for sub-ms
//! rows) fails the run — the CI `verify-kernels` job gates on this.
//!
//! Usage: `table_lint_validation [--bh-n BODIES] [--json PATH]
//!         [--check-against PATH]`.
use bench::report::emit;
use bench::tables::{bh_bounds_validation, lint_cross_validation};
use gpu_kernels::synthset::synth_targets;
use gpu_sim::DriverModel;
use serde::{Deserialize, Serialize};
use simcore::Table;

#[derive(Serialize, Deserialize)]
struct AnalyzeTime {
    kernel: String,
    driver: String,
    analyze_ms: f64,
    exact: bool,
}

#[derive(Serialize, Deserialize)]
struct AnalyzeReport {
    bench: String,
    bh_n: u32,
    kernels: Vec<AnalyzeTime>,
}

/// Maximum tolerated wall-time growth over the committed baseline: 2x,
/// with 5 ms of absolute slack so scheduler jitter on sub-millisecond
/// rows cannot trip the gate.
fn regressed(baseline_ms: f64, new_ms: f64) -> bool {
    new_ms > 2.0 * baseline_ms + 5.0
}

/// Compare the fresh timings against a committed baseline report; returns
/// the number of per-kernel regressions (each printed as it is found).
fn check_against(baseline: &AnalyzeReport, times: &[AnalyzeTime]) -> usize {
    let mut regressions = 0usize;
    for t in times {
        let Some(b) = baseline
            .kernels
            .iter()
            .find(|b| b.kernel == t.kernel && b.driver == t.driver)
        else {
            continue; // new kernel: no baseline to regress against
        };
        if regressed(b.analyze_ms, t.analyze_ms) {
            println!(
                "[FAIL] {} under {}: {:.3} ms vs committed {:.3} ms (> 2x + 5 ms)",
                t.kernel, t.driver, t.analyze_ms, b.analyze_ms
            );
            regressions += 1;
        }
    }
    regressions
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bh_n: u32 = flag(&args, "--bh-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(192);
    let json_path = flag(&args, "--json").unwrap_or_else(|| "BENCH_analyze.json".into());
    // Load the committed baseline (if requested) before it is overwritten.
    let baseline: Option<AnalyzeReport> = flag(&args, "--check-against").map(|p| {
        let text =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("--check-against {p}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check-against {p}: {e}"))
    });

    let rows = lint_cross_validation();
    let mut t = Table::new(
        "Static transaction prediction vs dynamic coalescer — membench kernels",
        &["layout", "driver", "static", "measured", "match"],
    );
    let mut mismatches = 0usize;
    let mut times = Vec::new();
    for r in &rows {
        if r.predicted != r.measured {
            mismatches += 1;
        }
        t.row(vec![
            r.layout.label().to_string(),
            r.driver.label().to_string(),
            r.predicted.to_string(),
            r.measured.to_string(),
            if r.predicted == r.measured {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
        times.push(AnalyzeTime {
            kernel: format!("membench_{}", r.layout.label()),
            driver: r.driver.label().to_string(),
            analyze_ms: r.analyze_ms,
            exact: r.exact,
        });
    }
    emit(&t, "table_lint_validation");

    let bh_rows = bh_bounds_validation(bh_n);
    let mut bt = Table::new(
        "Interval transaction bounds vs dynamic coalescer — Barnes-Hut traversal",
        &[
            "kernel",
            "driver",
            "static lo",
            "static hi",
            "measured",
            "enclosed",
        ],
    );
    let mut escapes = 0usize;
    for r in &bh_rows {
        if !r.enclosed {
            escapes += 1;
        }
        bt.row(vec![
            r.kernel.clone(),
            r.driver.label().to_string(),
            r.tx_lo.to_string(),
            r.tx_hi.to_string(),
            r.measured.to_string(),
            if r.enclosed { "yes" } else { "NO" }.to_string(),
        ]);
        times.push(AnalyzeTime {
            kernel: r.kernel.clone(),
            driver: r.driver.label().to_string(),
            analyze_ms: r.analyze_ms,
            exact: false,
        });
    }
    emit(&bt, "table_bh_bounds");

    // The synthesis targets: whole-pipeline wall time (summary extraction,
    // candidate pricing, translation-validation proofs) per kernel ×
    // driver. Best of three runs — synthesis is deterministic, so the min
    // is the honest cost and a transient load spike cannot trip the gate.
    for driver in DriverModel::ALL {
        for target in synth_targets(driver) {
            let mut best_ms = f64::INFINITY;
            let mut suggested = false;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                let report = target
                    .synthesize()
                    .unwrap_or_else(|e| panic!("{}: synthesis must price: {e}", target.name));
                best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                suggested = !report.suggestions.is_empty();
            }
            times.push(AnalyzeTime {
                kernel: format!("synth_{}", target.name),
                driver: driver.label().to_string(),
                analyze_ms: best_ms,
                exact: suggested,
            });
        }
    }

    let regressions = baseline.as_ref().map_or(0, |b| check_against(b, &times));
    if let Some(b) = &baseline {
        println!(
            "checked {} timings against committed baseline ({} kernels): {} regression(s)",
            times.len(),
            b.kernels.len(),
            regressions
        );
    }

    let report = AnalyzeReport {
        bench: "analyze".into(),
        bh_n,
        kernels: times,
    };
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write BENCH_analyze.json");
    println!("wrote {json_path}");

    if regressions > 0 {
        println!("[FAIL] {regressions} analyze/synth wall-time regressions > 2x over baseline");
        std::process::exit(1);
    }
    if mismatches == 0 && escapes == 0 {
        println!("The analyzer's symbolic coalescer agrees with the executor on every");
        println!("layout and driver, and the Barnes-Hut interval bounds enclose the");
        println!("dynamic traversal; `kernel-lint` findings rest on sound counts.");
    } else {
        if mismatches > 0 {
            println!("[FAIL] {mismatches} static/dynamic transaction mismatches");
        }
        if escapes > 0 {
            println!("[FAIL] {escapes} dynamic measurements escaped the static interval");
        }
        std::process::exit(1);
    }
}
