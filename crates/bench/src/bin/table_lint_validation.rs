//! Regenerates the **static-analyzer cross-validation**: `gpu_sim::analyze`
//! predicts per-launch global transaction counts from per-lane symbolic
//! addresses; this table checks that prediction against the timed executor's
//! dynamic coalescer on the real membench kernels, per layout × driver.
//!
//! The second table covers the interval fragment: on the Barnes–Hut
//! traversal the analyzer cannot be exact, so its `[best, worst]`
//! transaction interval must *enclose* the dynamic measurement instead.
//!
//! Also emits `BENCH_analyze.json` — analyzer wall time per kernel × driver
//! across both families, so analysis-cost regressions show up in review.
//!
//! Usage: `table_lint_validation [--bh-n BODIES] [--json PATH]`.
use bench::report::emit;
use bench::tables::{bh_bounds_validation, lint_cross_validation};
use serde::Serialize;
use simcore::Table;

#[derive(Serialize)]
struct AnalyzeTime {
    kernel: String,
    driver: String,
    analyze_ms: f64,
    exact: bool,
}

#[derive(Serialize)]
struct AnalyzeReport {
    bench: String,
    bh_n: u32,
    kernels: Vec<AnalyzeTime>,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bh_n: u32 = flag(&args, "--bh-n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(192);
    let json_path = flag(&args, "--json").unwrap_or_else(|| "BENCH_analyze.json".into());

    let rows = lint_cross_validation();
    let mut t = Table::new(
        "Static transaction prediction vs dynamic coalescer — membench kernels",
        &["layout", "driver", "static", "measured", "match"],
    );
    let mut mismatches = 0usize;
    let mut times = Vec::new();
    for r in &rows {
        if r.predicted != r.measured {
            mismatches += 1;
        }
        t.row(vec![
            r.layout.label().to_string(),
            r.driver.label().to_string(),
            r.predicted.to_string(),
            r.measured.to_string(),
            if r.predicted == r.measured {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
        times.push(AnalyzeTime {
            kernel: format!("membench_{}", r.layout.label()),
            driver: r.driver.label().to_string(),
            analyze_ms: r.analyze_ms,
            exact: r.exact,
        });
    }
    emit(&t, "table_lint_validation");

    let bh_rows = bh_bounds_validation(bh_n);
    let mut bt = Table::new(
        "Interval transaction bounds vs dynamic coalescer — Barnes-Hut traversal",
        &[
            "kernel",
            "driver",
            "static lo",
            "static hi",
            "measured",
            "enclosed",
        ],
    );
    let mut escapes = 0usize;
    for r in &bh_rows {
        if !r.enclosed {
            escapes += 1;
        }
        bt.row(vec![
            r.kernel.clone(),
            r.driver.label().to_string(),
            r.tx_lo.to_string(),
            r.tx_hi.to_string(),
            r.measured.to_string(),
            if r.enclosed { "yes" } else { "NO" }.to_string(),
        ]);
        times.push(AnalyzeTime {
            kernel: r.kernel.clone(),
            driver: r.driver.label().to_string(),
            analyze_ms: r.analyze_ms,
            exact: false,
        });
    }
    emit(&bt, "table_bh_bounds");

    let report = AnalyzeReport {
        bench: "analyze".into(),
        bh_n,
        kernels: times,
    };
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write BENCH_analyze.json");
    println!("wrote {json_path}");

    if mismatches == 0 && escapes == 0 {
        println!("The analyzer's symbolic coalescer agrees with the executor on every");
        println!("layout and driver, and the Barnes-Hut interval bounds enclose the");
        println!("dynamic traversal; `kernel-lint` findings rest on sound counts.");
    } else {
        if mismatches > 0 {
            println!("[FAIL] {mismatches} static/dynamic transaction mismatches");
        }
        if escapes > 0 {
            println!("[FAIL] {escapes} dynamic measurements escaped the static interval");
        }
        std::process::exit(1);
    }
}
