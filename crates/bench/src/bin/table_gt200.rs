//! Regenerates the **device sensitivity** study (the paper's future work:
//! "how the basic principles can be tuned for different GPU models"): the
//! tuned kernel's occupancy on G80 vs GT200.
use bench::report::emit;
use bench::tables::device_sensitivity;
use simcore::Table;

fn main() {
    let mut t = Table::new(
        "Device sensitivity — SoAoaS + unroll + ICM, block 128",
        &["device", "active warps", "regs/thread", "occupancy"],
    );
    for (name, warps, regs, pct) in device_sensitivity() {
        t.row(vec![
            name,
            warps.to_string(),
            regs.to_string(),
            format!("{pct:.0}%"),
        ]);
    }
    emit(&t, "table_gt200");
    println!("GT200's doubled register file lifts the ceiling: the same 16-register");
    println!("kernel that needed the paper's ICM trick on G80 is no longer register-bound.");
}
