//! Cross-validates the **layout/schedule synthesizer** (`analyze::synth`)
//! against the dynamic timing engine: for every driver, the naive 28-byte
//! AoS force kernel is handed to the synthesizer, and the baseline plus
//! every *proven* suggestion is timed dynamically with its rewritten
//! buffers actually allocated and filled. The static and measured
//! orderings must agree wherever the measured gap is outside noise (3 %
//! relative), the winner's predicted speedup must land inside the
//! hand-derived ladder's measured band (1.24× ± 5 %), and every suggestion
//! must carry a translation-validation certificate. Exits non-zero on any
//! violation — the CI `verify-kernels` job gates on this.
use bench::report::emit;
use bench::tables::{synth_ranking_disagreements, synth_vs_measured};
use gpu_kernels::synthset::within_ladder_band;
use gpu_sim::DriverModel;
use simcore::{format_duration_s, Table};
use std::process::ExitCode;

fn main() -> ExitCode {
    let n = 24_576u32;
    let mut failures = 0usize;
    let mut t = Table::new(
        format!("Synthesized candidates: static rank vs dynamic engine — naive AoS force kernel, N = {n}"),
        &[
            "driver",
            "candidate",
            "predicted cycles",
            "predicted speedup",
            "measured time",
            "measured speedup",
            "regs",
            "certificate",
        ],
    );
    for driver in DriverModel::ALL {
        let rows = synth_vs_measured(n, driver);
        for r in &rows {
            t.row(vec![
                driver.label().to_string(),
                r.label.clone(),
                format!("{:.0}", r.predicted_cycles),
                format!("{:.3}x", r.predicted_speedup),
                format_duration_s(r.measured_seconds),
                format!("{:.3}x", r.measured_speedup),
                r.regs.to_string(),
                r.certificate.clone(),
            ]);
        }
        let bad = synth_ranking_disagreements(&rows, 0.03);
        for &(i, j) in &bad {
            eprintln!(
                "RANKING DISAGREEMENT under {}: {} vs {} (predicted {:.0} vs {:.0} cycles, \
                 measured {:.6}s vs {:.6}s)",
                driver.label(),
                rows[i].label,
                rows[j].label,
                rows[i].predicted_cycles,
                rows[j].predicted_cycles,
                rows[i].measured_seconds,
                rows[j].measured_seconds,
            );
        }
        failures += bad.len();
        // Row 0 is the baseline; row 1, when present, is the proven winner.
        match rows.get(1) {
            Some(winner) => {
                if !within_ladder_band(winner.predicted_speedup) {
                    eprintln!(
                        "WINNER OUTSIDE LADDER BAND under {}: {} predicted {:.3}x \
                         (expected 1.24x ± 5%)",
                        driver.label(),
                        winner.label,
                        winner.predicted_speedup
                    );
                    failures += 1;
                }
            }
            None => {
                eprintln!(
                    "NO PROVEN SUGGESTION under {}: synthesis found nothing to certify",
                    driver.label()
                );
                failures += 1;
            }
        }
        for r in rows.iter().skip(1) {
            if r.certificate.contains("MISMATCH") || r.certificate.contains("unsupported") {
                eprintln!(
                    "UNCERTIFIED SUGGESTION under {}: {} ({})",
                    driver.label(),
                    r.label,
                    r.certificate
                );
                failures += 1;
            }
        }
    }
    emit(&t, "table_synth");
    if failures > 0 {
        eprintln!("table_synth: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("table_synth: static and measured rankings agree; all suggestions certified");
    ExitCode::SUCCESS
}
