//! Regenerates the **methodology validation**: the Fig. 12 numbers come from
//! wave extrapolation (simulate one resident wave, multiply by wave count);
//! this experiment checks that shortcut against the exact full-grid
//! simulation (every block dispatched through per-SM queues) at sizes where
//! the exact run is affordable.
use bench::report::emit;
use gpu_kernels::force::{build_force_kernel, force_params, ForceKernelConfig};
use gpu_sim::exec::timed::{time_grid, time_resident};
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
use particle_layouts::{DeviceImage, Layout, Particle};
use simcore::{Table, Vec3};

fn main() {
    let dev = DeviceConfig::g8800gtx();
    let driver = DriverModel::Cuda10;
    let tp = TimingParams::for_driver(driver);
    let cfg = ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 128,
        unroll: 128,
        icm: true,
    };
    let kernel = build_force_kernel(cfg);
    let regs = register_demand(&kernel).regs_per_thread as u32;
    let occ = occupancy(&dev, cfg.block, regs, kernel.smem_bytes);

    let mut t = Table::new(
        "Wave extrapolation vs exact full-grid simulation — tuned force kernel",
        &[
            "N",
            "blocks",
            "exact cycles",
            "wave-model cycles",
            "relative error",
        ],
    );
    for n in [2_048u32, 4_096, 8_192] {
        let particles: Vec<Particle> = (0..n)
            .map(|i| Particle {
                pos: Vec3::new(i as f32 * 0.01, 1.0, 2.0),
                vel: Vec3::ZERO,
                mass: 1.0,
            })
            .collect();
        let mut gmem = GlobalMemory::new(256 << 20);
        let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)
            .expect("validation upload fits");
        let out = particle_layouts::device::alloc_accel_out(&mut gmem, img.padded_n)
            .expect("output fits");
        let params = force_params(&img, out, 0.05);
        let grid = img.padded_n / cfg.block;

        let exact = time_grid(
            &kernel,
            grid,
            cfg.block,
            occ.active_blocks,
            &params,
            &mut gmem.clone(),
            &dev,
            driver,
            &tp,
        )
        .expect("exact dispatch is well-formed");
        // The wave model's residency cannot exceed what the grid actually
        // puts on an SM (matters only at validation-scale grids; the Fig. 12
        // sweeps have hundreds of blocks per SM).
        let per_sm = (grid.div_ceil(dev.num_sms)).max(1);
        let resident: Vec<u32> = (0..occ.active_blocks.min(per_sm).min(grid)).collect();
        let wave = time_resident(
            &kernel, &resident, cfg.block, grid, &params, &mut gmem, &dev, driver, &tp,
        )
        .expect("wave launch is well-formed");
        let waves = (grid as u64).div_ceil(dev.num_sms as u64 * resident.len() as u64);
        let est = wave.cycles * waves;
        let err = (est as f64 - exact.cycles as f64) / exact.cycles as f64;
        t.row(vec![
            n.to_string(),
            grid.to_string(),
            exact.cycles.to_string(),
            est.to_string(),
            format!("{:+.1}%", 100.0 * err),
        ]);
    }
    emit(&t, "table_model_validation");
    println!("The wave model is the production path (Fig. 12 sweeps to 10^6 bodies);");
    println!("the exact dispatch simulation bounds its error at affordable sizes.");
}
