//! Regenerates the **shared-memory bank-conflict** supporting experiment
//! (Sec. I-A's serialization rule): measured cycles vs analytic conflict
//! degree across word strides.
use bench::report::emit;
use bench::tables::bank_sweep;
use simcore::Table;

fn main() {
    let mut t = Table::new(
        "Shared-memory bank conflicts — strided reads, 16 banks (CUDA 1.0 model)",
        &[
            "word stride",
            "conflict degree",
            "cycles",
            "vs conflict-free",
        ],
    );
    let rows = bank_sweep();
    let free = rows.iter().find(|r| r.stride == 1).unwrap().cycles as f64;
    for r in &rows {
        t.row(vec![
            r.stride.to_string(),
            r.degree.to_string(),
            r.cycles.to_string(),
            format!("{:.2}x", r.cycles as f64 / free),
        ]);
    }
    emit(&t, "table_banks");
    println!("The force kernel's inner loop broadcasts one word to all lanes — degree 1,");
    println!("which is why the paper's tiling strategy is bank-conflict-free by design.");
}
