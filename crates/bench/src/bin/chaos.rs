//! Chaos soak harness: randomized, seeded transient-fault campaigns against
//! the full simulation stack.
//!
//! Each campaign runs the same workload twice — once fault-free (the
//! reference) and once under a seeded [`TransientFaultPlan`] injecting bit
//! flips, transient launch failures and kernel hangs — and asserts the
//! recovery invariants end to end:
//!
//! 1. the recovered run's final state is **bit-identical** to the fault-free
//!    reference (retries re-upload from host state; exhausted retries degrade
//!    to the bit-identical CPU path — either way the trajectory is exact);
//! 2. every frame's retry count stays within the configured budget;
//! 3. every fault that *must* have fired (injected launch failures and
//!    hangs) is attributed in `fault_reports` with its retry history;
//! 4. kill + resume: every fourth campaign checkpoints mid-run, drops the
//!    simulation at a seed-derived step, resumes from the latest checkpoint
//!    (under fresh fault injection), and must still converge bit-identical.
//!
//! With `--device-mem BYTES` the faulty runs additionally execute under a
//! constricted device capacity: the degradation ladder must engage (every
//! frame's report carries its downgrade history) while the trajectory stays
//! bit-identical to the *unconstrained* fault-free reference — memory
//! pressure and transient chaos soak-tested together.
//!
//! Usage: `chaos [--campaigns N] [--steps S] [--n BODIES] [--seed SEED]
//! [--max-retries R] [--device-mem BYTES]`. Any violated invariant exits
//! nonzero.

use gpu_kernels::force::OptLevel;
use gpu_sim::transient::{FaultRates, LaunchFault, TransientFaultPlan};
use gpu_sim::DriverModel;
use gravit_app::backend::{Backend, FaultPolicy, FaultReport};
use gravit_app::checkpoint::Checkpoint;
use gravit_app::config::{SimConfig, SpawnKind};
use gravit_app::recovery::RecoveryPolicy;
use gravit_app::sim::Simulation;
use simcore::SplitMix64;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

struct Violations(usize);

impl Violations {
    fn check(&mut self, ok: bool, what: &str) {
        if !ok {
            eprintln!("VIOLATION: {what}");
            self.0 += 1;
        }
    }
}

fn config(n: usize, seed: u64, max_retries: u32, device_mem: Option<u64>) -> SimConfig {
    SimConfig {
        n,
        spawn: SpawnKind::UniformBall { radius: 4.0 },
        seed,
        dt: 0.01,
        backend: Backend::GpuSim {
            level: OptLevel::Full,
            driver: DriverModel::Cuda10,
        },
        fault_policy: FaultPolicy::FallbackToCpu,
        recovery: RecoveryPolicy {
            max_retries,
            watchdog_instructions: Some(1 << 22),
            device_capacity: device_mem,
            ..RecoveryPolicy::default()
        },
        ..SimConfig::default()
    }
}

/// Faulty launches the plan provably injected over its first `launches`
/// draws that cannot be healed silently: launch failures and hangs always
/// error (bit flips may land in redzones or be overwritten harmlessly).
fn guaranteed_faults(plan: &TransientFaultPlan) -> usize {
    (0..plan.launches())
        .filter(|&k| {
            matches!(
                plan.fate_of(k),
                LaunchFault::LaunchFailure | LaunchFault::Hang
            )
        })
        .count()
}

/// Faulty launches attributed across the reports: each retry event is one
/// failed launch, plus the final failed launch of every frame that exhausted
/// its retries and degraded to the CPU.
fn attributed_faults(reports: &[FaultReport]) -> usize {
    reports
        .iter()
        .map(|r| r.retries.len() + usize::from(r.degraded_to == "cpu-parallel"))
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let campaigns: u64 = flag(&args, "--campaigns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let steps: u64 = flag(&args, "--steps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let n: usize = flag(&args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let base_seed: u64 = flag(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let max_retries: u32 = flag(&args, "--max-retries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let device_mem: Option<u64> = flag(&args, "--device-mem").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--device-mem expects a byte count, got `{v}`");
            std::process::exit(2);
        })
    });

    // With a constricted capacity the plan must degrade off the full rung —
    // that is the point of the soak; an ample capacity is a usage error.
    let constricted = match device_mem {
        Some(cap) => {
            let plan = gravit_app::pressure::plan_frame(OptLevel::Full, n as u32, Some(cap));
            if plan.mode == gravit_app::pressure::ExecMode::Full {
                eprintln!(
                    "--device-mem {cap} does not constrict n={n} (full budget {} B fits)",
                    plan.full_budget
                );
                std::process::exit(2);
            }
            println!(
                "memory pressure: capacity {cap} B vs {} B working set ({:.1}x constriction), \
                 planned mode {}",
                plan.full_budget,
                plan.full_budget as f64 / cap as f64,
                plan.mode.label()
            );
            true
        }
        None => false,
    };

    println!(
        "chaos soak: {campaigns} campaigns x {steps} steps, n={n}, base seed {base_seed}, \
         retry budget {max_retries}"
    );
    let mut violations = Violations(0);
    let mut total_faults = 0usize;

    for c in 0..campaigns {
        let seed = SplitMix64::mix(base_seed ^ c);
        // Fault-free, *unconstrained* reference trajectory: the pressured
        // runs must converge bit-identical across execution modes too.
        let mut reference = Simulation::new(config(n, base_seed, max_retries, None))
            .expect("chaos config is valid");
        reference.run(steps).expect("fault-free run");

        // Campaign fault mix: rotate the stress profile.
        let rates = match c % 4 {
            0 => FaultRates {
                bit_flip: 0.5,
                launch_failure: 0.0,
                hang: 0.0,
            },
            1 => FaultRates {
                bit_flip: 0.0,
                launch_failure: 0.4,
                hang: 0.2,
            },
            2 => FaultRates {
                bit_flip: 0.25,
                launch_failure: 0.15,
                hang: 0.15,
            },
            _ => FaultRates {
                bit_flip: 0.2,
                launch_failure: 0.2,
                hang: 0.1,
            },
        };
        let kill_resume = c % 4 == 3;
        let label = if kill_resume {
            "kill+resume"
        } else {
            "straight"
        };

        let (sim, reports, injected) = if kill_resume {
            run_kill_resume_campaign(n, base_seed, max_retries, device_mem, steps, seed, rates)
        } else {
            let mut sim =
                Simulation::new(config(n, base_seed, max_retries, device_mem)).expect("valid");
            sim.set_transient_faults(TransientFaultPlan::new(seed, rates));
            sim.run(steps)
                .expect("recovery must survive every transient fault");
            let injected = sim.transient_faults().map(guaranteed_faults).unwrap_or(0);
            let reports = sim.fault_reports.clone();
            (sim, reports, injected)
        };

        // Invariant 1: bit-identical convergence.
        violations.check(
            sim.bodies == reference.bodies && sim.accels == reference.accels,
            &format!("campaign {c} ({label}): final state diverged from fault-free reference"),
        );
        violations.check(
            sim.time.to_bits() == reference.time.to_bits() && sim.steps == reference.steps,
            &format!("campaign {c} ({label}): clock/step divergence"),
        );
        // Invariant 2: retry counts within budget.
        for (i, r) in reports.iter().enumerate() {
            violations.check(
                r.retries.len() <= max_retries as usize,
                &format!(
                    "campaign {c} ({label}): report {i} used {} retries (budget {max_retries})",
                    r.retries.len()
                ),
            );
        }
        // Invariant 3: every guaranteed-to-fire fault is attributed.
        let attributed = attributed_faults(&reports);
        violations.check(
            attributed >= injected,
            &format!(
                "campaign {c} ({label}): {injected} injected launch-failures/hangs but only \
                 {attributed} attributed in fault_reports"
            ),
        );
        // Invariant 4 (pressure soak): under a constricted capacity every
        // frame is admitted off the full rung, so every report must carry
        // its degradation ladder starting at `full`.
        if constricted {
            violations.check(
                !reports.is_empty(),
                &format!("campaign {c} ({label}): constricted run logged no degradations"),
            );
            for (i, r) in reports.iter().enumerate() {
                violations.check(
                    r.ladder.first().map(|e| e.from == "full").unwrap_or(false),
                    &format!("campaign {c} ({label}): report {i} missing its pressure ladder"),
                );
            }
        }
        // Retry history shape: a retried frame records attempts 0..k in order.
        for r in &reports {
            for (k, ev) in r.retries.iter().enumerate() {
                violations.check(
                    ev.attempt == k as u32,
                    &format!("campaign {c} ({label}): retry history out of order"),
                );
            }
        }
        total_faults += attributed;
        println!(
            "campaign {c:2} [{label:11}] rates(flip={:.2} launch={:.2} hang={:.2}): \
             {} reports, {attributed} faulty launches attributed, state bit-identical",
            rates.bit_flip,
            rates.launch_failure,
            rates.hang,
            reports.len(),
        );
    }

    println!(
        "chaos soak done: {campaigns} campaigns, {total_faults} faulty launches survived, \
         {} violations",
        violations.0
    );
    if violations.0 > 0 {
        std::process::exit(1);
    }
}

/// Run a campaign that checkpoints every few steps, "dies" at a seed-derived
/// step, resumes from the latest checkpoint under fresh fault injection, and
/// finishes the remaining steps. Returns the finished simulation, the fault
/// reports of the *surviving* lineage (pre-kill reports travel through the
/// checkpoint), and the number of guaranteed-to-fire injected faults in that
/// lineage.
fn run_kill_resume_campaign(
    n: usize,
    workload_seed: u64,
    max_retries: u32,
    device_mem: Option<u64>,
    steps: u64,
    seed: u64,
    rates: FaultRates,
) -> (Simulation, Vec<FaultReport>, usize) {
    let every = (steps / 4).max(1);
    let kill_at = 1 + SplitMix64::mix(seed) % (steps - 1);
    let dir = std::env::temp_dir().join(format!("gravit-chaos-{}-{seed:x}", std::process::id()));
    let path = dir.join("campaign.ckpt");

    let mut first =
        Simulation::new(config(n, workload_seed, max_retries, device_mem)).expect("valid");
    first.set_transient_faults(TransientFaultPlan::new(seed, rates));
    let mut last_ckpt_steps = 0;
    while first.steps < kill_at {
        first.step().expect("recovery must survive");
        if first.steps.is_multiple_of(every) {
            first.checkpoint().save(&path).expect("checkpoint saves");
            last_ckpt_steps = first.steps;
        }
    }
    drop(first); // the kill

    // Faults injected between the last checkpoint and the kill died with the
    // process (their lineage no longer exists), so the attributed-faults
    // invariant counts only what the surviving lineage injected after
    // resume; the checkpoint carries the prefix's report log on top.
    let mut sim = if last_ckpt_steps > 0 {
        let ckpt = Checkpoint::load(&path).expect("latest checkpoint loads");
        Simulation::resume(config(n, workload_seed, max_retries, device_mem), &ckpt)
            .expect("resume")
    } else {
        Simulation::new(config(n, workload_seed, max_retries, device_mem)).expect("valid")
    };
    sim.set_transient_faults(TransientFaultPlan::new(
        SplitMix64::mix(seed ^ 0xD1E),
        rates,
    ));
    sim.run(steps - sim.steps).expect("resumed run survives");
    let injected_after = sim.transient_faults().map(guaranteed_faults).unwrap_or(0);
    let reports = sim.fault_reports.clone();
    std::fs::remove_dir_all(&dir).ok();
    (sim, reports, injected_after)
}
