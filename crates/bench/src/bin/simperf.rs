//! simperf — wall-clock benchmark of the *simulator itself* (not the modeled
//! device): how fast the functional and timed executors chew through
//! representative launches, sequentially and with the parallel block
//! executor (`std::thread::scope` over block shards, deterministic
//! commit/merge — see `gpu_sim::exec::functional` and DESIGN.md §15).
//!
//! Three workloads, each deterministic down to the bit:
//!
//! * `force_n4096` — one gravit force frame (OptLevel::Full, 4096 bodies,
//!   32 blocks × 128 threads) on the functional executor;
//! * `membench_soaos` — the SoAoaS membench kernel, 64 blocks × 64 threads,
//!   functional;
//! * `timed_membench` — the same kernel on the cycle-level timed executor
//!   (16 SMs, parallel across per-SM queues).
//!
//! Per workload × thread count the wall time is the **best of N runs**
//! (default 3): the minimum of repeats is the least noisy estimator on
//! load-sensitive runners. Every run's output memory is checksummed
//! (FNV-1a) and folded with the executor's statistics; a parallel run whose
//! checksum differs from the sequential run of the same workload is a
//! determinism bug and fails the binary immediately.
//!
//! Emits `BENCH_sim.json`. With `--check-against PATH`, the committed
//! baseline is loaded first and the run fails on (a) any checksum or
//! instruction-count drift — bit-identity is host-independent — or (b) a
//! wall-time regression beyond 1.2× + 50 ms slack.
//!
//! Usage: `simperf [--threads 1,8] [--reps N] [--json PATH]
//!         [--check-against PATH]`.

use gpu_kernels::force::{build_force_kernel, force_params, OptLevel};
use gpu_kernels::membench::{build_membench_kernel, MembenchConfig};
use gpu_sim::exec::functional::run_lowered_full;
use gpu_sim::exec::timed::time_grid_lowered_full;
use gpu_sim::ir::lower::lower;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
use nbody::model::ForceParams;
use nbody::spawn;
use particle_layouts::device::alloc_accel_out;
use particle_layouts::{DeviceImage, Layout, Particle};
use serde::{Deserialize, Serialize};
use simcore::Table;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fold_u64(h: u64, v: u64) -> u64 {
    fnv1a(&v.to_le_bytes(), h)
}

/// One measured (workload, thread-count) cell.
#[derive(Serialize, Deserialize)]
struct SimRow {
    workload: String,
    threads: usize,
    /// Best-of-reps wall milliseconds.
    wall_ms: f64,
    /// Warp instructions the executor reported (bit-identity witness #1).
    warp_instructions: u64,
    /// FNV-1a over the output memory + run statistics, hex
    /// (bit-identity witness #2).
    checksum: String,
}

#[derive(Serialize, Deserialize)]
struct SimReport {
    bench: String,
    /// Physical cores of the measuring host — wall times and speedups are
    /// only comparable against a baseline from a similar machine, and a
    /// 1-core host cannot show wall-clock parallel speedup at all.
    host_cores: usize,
    rows: Vec<SimRow>,
}

/// Outcome of one executed workload: output checksum + instruction count.
struct Outcome {
    checksum: u64,
    warp_instructions: u64,
}

/// One force frame of gravit on the functional executor, decode-once,
/// explicit thread count. Mirrors `gravit_app::backend::gpu_frame`.
fn force_frame(threads: usize) -> Outcome {
    let level = OptLevel::Full;
    let cfg = level.config();
    let prog = lower(&build_force_kernel(cfg));
    let fp = ForceParams::default();
    let bodies = spawn::uniform_ball(4096, 5.0, 2.0, 42);
    let particles: Vec<Particle> = (0..bodies.len())
        .map(|i| Particle {
            pos: bodies.pos[i],
            vel: bodies.vel[i],
            mass: fp.g * bodies.mass[i],
        })
        .collect();
    let mut gmem = GlobalMemory::new(64 << 20);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)
        .expect("bench upload fits");
    let out = alloc_accel_out(&mut gmem, img.padded_n).expect("bench output fits");
    let params = force_params(&img, out, fp.softening);
    let grid = img.padded_n / cfg.block;
    let run = run_lowered_full(
        &prog, grid, cfg.block, &params, &mut gmem, None, None, threads,
    )
    .expect("bench frame is well-formed");
    let accels = gmem
        .download(out, u64::from(img.n) * 16)
        .expect("output is initialized");
    let mut h = fnv1a(&accels, FNV_OFFSET);
    h = fold_u64(h, run.warp_instructions);
    h = fold_u64(h, run.barriers);
    Outcome {
        checksum: h,
        warp_instructions: run.warp_instructions,
    }
}

/// Shared setup for the membench workloads: kernel + device image + output
/// buffers, returning everything a launch needs.
fn membench_setup(
    grid: u32,
    block: u32,
) -> (
    gpu_sim::ir::lower::Program,
    GlobalMemory,
    Vec<u32>,
    [(u64, u64); 2],
) {
    let cfg = MembenchConfig {
        layout: Layout::SoAoaS,
        iters: 2,
    };
    let kernel = build_membench_kernel(cfg);
    let prog = lower(&kernel);
    let n = cfg.particles_needed(grid, block) as usize;
    let ps: Vec<Particle> = (0..n).map(|_| Particle::SENTINEL).collect();
    let mut gmem = GlobalMemory::new(64 << 20);
    let img = DeviceImage::upload(&mut gmem, cfg.layout, &ps, block).expect("bench upload fits");
    let out_bytes = u64::from(grid * block) * 4;
    let out_delta = gmem.alloc(out_bytes).expect("delta fits");
    let out_sum = gmem.alloc(out_bytes).expect("sum fits");
    let mut params = img.base_params();
    params.push(out_delta.0 as u32);
    params.push(out_sum.0 as u32);
    let outs = [(out_delta.0, out_bytes), (out_sum.0, out_bytes)];
    (prog, gmem, params, outs)
}

/// Checksum the output buffers of a membench launch (each downloaded
/// separately — allocations are redzone-separated).
fn checksum_outputs(gmem: &GlobalMemory, outs: &[(u64, u64)]) -> u64 {
    let mut h = FNV_OFFSET;
    for &(addr, bytes) in outs {
        let data = gmem
            .download(gpu_sim::mem::DevicePtr(addr), bytes)
            .expect("outputs are initialized");
        h = fnv1a(&data, h);
    }
    h
}

fn membench_functional(threads: usize) -> Outcome {
    let (grid, block) = (64u32, 64u32);
    let (prog, mut gmem, params, outs) = membench_setup(grid, block);
    let run = run_lowered_full(&prog, grid, block, &params, &mut gmem, None, None, threads)
        .expect("bench launch is well-formed");
    let mut h = checksum_outputs(&gmem, &outs);
    h = fold_u64(h, run.warp_instructions);
    h = fold_u64(h, run.barriers);
    Outcome {
        checksum: h,
        warp_instructions: run.warp_instructions,
    }
}

fn membench_timed(threads: usize) -> Outcome {
    let (grid, block) = (64u32, 64u32);
    let (prog, mut gmem, params, outs) = membench_setup(grid, block);
    let dev = DeviceConfig::g8800gtx();
    let driver = DriverModel::Cuda10;
    let tp = TimingParams::for_driver(driver);
    let run = time_grid_lowered_full(
        &prog, grid, block, 1, &params, &mut gmem, &dev, driver, &tp, threads,
    )
    .expect("bench launch is well-formed");
    let mut h = checksum_outputs(&gmem, &outs);
    h = fold_u64(h, run.warp_instructions);
    h = fold_u64(h, run.cycles);
    h = fold_u64(h, run.transactions);
    h = fold_u64(h, run.bus_bytes);
    Outcome {
        checksum: h,
        warp_instructions: run.warp_instructions,
    }
}

/// Wall-time regression gate: beyond 1.2× the committed baseline plus 50 ms
/// absolute slack (scheduler jitter must not trip short rows).
fn regressed(baseline_ms: f64, new_ms: f64) -> bool {
    new_ms > 1.2 * baseline_ms + 50.0
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: Vec<usize> = flag(&args, "--threads")
        .unwrap_or_else(|| "1,8".into())
        .split(',')
        .map(|t| t.trim().parse().expect("--threads takes e.g. 1,8"))
        .collect();
    let reps: usize = flag(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let json_path = flag(&args, "--json").unwrap_or_else(|| "BENCH_sim.json".into());
    let baseline: Option<SimReport> = flag(&args, "--check-against").map(|p| {
        let text =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("--check-against {p}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check-against {p}: {e}"))
    });
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    type Workload = fn(usize) -> Outcome;
    let workloads: Vec<(&str, Workload)> = vec![
        ("force_n4096", force_frame),
        ("membench_soaos", membench_functional),
        ("timed_membench", membench_timed),
    ];

    let mut rows: Vec<SimRow> = Vec::new();
    let mut determinism_failures = 0usize;
    for (name, run) in &workloads {
        // The sequential run is the reference every parallel run must match.
        let mut reference: Option<Outcome> = None;
        for &t in &threads {
            let mut best_ms = f64::INFINITY;
            let mut outcome = None;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                let o = run(t);
                best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                outcome = Some(o);
            }
            let o = outcome.expect("at least one rep");
            if let Some(r) = &reference {
                if r.checksum != o.checksum || r.warp_instructions != o.warp_instructions {
                    println!(
                        "[FAIL] {name} at {t} threads diverged from {} threads: \
                         checksum {:016x} vs {:016x}, instructions {} vs {}",
                        threads[0],
                        o.checksum,
                        r.checksum,
                        o.warp_instructions,
                        r.warp_instructions
                    );
                    determinism_failures += 1;
                }
            } else {
                reference = Some(Outcome {
                    checksum: o.checksum,
                    warp_instructions: o.warp_instructions,
                });
            }
            rows.push(SimRow {
                workload: (*name).to_string(),
                threads: t,
                wall_ms: best_ms,
                warp_instructions: o.warp_instructions,
                checksum: format!("{:016x}", o.checksum),
            });
        }
    }

    let mut table = Table::new(
        "Simulator executor wall time — parallel block execution",
        &["workload", "threads", "wall ms", "speedup", "checksum"],
    );
    for r in &rows {
        let base = rows
            .iter()
            .find(|b| b.workload == r.workload && b.threads == threads[0])
            .expect("reference row exists");
        table.row(vec![
            r.workload.clone(),
            r.threads.to_string(),
            format!("{:.2}", r.wall_ms),
            format!("{:.2}x", base.wall_ms / r.wall_ms),
            r.checksum.clone(),
        ]);
    }
    print!("{}", table.to_markdown());
    println!("host cores: {host_cores}");

    // Baseline gate: bit-identity is host-independent and absolute; wall
    // time gets the 1.2x + slack envelope.
    let mut gate_failures = 0usize;
    if let Some(b) = &baseline {
        for r in &rows {
            let Some(base) = b
                .rows
                .iter()
                .find(|x| x.workload == r.workload && x.threads == r.threads)
            else {
                continue; // new cell: nothing to regress against
            };
            if base.checksum != r.checksum || base.warp_instructions != r.warp_instructions {
                println!(
                    "[FAIL] {} at {} threads drifted from the committed baseline: \
                     checksum {} vs {}, instructions {} vs {}",
                    r.workload,
                    r.threads,
                    r.checksum,
                    base.checksum,
                    r.warp_instructions,
                    base.warp_instructions
                );
                gate_failures += 1;
            }
            if regressed(base.wall_ms, r.wall_ms) {
                println!(
                    "[FAIL] {} at {} threads: {:.2} ms vs committed {:.2} ms (> 1.2x + 50 ms)",
                    r.workload, r.threads, r.wall_ms, base.wall_ms
                );
                gate_failures += 1;
            }
        }
        println!(
            "checked {} cells against committed baseline (host_cores {} vs baseline {})",
            rows.len(),
            host_cores,
            b.host_cores
        );
    }

    let report = SimReport {
        bench: "sim".into(),
        host_cores,
        rows,
    };
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write BENCH_sim.json");
    println!("wrote {json_path}");

    if determinism_failures > 0 {
        println!("[FAIL] {determinism_failures} parallel runs were not bit-identical");
        std::process::exit(1);
    }
    if gate_failures > 0 {
        println!("[FAIL] {gate_failures} baseline-gate failures");
        std::process::exit(1);
    }
    println!("all thread counts bit-identical; executor performance recorded");
}
