//! Fleet chaos soak + throughput benchmark: the supervised device pool under
//! rotating fault mixes, with every runtime invariant checked from outside.
//!
//! **Soak** (`--jobs J --devices D`, default 200×4): campaigns of jobs are
//! driven through a faulty pool while the harness asserts, per tick and per
//! campaign:
//!
//! 1. no admitted job is ever lost — `completed + rejected == submitted` and
//!    the fleet drains to idle;
//! 2. every completed job's final state is **bit-identical** to a fault-free
//!    single-device reference run of the same spec;
//! 3. a quarantined device is fully drained — its queue is empty on the very
//!    tick the quarantine is entered and stays empty while it lasts;
//! 4. every refused submission carries a typed [`Rejected`] reason;
//! 5. the same seed replays the event log, per-device fault history and
//!    final states exactly (campaign 0 is run twice and compared).
//!
//! **Throughput** rows drive a quiet batch through pool sizes {1, 2, 4} and
//! record jobs/sec into `BENCH_fleet.json`. The event log and final states
//! are checksummed (FNV-1a): with `--check-against PATH` any checksum or
//! tick-count drift against the committed baseline fails hard (scheduling is
//! host-independent), while wall time gets a 1.2× + 50 ms envelope.
//!
//! Usage: `fleet [--devices D] [--jobs J] [--campaigns C] [--n N]
//!         [--steps S] [--seed SEED] [--json PATH] [--check-against PATH]
//!         [--skip-perf] [--skip-soak]`. Any violation exits nonzero.

use gpu_kernels::force::OptLevel;
use gpu_sim::transient::FaultRates;
use gpu_sim::{DevicePool, DeviceSpec, DriverModel};
use gravit_app::backend::{Backend, FaultPolicy};
use gravit_app::checkpoint::Checkpoint;
use gravit_app::config::{SimConfig, SpawnKind};
use gravit_app::fleet::{Fleet, FleetConfig, FleetEvent, Health, JobSpec, Rejected};
use gravit_app::sim::Simulation;
use serde::{Deserialize, Serialize};
use simcore::{SplitMix64, Table};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

struct Violations(usize);

impl Violations {
    fn check(&mut self, ok: bool, what: &str) {
        if !ok {
            eprintln!("VIOLATION: {what}");
            self.0 += 1;
        }
    }
}

fn job(id: u64, n: usize, steps: u64, workload_seed: u64) -> JobSpec {
    JobSpec {
        id,
        tenant: format!("tenant-{}", id % 4),
        config: SimConfig {
            n,
            spawn: SpawnKind::UniformBall { radius: 4.0 },
            seed: workload_seed ^ id,
            dt: 0.01,
            backend: Backend::GpuSim {
                level: OptLevel::Full,
                driver: DriverModel::Cuda10,
            },
            fault_policy: FaultPolicy::FallbackToCpu,
            ..SimConfig::default()
        },
        steps,
    }
}

/// Physics-only checkpoint equality: the fault log legitimately differs
/// between a chaotic fleet lineage and a clean reference.
fn physics_eq(a: &Checkpoint, b: &Checkpoint) -> bool {
    a.time_bits == b.time_bits
        && a.steps == b.steps
        && a.pos == b.pos
        && a.vel == b.vel
        && a.mass == b.mass
        && a.accels == b.accels
        && a.energy0_bits == b.energy0_bits
}

/// The campaign's rotating stress profile (mirrors the chaos soak).
fn campaign_rates(c: u64) -> FaultRates {
    match c % 4 {
        0 => FaultRates {
            bit_flip: 0.5,
            launch_failure: 0.0,
            hang: 0.0,
        },
        1 => FaultRates {
            bit_flip: 0.0,
            launch_failure: 0.4,
            hang: 0.2,
        },
        2 => FaultRates {
            bit_flip: 0.25,
            launch_failure: 0.15,
            hang: 0.15,
        },
        _ => FaultRates {
            bit_flip: 0.2,
            launch_failure: 0.2,
            hang: 0.1,
        },
    }
}

/// Drive `jobs` through a fresh fleet, checking the quarantine-drain
/// invariant on every tick. Returns the finished fleet and the terminal
/// rejections.
fn drive_checked(
    devices: usize,
    rates: FaultRates,
    seed: u64,
    jobs: Vec<JobSpec>,
    violations: &mut Violations,
    tag: &str,
) -> (Fleet, Vec<(u64, Rejected)>) {
    let spec = DeviceSpec {
        capacity: None,
        fault_rates: rates,
        watchdog_instructions: Some(1 << 22),
    };
    let pool = DevicePool::uniform(seed, devices, spec).expect("soak rates are valid");
    let cfg = FleetConfig {
        preempt_rate: 0.1,
        seed,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(cfg, pool);
    let mut pending: std::collections::VecDeque<JobSpec> = jobs.into();
    let mut rejected = Vec::new();
    let max_ticks = 100_000u64;
    for _ in 0..max_ticks {
        // Submit as far as admission allows; full queues retry next tick.
        while let Some(j) = pending.pop_front() {
            match fleet.submit(j.clone()) {
                Ok(()) => {}
                Err(Rejected::QueueFull { .. }) | Err(Rejected::NoAdmittingDevice) => {
                    pending.push_front(j);
                    break;
                }
                Err(terminal) => rejected.push((j.id, terminal)),
            }
        }
        if pending.is_empty() && fleet.idle() {
            break;
        }
        fleet.tick();
        // Invariant 3: a quarantined device's queue is drained, always.
        for d in 0..devices {
            if matches!(fleet.device_health(d), Some(Health::Quarantined { .. })) {
                violations.check(
                    fleet.queue_len(d) == 0,
                    &format!(
                        "{tag}: device {d} quarantined at tick {} with {} queued jobs",
                        fleet.tick_count(),
                        fleet.queue_len(d)
                    ),
                );
            }
        }
    }
    violations.check(
        pending.is_empty() && fleet.idle(),
        &format!("{tag}: fleet did not drain within {max_ticks} ticks"),
    );
    (fleet, rejected)
}

#[allow(clippy::too_many_arguments)]
fn soak(
    devices: usize,
    total_jobs: u64,
    campaigns: u64,
    n: usize,
    steps: u64,
    base_seed: u64,
    violations: &mut Violations,
) {
    let per_campaign = (total_jobs / campaigns.max(1)).max(1);
    println!(
        "fleet soak: {campaigns} campaigns x {per_campaign} jobs (n={n} x {steps} steps) \
         across {devices} devices, base seed {base_seed}"
    );
    let mut total_faults = 0usize;
    for c in 0..campaigns {
        let seed = SplitMix64::mix(base_seed ^ c);
        let rates = campaign_rates(c);
        let jobs: Vec<JobSpec> = (0..per_campaign)
            .map(|id| job(id, n, steps, base_seed))
            .collect();
        // Fault-free single-device references for invariant 2.
        let refs: Vec<Checkpoint> = jobs
            .iter()
            .map(|j| {
                let mut sim = Simulation::new(j.config.clone()).expect("soak config is valid");
                sim.run(j.steps).expect("fault-free reference");
                sim.checkpoint()
            })
            .collect();
        let tag = format!("campaign {c}");
        let (fleet, rejected) = drive_checked(devices, rates, seed, jobs, violations, &tag);
        // Invariant 1: conservation.
        violations.check(
            fleet.completed().len() as u64 + rejected.len() as u64 == per_campaign,
            &format!(
                "{tag}: {} completed + {} rejected != {per_campaign} submitted",
                fleet.completed().len(),
                rejected.len()
            ),
        );
        // Invariant 2: bit-identical completions.
        for done in fleet.completed() {
            violations.check(
                physics_eq(&done.final_state, &refs[done.id as usize]),
                &format!(
                    "{tag}: job {} diverged from its fault-free reference \
                     (devices {:?}, {} migrations)",
                    done.id, done.devices, done.migrations
                ),
            );
        }
        // Invariant 4: every rejection is typed (labels exist by
        // construction; surface them in the log).
        for (id, why) in &rejected {
            println!("{tag}: job {id} rejected ({}): {why}", why.label());
        }
        // Invariant 5: seeded replay, checked once per soak.
        if c == 0 {
            let jobs: Vec<JobSpec> = (0..per_campaign)
                .map(|id| job(id, n, steps, base_seed))
                .collect();
            let mut quiet = Violations(0);
            let (replay, _) = drive_checked(devices, rates, seed, jobs, &mut quiet, "replay");
            violations.check(
                replay.events() == fleet.events(),
                &format!("{tag}: replay produced a different event log"),
            );
            for d in 0..devices {
                violations.check(
                    replay.fault_history(d) == fleet.fault_history(d),
                    &format!("{tag}: replay produced a different fault history on device {d}"),
                );
            }
            violations.check(
                replay
                    .completed()
                    .iter()
                    .zip(fleet.completed())
                    .all(|(x, y)| x.id == y.id && x.final_state == y.final_state),
                &format!("{tag}: replay produced different final states"),
            );
        }
        let faults = fleet
            .events()
            .iter()
            .filter(|e| matches!(e, FleetEvent::Faulted { .. }))
            .count();
        let migrations = fleet
            .events()
            .iter()
            .filter(|e| matches!(e, FleetEvent::Migrated { .. }))
            .count();
        total_faults += faults;
        println!(
            "campaign {c:2} rates(flip={:.2} launch={:.2} hang={:.2}): {} completed in {} \
             ticks, {faults} faults, {migrations} migrations, {} rejections",
            rates.bit_flip,
            rates.launch_failure,
            rates.hang,
            fleet.completed().len(),
            fleet.tick_count(),
            rejected.len(),
        );
    }
    println!(
        "fleet soak done: {total_faults} faults survived, {} violations",
        violations.0
    );
}

/// One measured throughput cell.
#[derive(Serialize, Deserialize)]
struct FleetRow {
    /// Pool size.
    devices: usize,
    /// Jobs pushed through.
    jobs: u64,
    /// Wall milliseconds for the whole batch.
    wall_ms: f64,
    /// Throughput.
    jobs_per_s: f64,
    /// Ticks the schedule took (host-independent witness #1).
    ticks: u64,
    /// FNV-1a over the event log and every final state, hex
    /// (host-independent witness #2).
    checksum: String,
}

#[derive(Serialize, Deserialize)]
struct FleetReport {
    bench: String,
    host_cores: usize,
    rows: Vec<FleetRow>,
}

/// Wall-time regression gate (same envelope as `simperf`).
fn regressed(baseline_ms: f64, new_ms: f64) -> bool {
    new_ms > 1.2 * baseline_ms + 50.0
}

fn perf_row(devices: usize, jobs: u64, n: usize, steps: u64, seed: u64) -> FleetRow {
    let pool =
        DevicePool::uniform(seed, devices, DeviceSpec::quiet()).expect("quiet pool is valid");
    let cfg = FleetConfig {
        seed,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(cfg, pool);
    let specs: Vec<JobSpec> = (0..jobs).map(|id| job(id, n, steps, seed)).collect();
    let t0 = std::time::Instant::now();
    let outcome =
        gravit_app::fleet::drive(&mut fleet, specs, 100_000).expect("quiet batch converges");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.rejected.is_empty(), "quiet batch must admit fully");
    assert_eq!(fleet.completed().len() as u64, jobs);
    let mut h = fnv1a(
        serde_json::to_string(fleet.events())
            .expect("events serialize")
            .as_bytes(),
        FNV_OFFSET,
    );
    for done in fleet.completed() {
        h = fnv1a(&done.final_state.to_bytes(), h);
    }
    FleetRow {
        devices,
        jobs,
        wall_ms,
        jobs_per_s: f64::from(jobs as u32) / (wall_ms / 1e3).max(1e-9),
        ticks: outcome.ticks,
        checksum: format!("{h:016x}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let devices: usize = flag(&args, "--devices")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let jobs: u64 = flag(&args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let campaigns: u64 = flag(&args, "--campaigns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let n: usize = flag(&args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let steps: u64 = flag(&args, "--steps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let base_seed: u64 = flag(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let json_path = flag(&args, "--json").unwrap_or_else(|| "BENCH_fleet.json".into());
    let baseline: Option<FleetReport> = flag(&args, "--check-against").map(|p| {
        let text =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("--check-against {p}: {e}"));
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check-against {p}: {e}"))
    });
    let host_cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let mut violations = Violations(0);
    if !args.iter().any(|a| a == "--skip-soak") {
        soak(
            devices,
            jobs,
            campaigns,
            n,
            steps,
            base_seed,
            &mut violations,
        );
    }

    if !args.iter().any(|a| a == "--skip-perf") {
        // Throughput sweep: a fixed quiet batch through pool sizes {1,2,4}.
        let perf_jobs = 24u64.min(jobs.max(1));
        let rows: Vec<FleetRow> = [1usize, 2, 4]
            .iter()
            .map(|&d| perf_row(d, perf_jobs, 96, steps, base_seed))
            .collect();
        let mut table = Table::new(
            "Fleet throughput — quiet pool, checkpoint-sliced scheduling",
            &["devices", "jobs", "wall ms", "jobs/s", "ticks", "checksum"],
        );
        for r in &rows {
            table.row(vec![
                r.devices.to_string(),
                r.jobs.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.2}", r.jobs_per_s),
                r.ticks.to_string(),
                r.checksum.clone(),
            ]);
        }
        print!("{}", table.to_markdown());
        println!("host cores: {host_cores}");

        if let Some(b) = &baseline {
            for r in &rows {
                let Some(base) = b
                    .rows
                    .iter()
                    .find(|x| x.devices == r.devices && x.jobs == r.jobs)
                else {
                    continue;
                };
                violations.check(
                    base.checksum == r.checksum && base.ticks == r.ticks,
                    &format!(
                        "{} devices drifted from the committed baseline: checksum {} vs {}, \
                         ticks {} vs {}",
                        r.devices, r.checksum, base.checksum, r.ticks, base.ticks
                    ),
                );
                violations.check(
                    !regressed(base.wall_ms, r.wall_ms),
                    &format!(
                        "{} devices: {:.1} ms vs committed {:.1} ms (> 1.2x + 50 ms)",
                        r.devices, r.wall_ms, base.wall_ms
                    ),
                );
            }
            println!(
                "checked {} rows against committed baseline (host_cores {} vs baseline {})",
                rows.len(),
                host_cores,
                b.host_cores
            );
        }

        let report = FleetReport {
            bench: "fleet".into(),
            host_cores,
            rows,
        };
        std::fs::write(
            &json_path,
            serde_json::to_string_pretty(&report).expect("serialize"),
        )
        .expect("write BENCH_fleet.json");
        println!("wrote {json_path}");
    }

    if violations.0 > 0 {
        eprintln!("[FAIL] {} fleet invariant violations", violations.0);
        std::process::exit(1);
    }
    println!("fleet invariants held: no job lost, completions bit-identical, replay exact");
}
