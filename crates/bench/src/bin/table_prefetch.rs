//! Regenerates the **prefetch (double-buffering) ablation**: issuing each
//! tile's global fetch before the inner loop over the previous tile hides
//! the load latency — at the cost of four registers, which on the CC-1.0
//! register file can cost an occupancy step. A period-accurate trade-off the
//! paper's tuned kernel implicitly declined.
use bench::report::emit;
use gpu_kernels::force::{build_force_kernel, build_force_kernel_prefetch, ForceKernelConfig};
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceConfig, DriverModel};
use particle_layouts::Layout;
use simcore::{format_duration_s, Table};

fn main() {
    let n = 200_000u32;
    let dev = DeviceConfig::g8800gtx();
    let mut t = Table::new(
        format!("Prefetch ablation — SoAoaS + full unroll + ICM, N = {n} (CUDA 1.0)"),
        &["variant", "block", "regs", "occupancy", "kernel time"],
    );
    for block in [128u32, 192] {
        let cfg = ForceKernelConfig {
            layout: Layout::SoAoaS,
            block,
            unroll: block,
            icm: true,
        };
        for (name, kernel) in [
            ("standard", build_force_kernel(cfg)),
            ("prefetch", build_force_kernel_prefetch(cfg)),
        ] {
            let regs = register_demand(&kernel).regs_per_thread as u32;
            let occ = occupancy(&dev, block, regs, kernel.smem_bytes);
            let secs = bench::tables::time_kernel_at(&kernel, cfg, n, DriverModel::Cuda10);
            t.row(vec![
                name.into(),
                block.to_string(),
                regs.to_string(),
                format!("{:.0}%", occ.percent()),
                format_duration_s(secs),
            ]);
        }
    }
    emit(&t, "table_prefetch");
    println!("Prefetching hides the tile-fetch latency but its buffer registers can drop");
    println!("an occupancy step — the reason the era's tuned kernels (and the paper's)");
    println!("spent registers so carefully.");
}
