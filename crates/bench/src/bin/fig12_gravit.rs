//! Regenerates **Figure 12**: end-to-end Gravit frame time for every
//! optimization level across problem sizes 40k … 1M, plus the serial-CPU
//! reference line. Run with `--driver 1.0|1.1|2.2` (default 1.0).

use bench::gravit_harness::{cpu_frame_seconds, fig12_sweep, FIG12_SIZES};
use bench::report::emit;
use gpu_kernels::force::OptLevel;
use gpu_sim::DriverModel;
use simcore::{format_duration_s, Table};

fn main() {
    let driver = match std::env::args().nth(2).as_deref() {
        Some("1.1") => DriverModel::Cuda11,
        Some("2.2") => DriverModel::Cuda22,
        _ => DriverModel::Cuda10,
    };
    let sweep = fig12_sweep(driver);

    let mut t = Table::new(
        format!("Fig. 12 — Gravit frame time by optimization level ({driver})"),
        &[
            "N",
            "CPU serial",
            "GPU base",
            "SoA",
            "AoaS",
            "SoAoaS",
            "+unroll",
            "full opt",
            "full speedup",
        ],
    );
    for n in FIG12_SIZES {
        let get = |lvl: OptLevel| {
            sweep
                .iter()
                .find(|p| p.level == lvl && p.n == n)
                .map(|p| p.total_s())
                .expect("sweep complete")
        };
        let cpu = cpu_frame_seconds(n, 4096);
        let base = get(OptLevel::Baseline);
        let full = get(OptLevel::Full);
        t.row(vec![
            n.to_string(),
            format_duration_s(cpu),
            format_duration_s(base),
            format_duration_s(get(OptLevel::SoA)),
            format_duration_s(get(OptLevel::AoaS)),
            format_duration_s(get(OptLevel::SoAoaS)),
            format_duration_s(get(OptLevel::SoAoaSUnrolled)),
            format_duration_s(full),
            format!("{:.2}x", base / full),
        ]);
    }
    emit(
        &t,
        &format!("fig12_gravit_{}", driver.label().replace([' ', '.'], "_")),
    );

    // Step-by-step decomposition at the largest size (the paper's narrative).
    let n = *FIG12_SIZES.last().unwrap();
    let mut d = Table::new(
        format!("Fig. 12 decomposition at N = {n} ({driver})"),
        &[
            "level",
            "kernel",
            "transfers",
            "total",
            "regs",
            "occupancy",
            "vs previous",
        ],
    );
    let mut prev: Option<f64> = None;
    for lvl in OptLevel::ALL {
        let p = sweep.iter().find(|p| p.level == lvl && p.n == n).unwrap();
        let total = p.total_s();
        let step = prev
            .map(|x| format!("{:.3}x", x / total))
            .unwrap_or_else(|| "-".into());
        d.row(vec![
            lvl.label().into(),
            format_duration_s(p.kernel_s),
            format_duration_s(p.upload_s + p.download_s),
            format_duration_s(total),
            p.regs.to_string(),
            format!("{:.0}%", p.occupancy.percent()),
            step,
        ]);
        prev = Some(total);
    }
    emit(
        &d,
        &format!(
            "fig12_decomposition_{}",
            driver.label().replace([' ', '.'], "_")
        ),
    );
}
