//! Regenerates the **abstract's headline numbers**: the 1.27x speedup of the
//! fully optimized kernel over the baseline GPU port, and the speedup over
//! the original serial CPU implementation (the paper reports 87x against a
//! 2.4 GHz Core 2 Duo; our CPU baseline is this machine's serial Rust build,
//! so the *GPU-side ratio* is the comparable number).
use bench::gravit_harness::{cpu_frame_seconds, summary_speedups};
use bench::report::emit;
use gpu_sim::DriverModel;
use simcore::{format_duration_s, Table};

fn main() {
    let n = 1_000_000u32;
    let mut t = Table::new(
        format!("Headline speedups at N = {n}"),
        &[
            "driver",
            "full vs GPU baseline",
            "full vs serial CPU (this machine)",
        ],
    );
    for driver in DriverModel::ALL {
        let (vs_base, vs_cpu) = summary_speedups(n, driver, 8192);
        t.row(vec![
            driver.label().into(),
            format!("{vs_base:.2}x"),
            format!("{vs_cpu:.1}x"),
        ]);
    }
    emit(&t, "summary_speedup");
    println!(
        "CPU serial frame at N={n}: {} (measured at 8192 bodies, O(n^2)-extrapolated)",
        format_duration_s(cpu_frame_seconds(n, 8192))
    );
    println!("Paper: 1.27x over the baseline GPU port; 87x over the 2009 serial CPU build.");
}
