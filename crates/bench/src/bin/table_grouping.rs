//! Regenerates the **Sec. II-D access-frequency grouping ablation**: traffic
//! of the force kernel's hot fetch (position + mass) per layout — the case
//! for storing the mass with the position rather than with the velocities.
use bench::report::emit;
use bench::tables::grouping_ablation;
use gpu_sim::DriverModel;
use simcore::Table;

fn main() {
    let mut t = Table::new(
        "Grouping ablation — hot-path (pos+mass) fetch per half-warp, CUDA 1.0",
        &["layout", "loads", "transactions", "bus bytes", "efficiency"],
    );
    for a in grouping_ablation(DriverModel::Cuda10) {
        t.row(vec![
            a.layout.label().into(),
            a.reads.to_string(),
            a.transactions.to_string(),
            a.bus_bytes.to_string(),
            format!("{:.0}%", 100.0 * a.efficiency()),
        ]);
    }
    emit(&t, "table_grouping");
    println!("Grouped SoAoaS fetches pos+mass in ONE float4; ungrouped AoaS must pull");
    println!("both halves of the 32-byte record to reach the mass (2x the traffic).");
}
