//! Regenerates the **Barnes–Hut crossover** study (experiment E13): the
//! measurable form of the paper's Sec. I-D decision — the O(n log n) tree
//! code is awkward and resource-starved on a CC-1.x GPU, but how much does
//! the easy O(n²) kernel actually give up, and where?
use bench::report::emit;
use bench::tables::bh_crossover;
use simcore::{format_duration_s, Table};

fn main() {
    let sizes = [1_024u32, 4_096, 16_384, 65_536];
    let mut t = Table::new(
        "GPU Barnes–Hut (θ=0.5) vs tuned direct O(n²) — modeled kernel time",
        &[
            "N",
            "direct O(n^2)",
            "tree O(n log n)",
            "tree speedup",
            "tree occupancy",
        ],
    );
    for r in bh_crossover(&sizes) {
        t.row(vec![
            r.n.to_string(),
            format_duration_s(r.direct_s),
            format_duration_s(r.bh_s),
            format!("{:.2}x", r.direct_s / r.bh_s),
            format!("{:.0}%", r.bh_occupancy_pct),
        ]);
    }
    emit(&t, "table_bh_crossover");
    println!("The traversal kernel runs (validated bit-for-bit vs the CPU) but pays for");
    println!("divergence and 12 KiB/block stacks (1 block/SM, ~8% occupancy): on the 2007");
    println!("machine model the tuned O(n^2) kernel stays ahead at these sizes — the");
    println!("quantitative case for the paper's Sec. I-D decision. Competitive GPU tree");
    println!("codes needed the warp-cooperative traversals of the Fermi era.");
}
