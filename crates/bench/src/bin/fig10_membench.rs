//! Regenerates **Figure 10**: average cycle count per single 4-byte read for
//! each memory layout, under the CUDA 1.0 / 1.1 / 2.2 driver models.
use bench::membench_harness::{fig10_sweep, fig11_speedups};
use bench::report::emit;
use gpu_sim::DriverModel;
use particle_layouts::Layout;
use simcore::Table;

fn main() {
    let sweep = fig10_sweep();
    let mut t = Table::new(
        "Fig. 10 — Average cycle count per single 4-byte read",
        &[
            "layout",
            "CUDA 1.0",
            "CUDA 1.1",
            "CUDA 2.2",
            "trans 1.0",
            "bus bytes 1.0",
        ],
    );
    for layout in Layout::ALL {
        let get = |d: DriverModel| {
            sweep
                .iter()
                .find(|r| r.layout == layout && r.driver == d)
                .expect("sweep complete")
        };
        let r10 = get(DriverModel::Cuda10);
        t.row(vec![
            layout.label().into(),
            format!("{:.1}", r10.avg_cycles_per_read),
            format!("{:.1}", get(DriverModel::Cuda11).avg_cycles_per_read),
            format!("{:.1}", get(DriverModel::Cuda22).avg_cycles_per_read),
            r10.transactions.to_string(),
            r10.bus_bytes.to_string(),
        ]);
    }
    emit(&t, "fig10_membench");

    let mut s = Table::new(
        "Fig. 11 preview — speedup over the unoptimized layout",
        &["driver", "SoA", "AoaS", "SoAoaS"],
    );
    let sp = fig11_speedups(&sweep);
    for driver in DriverModel::ALL {
        let get = |l: Layout| {
            sp.iter()
                .find(|(d, ll, _)| *d == driver && *ll == l)
                .unwrap()
                .2
        };
        s.row(vec![
            driver.label().into(),
            format!("{:.2}x", get(Layout::SoA)),
            format!("{:.2}x", get(Layout::AoaS)),
            format!("{:.2}x", get(Layout::SoAoaS)),
        ]);
    }
    emit(&s, "fig11_speedup");

    // Per-thread spread behind the CUDA 1.0 averages.
    let mut v = Table::new(
        "Fig. 10 companion — per-thread cycles/element distribution (CUDA 1.0)",
        &["layout", "p10", "median", "p90", "mean"],
    );
    for layout in Layout::ALL {
        let r = sweep
            .iter()
            .find(|r| r.layout == layout && r.driver == DriverModel::Cuda10)
            .unwrap();
        v.row(vec![
            layout.label().into(),
            format!("{:.1}", r.p10),
            format!("{:.1}", r.p50),
            format!("{:.1}", r.p90),
            format!("{:.1}", r.avg_cycles_per_read),
        ]);
    }
    emit(&v, "fig10_spread");
}
