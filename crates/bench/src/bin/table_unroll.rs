//! Regenerates the **Sec. IV-A unroll analysis**: per-element instruction
//! budget, Eq. 3 predicted speedup and register demand per unroll factor,
//! plus the modeled kernel-time speedup at the Fig. 12 reference size.
use bench::report::emit;
use bench::tables::{inner_loop_budget, unroll_sweep};
use simcore::Table;

fn main() {
    let (body, overhead) = inner_loop_budget();
    println!(
        "Rolled inner loop: {body} body + {overhead} overhead = {} instructions/iteration",
        body + overhead
    );
    println!("(paper: \"a little more than 25 instructions including the loop instructions\")\n");

    let rows = unroll_sweep(128 * 512);
    let mut t = Table::new(
        "Unroll sweep — SoAoaS force kernel, block 128",
        &["factor", "instrs/element", "Eq.3 speedup", "regs/thread"],
    );
    for r in &rows {
        t.row(vec![
            r.factor.to_string(),
            format!("{:.2}", r.instrs_per_element),
            format!("{:.3}", r.eq3_predicted),
            r.regs.to_string(),
        ]);
    }
    emit(&t, "table_unroll");
    let full = rows.last().unwrap();
    println!(
        "Full unroll: {:.1}% fewer instructions, Eq.3 predicts {:.2}x (paper: ~18% / 1.18x)",
        100.0 * (1.0 - full.instrs_per_element / rows[0].instrs_per_element),
        full.eq3_predicted
    );
}
