//! Regenerates the **block-size ablation** for the tuned kernel: the design
//! space behind the paper's switch to 128-thread blocks.
use bench::report::emit;
use bench::tables::block_sweep;
use gpu_sim::DriverModel;
use simcore::{format_duration_s, Table};

fn main() {
    let n = 200_000;
    let mut t = Table::new(
        format!("Block-size sweep — SoAoaS + full unroll + ICM at N = {n} (CUDA 1.0)"),
        &["block", "regs", "occupancy", "kernel time"],
    );
    for r in block_sweep(n, DriverModel::Cuda10) {
        t.row(vec![
            r.block.to_string(),
            r.regs.to_string(),
            format!("{:.0}%", r.occupancy_pct),
            format_duration_s(r.kernel_s),
        ]);
    }
    emit(&t, "table_blocksweep");
    println!("At 16 regs/thread, 64/128/256 all reach the 67% occupancy frontier; the");
    println!("paper's 128 sits on that frontier (192, their baseline block, does not).");
}
