//! Cross-validates the **static cycle model** (`gpu_sim::analyze::cost`)
//! against the dynamic timing engine: for every driver, the full
//! optimization ladder is priced statically and timed dynamically, and the
//! two orderings must agree wherever the measured gap is outside noise
//! (3 % relative). The Barnes–Hut bounds-certification targets ride in the
//! same table: their data-dependent traversal is priced as a cycle
//! *interval* instead of a point, and each target must certify. Exits
//! non-zero on any ranking disagreement or failed certificate — the CI
//! `verify-kernels` job gates on this.
use bench::report::emit;
use bench::tables::{cost_vs_measured, ranking_disagreements};
use gpu_kernels::verifyset::bounds_targets;
use gpu_sim::DriverModel;
use simcore::{format_duration_s, Table};
use std::process::ExitCode;

fn main() -> ExitCode {
    let n = 24_576u32;
    let mut disagreements = 0usize;
    let mut failed_certificates = 0usize;
    let mut t = Table::new(
        format!("Static cycle model vs dynamic engine — force ladder, N = {n}"),
        &[
            "driver",
            "level",
            "predicted cyc/pair",
            "measured time",
            "predicted speedup",
            "measured speedup",
        ],
    );
    for driver in DriverModel::ALL {
        let rows = cost_vs_measured(n, driver);
        let bad = ranking_disagreements(&rows, 0.03);
        for r in &rows {
            t.row(vec![
                driver.label().to_string(),
                r.level.label().to_string(),
                format!("{:.2}", r.predicted_cycles_per_pair),
                format_duration_s(r.measured_seconds),
                format!("{:.3}x", r.predicted_speedup),
                format!("{:.3}x", r.measured_speedup),
            ]);
        }
        for &(i, j) in &bad {
            eprintln!(
                "RANKING DISAGREEMENT under {}: {} vs {} (predicted {:.2} vs {:.2} cyc/pair, \
                 measured {:.6}s vs {:.6}s)",
                driver.label(),
                rows[i].level.label(),
                rows[j].level.label(),
                rows[i].predicted_cycles_per_pair,
                rows[j].predicted_cycles_per_pair,
                rows[i].measured_seconds,
                rows[j].measured_seconds,
            );
        }
        disagreements += bad.len();
    }
    // Barnes–Hut: no exact point prediction exists, so the row carries the
    // certified [best, worst] cycle interval from the bounds verifier.
    for target in bounds_targets() {
        match target.verify() {
            Ok(cert) => {
                let (lo, hi) = cert.cycle_bounds;
                t.row(vec![
                    "CUDA 1.0".to_string(),
                    format!("{} [interval]", cert.kernel),
                    format!("[{lo:.0}, {hi:.0}] cyc"),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
            Err(reason) => {
                eprintln!(
                    "BOUNDS CERTIFICATION FAILED: {}: {reason}",
                    target.kernel.name
                );
                failed_certificates += 1;
            }
        }
    }
    emit(&t, "table_verify");
    if disagreements > 0 || failed_certificates > 0 {
        if disagreements > 0 {
            eprintln!("table_verify: {disagreements} static/measured ranking disagreement(s)");
        }
        if failed_certificates > 0 {
            eprintln!("table_verify: {failed_certificates} failed bounds certificate(s)");
        }
        ExitCode::FAILURE
    } else {
        println!("static and measured rankings agree under every driver, and every");
        println!("Barnes-Hut target carries a bounds certificate");
        ExitCode::SUCCESS
    }
}
