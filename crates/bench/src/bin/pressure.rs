//! Memory-pressure overhead baseline: chunked streaming execution vs the
//! unconstrained full-resident frame, at an `n` where **both** fit the
//! device. Chunking exists for working sets that don't fit; this benchmark
//! measures what the streaming machinery costs when it isn't needed — the
//! perf baseline the ROADMAP asked for — and asserts the modes stay
//! bit-identical while doing so.
//!
//! Emits `BENCH_pressure.json`:
//!
//! ```json
//! { "n": 960, "level": "SoAoaS+unroll+licm", "full": { ... },
//!   "chunked": [ { "chunk": 512, "overhead_x": ..., ... }, ... ] }
//! ```
//!
//! Usage: `pressure [--n BODIES] [--reps R] [--out PATH]`.

use std::time::Instant;

use gpu_kernels::force::OptLevel;
use gpu_sim::DriverModel;
use gravit_app::backend::{frame_memory_budget, Backend};
use gravit_app::pressure::{chunk_floor, chunked_memory_budget, gpu_frame_chunked};
use nbody::model::ForceParams;
use nbody::spawn;
use serde::Serialize;

#[derive(Serialize)]
struct FullRow {
    wall_s: f64,
    launches: u64,
    device_footprint_bytes: u64,
}

#[derive(Serialize)]
struct ChunkRow {
    chunk: u32,
    wall_s: f64,
    overhead_x: f64,
    launches: u64,
    device_footprint_bytes: u64,
    footprint_vs_full: f64,
    bit_identical: bool,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    n: u32,
    level: String,
    block: u32,
    reps: u32,
    full: FullRow,
    chunked: Vec<ChunkRow>,
    all_bit_identical: bool,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Best-of-`reps` wall time of `f`, plus its (bitwise-comparable) result.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u32 = flag(&args, "--n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(960);
    let reps: u32 = flag(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_pressure.json".into());

    let level = OptLevel::Full;
    let block = chunk_floor(level);
    let bodies = spawn::uniform_ball(n as usize, 5.0, 2.0, 42);
    let fp = ForceParams::default();
    let backend = Backend::GpuSim {
        level,
        driver: DriverModel::Cuda10,
    };
    let padded = n.div_ceil(block) * block;
    let full_budget = frame_memory_budget(level, n);

    println!(
        "pressure baseline: n={n} level={} block={block} full budget {full_budget} B, \
         best of {reps} reps",
        level.label()
    );

    let (full_s, reference) = time_best(reps, || {
        backend
            .try_accelerations(&bodies, &fp)
            .expect("unconstrained frame")
    });
    println!("  full resident: {full_s:.4}s (1 launch, {full_budget} B footprint)");

    // Chunk sizes from one halving of the padded count down to the floor —
    // exactly the rungs the degradation ladder would visit for this n.
    let mut chunks = Vec::new();
    let mut c = padded / 2 / block * block;
    while c >= block {
        chunks.push(c);
        if c == block {
            break;
        }
        c = (c / 2).div_ceil(block) * block;
    }

    let mut rows = Vec::new();
    let mut all_identical = true;
    for &chunk in &chunks {
        let (wall_s, accels) = time_best(reps, || {
            gpu_frame_chunked(&bodies, &fp, level, chunk, None, None, None).expect("chunked frame")
        });
        let bit_identical = accels == reference;
        all_identical &= bit_identical;
        let n_chunks = padded.div_ceil(chunk) as u64;
        let launches = n_chunks * n_chunks;
        let footprint = chunked_memory_budget(level, chunk);
        let overhead = wall_s / full_s;
        println!(
            "  chunked c={chunk:4}: {wall_s:.4}s ({overhead:.2}x full, {launches} launches, \
             {footprint} B footprint, bit-identical: {bit_identical})"
        );
        rows.push(ChunkRow {
            chunk,
            wall_s,
            overhead_x: overhead,
            launches,
            device_footprint_bytes: footprint,
            footprint_vs_full: footprint as f64 / full_budget as f64,
            bit_identical,
        });
    }

    let report = Report {
        bench: "pressure".into(),
        n,
        level: level.label().into(),
        block,
        reps,
        full: FullRow {
            wall_s: full_s,
            launches: 1,
            device_footprint_bytes: full_budget,
        },
        chunked: rows,
        all_bit_identical: all_identical,
    };
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write BENCH_pressure.json");
    println!("wrote {out_path}");

    if !all_identical {
        eprintln!("VIOLATION: chunked execution diverged from the unconstrained frame");
        std::process::exit(1);
    }
}
