//! Regenerates the **texture-path ablation** — the comparison the paper sets
//! aside ("texture- and constant memory … will not be discussed here"): the
//! membench access patterns through the per-SM texture cache instead of the
//! CC-1.0 coalescer.
use bench::membench_harness::{run_membench, run_membench_texture};
use bench::report::emit;
use gpu_sim::DriverModel;
use particle_layouts::Layout;
use simcore::Table;

fn main() {
    let mut t = Table::new(
        "Texture-path ablation — cycles per 4-byte element (CUDA 1.0 model)",
        &[
            "layout",
            "global path",
            "texture path",
            "texture speedup",
            "tex hit rate",
        ],
    );
    for layout in Layout::ALL {
        let g = run_membench(layout, DriverModel::Cuda10);
        let x = run_membench_texture(layout, DriverModel::Cuda10);
        let hits = x.tex_hits as f64;
        let total = (x.tex_hits + x.tex_misses) as f64;
        t.row(vec![
            layout.label().into(),
            format!("{:.1}", g.avg_cycles_per_read),
            format!("{:.1}", x.avg_cycles_per_read),
            format!("{:.2}x", g.avg_cycles_per_read / x.avg_cycles_per_read),
            format!("{:.0}%", 100.0 * hits / total.max(1.0)),
        ]);
    }
    emit(&t, "table_texture");
    println!("The texture cache rescues the packed AoS layouts (adjacent threads share");
    println!("32-byte lines), narrowing the gap the SoAoaS layout closes without a cache —");
    println!("the quantitative form of the road the paper chose not to take.");
}
