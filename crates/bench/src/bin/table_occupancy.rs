//! Regenerates the **Sec. IV-A occupancy ladder**: registers per thread and
//! occupancy for baseline → +unroll → +ICM → +block-128 (the paper's
//! 18→17→16 registers and 50% → 67% story).
use bench::report::emit;
use bench::tables::occupancy_ladder;
use simcore::Table;

fn main() {
    let mut t = Table::new(
        "Occupancy ladder — 8800 GTX, SoAoaS force kernel",
        &["step", "block", "regs/thread", "active warps", "occupancy"],
    );
    for r in occupancy_ladder() {
        t.row(vec![
            r.step.into(),
            r.block.to_string(),
            r.regs.to_string(),
            r.warps.to_string(),
            format!("{:.0}%", r.occupancy_pct),
        ]);
    }
    emit(&t, "table_occupancy");
    println!("Paper: 18 → 17 (unroll) → 16 (ICM) registers; 50% → 67% occupancy with block 128.");
}
