//! Figures 10 & 11: the memory-layout microbenchmark.
//!
//! For each layout × driver revision, the stripped-down read kernel
//! (`gpu_kernels::membench`) runs on the cycle-level engine; each thread's
//! `clock()` delta is read back from simulated global memory and averaged
//! into the paper's metric: **cycles per single 4-byte element**
//! (Δclock / (iters × 7)).

use gpu_kernels::membench::{build_membench_kernel, build_membench_texture_kernel, MembenchConfig};
use gpu_sim::exec::timed::time_resident;
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
use particle_layouts::{DeviceImage, Layout, Particle};
use simcore::Vec3;

/// One measurement of the microbenchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct MembenchResult {
    /// Layout under test.
    pub layout: Layout,
    /// Driver revision.
    pub driver: DriverModel,
    /// The Fig. 10 metric: average cycles per 4-byte element.
    pub avg_cycles_per_read: f64,
    /// Total kernel cycles of the simulated resident wave.
    pub wave_cycles: u64,
    /// Global-memory transactions issued by the wave.
    pub transactions: u64,
    /// Bytes moved across the simulated DRAM bus.
    pub bus_bytes: u64,
    /// Texture-cache hits (texture-path runs only).
    pub tex_hits: u64,
    /// Texture-cache misses (texture-path runs only).
    pub tex_misses: u64,
    /// Per-thread cycles/element: 10th, 50th and 90th percentile — the
    /// spread behind the Fig. 10 averages (warp position in the issue order
    /// makes early warps cheaper than late ones).
    pub p10: f64,
    /// Median cycles/element.
    pub p50: f64,
    /// 90th-percentile cycles/element.
    pub p90: f64,
}

/// Default benchmark shape: 128-thread blocks (as the paper's tuned kernels
/// use), 32 particles per thread.
pub const BLOCK: u32 = 128;
/// Particles read per thread.
pub const ITERS: u32 = 32;

/// Run the microbenchmark for one layout under one driver revision.
pub fn run_membench(layout: Layout, driver: DriverModel) -> MembenchResult {
    run_with_kernel(layout, driver, false)
}

/// As [`run_membench`], reading through the texture path (the ablation the
/// paper skips).
pub fn run_membench_texture(layout: Layout, driver: DriverModel) -> MembenchResult {
    run_with_kernel(layout, driver, true)
}

fn run_with_kernel(layout: Layout, driver: DriverModel, texture: bool) -> MembenchResult {
    let dev = DeviceConfig::g8800gtx();
    let tp = TimingParams::for_driver(driver);
    let cfg = MembenchConfig {
        layout,
        iters: ITERS,
    };
    let kernel = if texture {
        build_membench_texture_kernel(cfg)
    } else {
        build_membench_kernel(cfg)
    };

    // The stripped-down benchmark runs one block per SM (a small grid keeps
    // the measurement clean of inter-block queueing, as a latency
    // microbenchmark would be launched); occupancy is still validated.
    let regs = register_demand(&kernel).regs_per_thread as u32;
    let occ = occupancy(&dev, BLOCK, regs.max(1), kernel.smem_bytes.max(1));
    assert!(occ.active_blocks >= 1);
    let resident: Vec<u32> = vec![0];
    let grid = 1u32;

    let n = cfg.particles_needed(grid, BLOCK) as usize;
    let mut gmem = GlobalMemory::new(256 << 20);
    let particles: Vec<Particle> = (0..n)
        .map(|i| Particle {
            pos: Vec3::new(i as f32, 1.0, 2.0),
            vel: Vec3::new(3.0, 4.0, 5.0),
            mass: 1.0,
        })
        .collect();
    let img = DeviceImage::upload(&mut gmem, layout, &particles, BLOCK)
        .expect("benchmark particles fit the device");
    let threads = (grid * BLOCK) as u64;
    let out_delta = gmem.alloc(threads * 4).expect("output fits");
    let out_sum = gmem.alloc(threads * 4).expect("output fits");
    let mut params = img.base_params();
    params.push(out_delta.0 as u32);
    params.push(out_sum.0 as u32);

    let run = time_resident(
        &kernel, &resident, BLOCK, grid, &params, &mut gmem, &dev, driver, &tp,
    )
    .expect("the benchmark launch is well-formed");

    // The paper's metric, averaged over every thread of the wave, plus the
    // per-thread distribution.
    let mut total_delta = 0u64;
    let mut per_thread: Vec<f64> = Vec::with_capacity(threads as usize);
    for t in 0..threads {
        let bytes = gmem
            .download(out_delta.offset(4 * t), 4)
            .expect("kernel wrote its delta");
        let d = u32::from_le_bytes(bytes.try_into().unwrap()) as u64;
        total_delta += d;
        per_thread.push(d as f64 / cfg.elements() as f64);
    }
    let elements = threads as f64 * cfg.elements() as f64;
    MembenchResult {
        layout,
        driver,
        avg_cycles_per_read: total_delta as f64 / elements,
        wave_cycles: run.cycles,
        transactions: run.transactions,
        bus_bytes: run.bus_bytes,
        tex_hits: run.tex_hits,
        tex_misses: run.tex_misses,
        p10: simcore::percentile(&per_thread, 0.10).unwrap_or(0.0),
        p50: simcore::percentile(&per_thread, 0.50).unwrap_or(0.0),
        p90: simcore::percentile(&per_thread, 0.90).unwrap_or(0.0),
    }
}

/// The full Figure-10 sweep: every layout under every driver.
pub fn fig10_sweep() -> Vec<MembenchResult> {
    let mut out = Vec::new();
    for driver in DriverModel::ALL {
        for layout in Layout::ALL {
            out.push(run_membench(layout, driver));
        }
    }
    out
}

/// Figure 11: speedups of SoA/AoaS/SoAoaS over the unoptimized layout, per
/// driver, derived from a Fig. 10 sweep.
pub fn fig11_speedups(sweep: &[MembenchResult]) -> Vec<(DriverModel, Layout, f64)> {
    let mut out = Vec::new();
    for driver in DriverModel::ALL {
        let base = sweep
            .iter()
            .find(|r| r.driver == driver && r.layout == Layout::Unopt)
            .expect("sweep missing baseline");
        for layout in [Layout::SoA, Layout::AoaS, Layout::SoAoaS] {
            let r = sweep
                .iter()
                .find(|r| r.driver == driver && r.layout == layout)
                .expect("sweep missing layout");
            out.push((
                driver,
                layout,
                base.avg_cycles_per_read / r.avg_cycles_per_read,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membench_produces_positive_metrics() {
        let r = run_membench(Layout::SoA, DriverModel::Cuda10);
        assert!(r.avg_cycles_per_read > 0.0);
        assert!(r.transactions > 0);
        assert!(r.bus_bytes >= r.transactions * 32);
        // The distribution brackets the mean.
        assert!(r.p10 <= r.avg_cycles_per_read && r.avg_cycles_per_read <= r.p90 * 1.5);
        assert!(r.p10 <= r.p50 && r.p50 <= r.p90);
    }

    #[test]
    fn soaoas_beats_unopt_under_cuda10() {
        let unopt = run_membench(Layout::Unopt, DriverModel::Cuda10);
        let best = run_membench(Layout::SoAoaS, DriverModel::Cuda10);
        assert!(
            best.avg_cycles_per_read < unopt.avg_cycles_per_read,
            "SoAoaS {} must beat unopt {}",
            best.avg_cycles_per_read,
            unopt.avg_cycles_per_read
        );
        assert!(best.transactions < unopt.transactions);
    }
}
