//! # bench — the harness that regenerates every table and figure
//!
//! One module per experiment family (see DESIGN.md §4 for the experiment
//! index):
//!
//! * [`membench_harness`] — Figures 10 and 11 (memory-layout microbenchmark
//!   under the three driver models);
//! * [`gravit_harness`] — Figure 12 (end-to-end Gravit frame times across
//!   problem sizes and optimization levels) and the abstract's 1.27×/87×
//!   summary;
//! * [`tables`] — the unroll sweep (Sec. IV-A), the occupancy ladder, the
//!   per-half-warp transaction counts (Figs. 3/5/7/9) and the
//!   access-frequency grouping ablation;
//! * [`report`] — writing results as markdown (stdout) + CSV
//!   (`results/*.csv`).
//!
//! Binaries under `src/bin/` are thin wrappers over these modules, so the
//! experiments are also callable as a library (the integration tests do).

#![warn(missing_docs)]

pub mod gravit_harness;
pub mod membench_harness;
pub mod report;
pub mod tables;
