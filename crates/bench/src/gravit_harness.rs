//! Figure 12 & the abstract's summary numbers: end-to-end Gravit frame time.
//!
//! The paper measures "from copying the data to the device, through the
//! kernel invocation till after copying the results back", for problem sizes
//! 40,000 … 1,000,000 and every optimization level. Our frame model is the
//! same pipeline:
//!
//! * **upload** — the layout's buffers (PCIe model, one copy per buffer);
//! * **kernel** — full-grid cycles estimated from cycle-level simulation of
//!   one SM's resident wave at two reduced tile counts, linearly extrapolated
//!   to the real particle count (DESIGN.md §6), scaled by the number of
//!   waves;
//! * **download** — one float4 acceleration per particle.
//!
//! The CPU baseline is the *actual* serial Rust implementation, measured at a
//! calibration size and extrapolated with the O(n²) law.

use gpu_kernels::force::OptLevel;
use gpu_sim::DriverModel;
use nbody::direct::accelerations;
use nbody::model::ForceParams;
use nbody::spawn;
use std::time::Instant;

pub use gravit_app::model::{model_frame, FramePoint};

/// The problem sizes of Fig. 12.
pub const FIG12_SIZES: [u32; 6] = [40_000, 100_000, 200_000, 400_000, 700_000, 1_000_000];

/// The full Fig. 12 sweep: every optimization level × every problem size.
pub fn fig12_sweep(driver: DriverModel) -> Vec<FramePoint> {
    let mut out = Vec::new();
    for level in OptLevel::ALL {
        for n in FIG12_SIZES {
            out.push(model_frame(level, n, driver));
        }
    }
    out
}

/// Measured serial-CPU seconds per frame, extrapolated O(n²) from a
/// calibration run at `calib_n` bodies.
pub fn cpu_frame_seconds(n: u32, calib_n: u32) -> f64 {
    let bodies = spawn::uniform_ball(calib_n as usize, 10.0, 1.0, 123);
    let fp = ForceParams::default();
    // Warm-up + timed run.
    let _ = accelerations(&bodies, &fp);
    let t0 = Instant::now();
    let acc = accelerations(&bodies, &fp);
    let dt = t0.elapsed().as_secs_f64();
    assert!(acc.len() == calib_n as usize);
    dt * (n as f64 / calib_n as f64).powi(2)
}

/// The abstract's two headline ratios at a given size: (full-opt speedup over
/// the GPU baseline, full-opt speedup over the serial CPU).
pub fn summary_speedups(n: u32, driver: DriverModel, cpu_calib_n: u32) -> (f64, f64) {
    let base = model_frame(OptLevel::Baseline, n, driver).total_s();
    let full = model_frame(OptLevel::Full, n, driver).total_s();
    let cpu = cpu_frame_seconds(n, cpu_calib_n);
    (base / full, cpu / full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_times_scale_quadratically() {
        let a = model_frame(OptLevel::SoAoaS, 50_000, DriverModel::Cuda10);
        let b = model_frame(OptLevel::SoAoaS, 100_000, DriverModel::Cuda10);
        let ratio = b.kernel_s / a.kernel_s;
        assert!(
            (3.0..5.0).contains(&ratio),
            "doubling n should ~quadruple kernel time, got {ratio:.2}"
        );
    }

    #[test]
    fn full_opt_beats_baseline() {
        let base = model_frame(OptLevel::Baseline, 100_000, DriverModel::Cuda10);
        let full = model_frame(OptLevel::Full, 100_000, DriverModel::Cuda10);
        assert!(full.total_s() < base.total_s());
        assert!(full.regs < base.regs);
        assert!(full.occupancy.fraction() > base.occupancy.fraction());
    }

    #[test]
    fn cpu_extrapolation_is_quadratic() {
        // Two separate wall-clock calibrations; under a parallel test run the
        // measurements are noisy, so the band is wide — the property under
        // test is the (n/calib)² scaling, not timer precision.
        let a = cpu_frame_seconds(10_000, 1_000);
        let b = cpu_frame_seconds(20_000, 1_000);
        let ratio = b / a;
        assert!(
            (1.5..11.0).contains(&ratio),
            "quadratic extrapolation, got {ratio}"
        );
        assert!(a > 0.0 && a.is_finite());
    }
}
