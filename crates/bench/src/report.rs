//! Result output: markdown to stdout, CSV into `results/`.

use simcore::Table;
use std::path::PathBuf;

/// Directory experiment CSVs are written to (workspace-relative `results/`,
/// overridable via `REPRO_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("REPRO_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // The bench binaries run from the workspace root under `cargo run`; fall
    // back to CARGO_MANIFEST_DIR's parent workspace when invoked elsewhere.
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("Cargo.toml").exists() {
        cwd.join("results")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
    }
}

/// Print the table as markdown and persist it as `results/<slug>.csv`.
pub fn emit(table: &Table, slug: &str) {
    print!("{}", table.to_markdown());
    let path = results_dir().join(format!("{slug}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[wrote {}]\n", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_env_override() {
        std::env::set_var("REPRO_RESULTS_DIR", "/tmp/repro-test-results");
        assert_eq!(results_dir(), PathBuf::from("/tmp/repro-test-results"));
        std::env::remove_var("REPRO_RESULTS_DIR");
    }
}
