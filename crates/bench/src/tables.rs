//! The non-figure experiments: the unroll sweep (Sec. IV-A), the occupancy
//! ladder, the per-half-warp transaction counts (Figs. 3/5/7/9) and the
//! access-frequency grouping ablation (Sec. II-D).

use gpu_kernels::force::{build_force_kernel, ForceKernelConfig};
use gpu_sim::ir::count::{dynamic_instructions, eq3_speedup, inner_loop_profile};
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceConfig, DriverModel};
use particle_layouts::streams::{analyze_plan, TransactionAnalysis};
use particle_layouts::Layout;

/// One row of the unroll sweep (experiment E4).
#[derive(Debug, Clone, PartialEq)]
pub struct UnrollRow {
    /// Unroll factor (1 = rolled; block = full).
    pub factor: u32,
    /// Dynamic instructions per thread at the reference size.
    pub dyn_instrs: u64,
    /// Instructions per inner element (dyn / n).
    pub instrs_per_element: f64,
    /// Registers per thread.
    pub regs: u16,
    /// Eq. 3 prediction of speedup over the rolled kernel.
    pub eq3_predicted: f64,
}

/// Sweep unroll factors on the SoAoaS force kernel (block 128) and measure
/// per-element instruction budgets and register demand. `n` is the padded
/// reference problem size.
pub fn unroll_sweep(n: u32) -> Vec<UnrollRow> {
    let block = 128u32;
    assert!(n.is_multiple_of(block));
    let factors = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    let mut rolled_per_elem = 0.0f64;
    for &factor in &factors {
        let cfg = ForceKernelConfig {
            layout: Layout::SoAoaS,
            block,
            unroll: factor,
            icm: false,
        };
        let k = build_force_kernel(cfg);
        let mut params = vec![0u32; k.n_params as usize];
        let n_idx = k.n_params as usize - 3; // ..., out, n, eps, smem0
        params[n_idx] = n;
        let dyn_instrs = dynamic_instructions(&k, &params)
            .expect("force kernel loop bounds are launch constants");
        let per_elem = dyn_instrs as f64 / n as f64;
        if factor == 1 {
            rolled_per_elem = per_elem;
        }
        rows.push(UnrollRow {
            factor,
            dyn_instrs,
            instrs_per_element: per_elem,
            regs: register_demand(&k).regs_per_thread,
            eq3_predicted: eq3_speedup(rolled_per_elem, per_elem)
                .expect("instruction budgets are positive"),
        });
    }
    rows
}

/// One row of the occupancy ladder (experiment E5).
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyRow {
    /// Human-readable step label.
    pub step: &'static str,
    /// Block size.
    pub block: u32,
    /// Registers per thread from the allocator.
    pub regs: u16,
    /// Occupancy percent.
    pub occupancy_pct: f64,
    /// Active warps per SM.
    pub warps: u32,
}

/// The paper's register/occupancy ladder: baseline → +unroll → +ICM →
/// +block-128 (Sec. IV-A's 50 % → 67 % story).
pub fn occupancy_ladder() -> Vec<OccupancyRow> {
    let dev = DeviceConfig::g8800gtx();
    let steps: [(&'static str, ForceKernelConfig); 4] = [
        (
            "baseline (rolled, block 192)",
            ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 192,
                unroll: 1,
                icm: false,
            },
        ),
        (
            "+ full unroll (block 192)",
            ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 192,
                unroll: 192,
                icm: false,
            },
        ),
        (
            "+ ICM (block 192)",
            ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 192,
                unroll: 192,
                icm: true,
            },
        ),
        (
            "+ block 128",
            ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 128,
                unroll: 128,
                icm: true,
            },
        ),
    ];
    steps
        .into_iter()
        .map(|(step, cfg)| {
            let k = build_force_kernel(cfg);
            let regs = register_demand(&k).regs_per_thread;
            let occ = occupancy(&dev, cfg.block, regs as u32, k.smem_bytes);
            OccupancyRow {
                step,
                block: cfg.block,
                regs,
                occupancy_pct: occ.percent(),
                warps: occ.active_warps,
            }
        })
        .collect()
}

/// The per-half-warp transaction table (Figs. 3/5/7/9): full-record fetch
/// under each layout and driver.
pub fn transaction_table(driver: DriverModel) -> Vec<TransactionAnalysis> {
    Layout::ALL
        .iter()
        .map(|&l| analyze_plan(&l.read_plan_all(), driver))
        .collect()
}

/// The grouping ablation (experiment E8): hot-path (position+mass) fetch
/// traffic for the grouped SoAoaS vs the ungrouped AoaS.
pub fn grouping_ablation(driver: DriverModel) -> Vec<TransactionAnalysis> {
    Layout::ALL
        .iter()
        .map(|&l| analyze_plan(&l.read_plan_posmass(), driver))
        .collect()
}

/// The paper's "a little more than 25 instructions" check: per-iteration
/// profile of the rolled inner loop.
pub fn inner_loop_budget() -> (u64, u64) {
    let k = build_force_kernel(ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 128,
        unroll: 1,
        icm: false,
    });
    let p = inner_loop_profile(&k).expect("rolled kernel has an inner loop");
    (p.body_instrs, p.overhead_instrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroll_sweep_is_monotone_in_instructions() {
        let rows = unroll_sweep(128 * 64);
        for w in rows.windows(2) {
            assert!(
                w[1].dyn_instrs <= w[0].dyn_instrs,
                "more unrolling must not add instructions: {} -> {}",
                w[0].factor,
                w[1].factor
            );
        }
        // Full unroll hits the paper's ~18–20 % band.
        let full = rows.last().unwrap();
        let rolled = &rows[0];
        let reduction = 1.0 - full.instrs_per_element / rolled.instrs_per_element;
        assert!(
            (0.15..0.25).contains(&reduction),
            "reduction {reduction:.3}"
        );
        assert!(full.eq3_predicted > 1.15 && full.eq3_predicted < 1.3);
    }

    #[test]
    fn occupancy_ladder_tells_the_papers_story() {
        let rows = occupancy_ladder();
        assert_eq!(rows[0].regs, 18);
        assert!((rows[0].occupancy_pct - 50.0).abs() < 1e-9);
        assert_eq!(rows[1].regs, 17);
        assert!(
            (rows[1].occupancy_pct - 50.0).abs() < 1e-9,
            "unroll alone: no occupancy change"
        );
        assert_eq!(rows[2].regs, 16);
        let last = rows.last().unwrap();
        assert_eq!(last.regs, 16);
        assert!(
            (last.occupancy_pct - 66.666).abs() < 0.1,
            "final step reaches 67 %"
        );
    }

    #[test]
    fn transaction_table_matches_figures() {
        let t = transaction_table(DriverModel::Cuda10);
        let get = |l: Layout| t.iter().find(|a| a.layout == l).unwrap();
        assert_eq!(get(Layout::Unopt).transactions, 112);
        assert_eq!(get(Layout::SoA).transactions, 7);
        assert_eq!(get(Layout::AoaS).transactions, 32);
        assert_eq!(get(Layout::SoAoaS).transactions, 4);
    }

    #[test]
    fn grouping_halves_hot_path_traffic() {
        let t = grouping_ablation(DriverModel::Cuda10);
        let aoas = t.iter().find(|a| a.layout == Layout::AoaS).unwrap();
        let soaoas = t.iter().find(|a| a.layout == Layout::SoAoaS).unwrap();
        assert!(soaoas.bus_bytes * 2 <= aoas.bus_bytes);
    }

    #[test]
    fn inner_loop_budget_matches_design() {
        let (body, overhead) = inner_loop_budget();
        assert_eq!(body, 18);
        assert_eq!(overhead, 3);
    }
}

/// One row of the bank-conflict sweep (supporting experiment for Sec. I-A).
#[derive(Debug, Clone, PartialEq)]
pub struct BankRow {
    /// Shared-memory word stride between lanes.
    pub stride: u32,
    /// Analytic conflict degree (16 banks).
    pub degree: u32,
    /// Measured cycles for the timed loop.
    pub cycles: u64,
}

/// Sweep shared-memory strides on the bank benchmark kernel.
pub fn bank_sweep() -> Vec<BankRow> {
    use gpu_kernels::banks::{build_bank_kernel, SMEM_WORDS};
    use gpu_sim::banks::conflict_degree;
    use gpu_sim::exec::timed::time_resident;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::TimingParams;

    let dev = DeviceConfig::g8800gtx();
    let tp = TimingParams::for_driver(DriverModel::Cuda10);
    [1u32, 2, 3, 4, 5, 8, 16]
        .into_iter()
        .map(|stride| {
            let k = build_bank_kernel(stride, 64);
            let mut gmem = GlobalMemory::new(1 << 16);
            let d = gmem.alloc(128 * 4).expect("fits");
            let s = gmem.alloc(128 * 4).expect("fits");
            let run = time_resident(
                &k,
                &[0],
                128,
                1,
                &[d.0 as u32, s.0 as u32],
                &mut gmem,
                &dev,
                DriverModel::Cuda10,
                &tp,
            )
            .expect("bank sweep launch is well-formed");
            let addrs: Vec<Option<u64>> = (0..16)
                .map(|t| Some((((t * stride) & (SMEM_WORDS - 1)) * 4) as u64))
                .collect();
            BankRow {
                stride,
                degree: conflict_degree(&addrs, dev.smem_banks),
                cycles: run.cycles,
            }
        })
        .collect()
}

/// One row of the block-size ablation for the tuned kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRow {
    /// Threads per block.
    pub block: u32,
    /// Registers per thread (allocator).
    pub regs: u16,
    /// Occupancy percent.
    pub occupancy_pct: f64,
    /// Modeled kernel seconds at the reference size.
    pub kernel_s: f64,
}

/// Sweep block sizes for the fully optimized SoAoaS kernel at a reference
/// size — the design-space view behind the paper's choice of 128.
pub fn block_sweep(n: u32, driver: DriverModel) -> Vec<BlockRow> {
    use gravit_app::model::model_frame_config;
    [64u32, 96, 128, 160, 192, 256]
        .into_iter()
        .map(|block| {
            let cfg = ForceKernelConfig {
                layout: Layout::SoAoaS,
                block,
                unroll: block,
                icm: true,
            };
            let (point, regs) = model_frame_config(cfg, n, driver);
            BlockRow {
                block,
                regs,
                occupancy_pct: point.occupancy.percent(),
                kernel_s: point.kernel_s,
            }
        })
        .collect()
}

/// The GT200 sensitivity study (the paper's "different GPU models" future
/// work): occupancy of the tuned kernel on both devices.
pub fn device_sensitivity() -> Vec<(String, u32, u16, f64)> {
    let cfg = ForceKernelConfig {
        layout: Layout::SoAoaS,
        block: 128,
        unroll: 128,
        icm: true,
    };
    let k = build_force_kernel(cfg);
    let regs = register_demand(&k).regs_per_thread;
    [DeviceConfig::g8800gtx(), DeviceConfig::gtx280()]
        .into_iter()
        .map(|dev| {
            let occ = occupancy(&dev, cfg.block, regs as u32, k.smem_bytes);
            (dev.name.clone(), occ.active_warps, regs, occ.percent())
        })
        .collect()
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn bank_sweep_cycles_track_degree() {
        let rows = bank_sweep();
        let by_stride = |s: u32| rows.iter().find(|r| r.stride == s).unwrap();
        assert_eq!(by_stride(1).degree, 1);
        assert_eq!(by_stride(16).degree, 16);
        assert_eq!(by_stride(3).degree, 1);
        assert!(by_stride(16).cycles > by_stride(8).cycles);
        assert!(by_stride(8).cycles > by_stride(1).cycles);
        // Conflict-free strides cost (almost) the same regardless of value.
        let c1 = by_stride(1).cycles as f64;
        let c3 = by_stride(3).cycles as f64;
        assert!((c3 / c1 - 1.0).abs() < 0.1);
    }

    #[test]
    fn block_sweep_puts_128_on_the_occupancy_frontier() {
        let rows = block_sweep(100_000, DriverModel::Cuda10);
        let best = rows
            .iter()
            .min_by(|a, b| a.kernel_s.total_cmp(&b.kernel_s))
            .unwrap();
        let best_occ = rows.iter().map(|r| r.occupancy_pct).fold(0.0f64, f64::max);
        let at = |b: u32| rows.iter().find(|r| r.block == b).unwrap();
        // At 16 registers the design space is nearly flat (within ~6%); the
        // paper's 128 sits on the occupancy frontier and within noise of the
        // time optimum — which is the actual content of their choice.
        assert!(
            at(128).kernel_s <= 1.06 * best.kernel_s,
            "128 far from optimal: {rows:?}"
        );
        assert!(
            (at(128).occupancy_pct - best_occ).abs() < 1e-9,
            "128 not at max occupancy"
        );
        assert!(at(128).occupancy_pct > at(192).occupancy_pct);
    }

    #[test]
    fn gt200_lifts_the_register_ceiling() {
        let rows = device_sensitivity();
        assert_eq!(rows.len(), 2);
        let (g80, gt200) = (&rows[0], &rows[1]);
        assert!(
            gt200.3 > g80.3,
            "GT200 occupancy {} should exceed G80 {}",
            gt200.3,
            g80.3
        );
    }
}

/// One row of the Barnes–Hut-vs-direct crossover study (experiment E13).
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRow {
    /// Problem size.
    pub n: u32,
    /// Modeled kernel seconds, tuned direct O(n²) kernel.
    pub direct_s: f64,
    /// Modeled kernel seconds, GPU Barnes–Hut traversal (θ = 0.5).
    pub bh_s: f64,
    /// Occupancy of the BH launch (resource-starved by the smem stacks).
    pub bh_occupancy_pct: f64,
}

/// Model the direct-vs-tree kernel times across problem sizes — the
/// quantitative form of the paper's Sec. I-D decision to use O(n²).
pub fn bh_crossover(sizes: &[u32]) -> Vec<CrossoverRow> {
    use gpu_kernels::barnes_hut::{build_bh_kernel, upload_bh, BhKernelConfig};
    use gpu_sim::exec::timed::time_resident;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::TimingParams;
    use gravit_app::model::model_frame_config;
    use nbody::barnes_hut::LinearTree;
    use nbody::spawn;

    let dev = DeviceConfig::g8800gtx();
    let driver = DriverModel::Cuda10;
    let tp = TimingParams::for_driver(driver);
    let theta = 0.5f32;

    sizes
        .iter()
        .map(|&n| {
            // Direct kernel at the paper's full optimization level.
            let direct_cfg = ForceKernelConfig {
                layout: Layout::SoAoaS,
                block: 128,
                unroll: 128,
                icm: true,
            };
            let (direct, _) = model_frame_config(direct_cfg, n, driver);

            // BH: build the real tree for this workload and simulate sample
            // blocks of the launch (per-block work varies with the bodies it
            // owns, so sample across the grid and scale).
            let bodies = spawn::plummer(n as usize, 1.0, 1.0, 1234);
            let lt = LinearTree::from_bodies(&bodies, 1.0);
            // Size the shared-memory stack from the workload's measured
            // worst-case depth (sampled probes + safety margin), shrinking
            // the block if 64-thread stacks would not fit.
            let probes: Vec<simcore::Vec3> = bodies.pos.iter().copied().step_by(17).collect();
            let need = lt.max_stack_depth(&probes, theta * theta) as u32 + 16;
            let block = if 64 * need * 4 <= 15 * 1024 { 64 } else { 32 };
            let cfg = BhKernelConfig { block, depth: need };
            assert!(
                cfg.smem_bytes() <= 15 * 1024,
                "stack depth {need} unservable"
            );
            let kernel = build_bh_kernel(cfg);
            let regs = register_demand(&kernel).regs_per_thread as u32;
            let occ = occupancy(&dev, cfg.block, regs, kernel.smem_bytes);
            let mut gmem = GlobalMemory::new(512 << 20);
            let (mut params, padded) = upload_bh(&mut gmem, &lt, &bodies.pos, cfg.block)
                .expect("tree upload fits the device");
            let out = gmem.alloc(padded as u64 * 16).expect("output fits");
            params.push(out.0 as u32);
            params.push((theta * theta).to_bits());
            params.push(0.05f32.to_bits());
            let grid = padded / cfg.block;
            // Sample up to 4 resident sets spread across the grid.
            let samples = 4.min(grid);
            let mut cycles = 0u64;
            for sidx in 0..samples {
                let base = sidx * (grid / samples);
                let resident: Vec<u32> = (0..occ.active_blocks.min(grid - base))
                    .map(|k| base + k)
                    .collect();
                let mut scratch = gmem.clone();
                let run = time_resident(
                    &kernel,
                    &resident,
                    cfg.block,
                    grid,
                    &params,
                    &mut scratch,
                    &dev,
                    driver,
                    &tp,
                )
                .expect("crossover launch is well-formed");
                cycles += run.cycles;
            }
            let wave_cycles = cycles / samples as u64;
            let waves = (grid as u64).div_ceil(dev.num_sms as u64 * occ.active_blocks as u64);
            let bh_s = (wave_cycles * waves) as f64 / dev.clock_hz;
            CrossoverRow {
                n,
                direct_s: direct.kernel_s,
                bh_s,
                bh_occupancy_pct: occ.percent(),
            }
        })
        .collect()
}

#[cfg(test)]
mod crossover_tests {
    use super::*;

    #[test]
    fn per_thread_tree_traversal_is_not_competitive_on_cc1x() {
        // The paper's Sec. I-D decision, quantified: a straightforward
        // per-thread-stack tree traversal pays so much in divergence and
        // shared-memory-starved occupancy (1 block/SM) that the *tuned*
        // O(n²) kernel stays ahead at these sizes on the 2007 machine model —
        // consistent with history (competitive GPU tree codes arrived with
        // warp-cooperative traversals years later).
        let rows = bh_crossover(&[1_024, 16_384]);
        for r in &rows {
            assert!(r.bh_s > 0.0 && r.direct_s > 0.0);
            assert!(
                r.bh_occupancy_pct < 10.0,
                "smem stacks must starve the launch"
            );
            let ratio = r.direct_s / r.bh_s;
            assert!(
                (0.05..4.0).contains(&ratio),
                "n={}: tree/direct ratio {ratio} out of the plausible band",
                r.n
            );
        }
        // The direct kernel's cost grows ~quadratically across the 16× step
        // (waves quantization softens the exponent at small n).
        let g = rows[1].direct_s / rows[0].direct_s;
        assert!(g > 10.0, "direct growth {g} not superlinear");
    }
}

/// One row of the static-vs-dynamic transaction cross-validation: the
/// `gpu_sim::analyze` symbolic coalescer against the timed executor's
/// dynamic one, on the same launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LintValidationRow {
    /// Particle layout of the membench kernel.
    pub layout: Layout,
    /// Coalescing protocol linted and timed under.
    pub driver: DriverModel,
    /// Transactions the static analyzer predicts for the whole launch.
    pub predicted: u64,
    /// Transactions the dynamic coalescer actually issued.
    pub measured: u64,
    /// Whether the analysis claimed exactness (it must, for these kernels).
    pub exact: bool,
    /// Analyzer wall time for this kernel × driver, milliseconds.
    pub analyze_ms: f64,
}

/// Wall-time a deterministic closure as the best of three runs. Shared CI
/// runners are load-sensitive: a descheduled tick inflates a single
/// measurement several-fold, and the *minimum* of repeats is the least noisy
/// estimator of intrinsic cost (interference only ever adds time). The
/// closure's result is returned alongside so callers measure the same call
/// they use.
fn best_of_3_ms<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("three runs always produce a value"), best)
}

/// Cross-validate the static analyzer's transaction prediction against the
/// dynamic coalescer on the *real* membench kernels (not synthetic affine
/// accesses): per layout × driver, the two counts must be identical. This is
/// the analyzer's load-bearing property surfaced as a table.
pub fn lint_cross_validation() -> Vec<LintValidationRow> {
    use gpu_kernels::membench::{build_membench_kernel, MembenchConfig};
    use gpu_sim::analyze::{analyze_kernel, AnalysisConfig};
    use gpu_sim::exec::timed::time_grid;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::TimingParams;
    use particle_layouts::{DeviceImage, Particle};

    let dev = DeviceConfig::g8800gtx();
    let (grid, block) = (2u32, 64u32);
    let mut rows = Vec::new();
    for layout in Layout::ALL {
        let cfg = MembenchConfig { layout, iters: 2 };
        let kernel = build_membench_kernel(cfg);
        let n = cfg.particles_needed(grid, block) as usize;
        let ps: Vec<Particle> = (0..n).map(|_| Particle::SENTINEL).collect();
        let mut gmem = GlobalMemory::new(64 << 20);
        let img =
            DeviceImage::upload(&mut gmem, layout, &ps, block).expect("validation upload fits");
        let out_delta = gmem.alloc(u64::from(grid * block) * 4).expect("delta fits");
        let out_sum = gmem.alloc(u64::from(grid * block) * 4).expect("sum fits");
        let mut params = img.base_params();
        params.push(out_delta.0 as u32);
        params.push(out_sum.0 as u32);
        for driver in DriverModel::ALL {
            let acfg = AnalysisConfig::new(grid, block, params.clone()).with_driver(driver);
            let (report, analyze_ms) = best_of_3_ms(|| analyze_kernel(&kernel, &acfg));
            let tp = TimingParams::for_driver(driver);
            let run = time_grid(
                &kernel,
                grid,
                block,
                1,
                &params,
                &mut gmem.clone(),
                &dev,
                driver,
                &tp,
            )
            .expect("validation launch is well-formed");
            rows.push(LintValidationRow {
                layout,
                driver,
                predicted: report.predicted_transactions,
                measured: run.transactions,
                exact: report.exact,
                analyze_ms,
            });
        }
    }
    rows
}

/// One row of the Barnes–Hut interval-bounds cross-validation: the analyzer
/// cannot predict the data-dependent traversal exactly, so instead its
/// `[best, worst]` transaction interval must *enclose* what the dynamic
/// coalescer measures on a real tree.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsValidationRow {
    /// Kernel name (`bh_b<block>_d<depth>`).
    pub kernel: String,
    /// Coalescing protocol analyzed and timed under.
    pub driver: DriverModel,
    /// Best-case static transaction bound for the whole launch.
    pub tx_lo: u64,
    /// Worst-case static transaction bound for the whole launch.
    pub tx_hi: u64,
    /// Transactions the dynamic coalescer actually issued.
    pub measured: u64,
    /// `tx_lo <= measured <= tx_hi` — the interval fragment's soundness.
    pub enclosed: bool,
    /// Analyzer wall time for this kernel × driver, milliseconds.
    pub analyze_ms: f64,
}

/// Cross-validate the interval fragment on the Barnes–Hut traversal: build a
/// real Plummer-sphere tree, analyze the kernel under the per-node trip
/// budget, run the launch on the timed executor, and require the measured
/// transactions to land inside the static `[best, worst]` interval.
pub fn bh_bounds_validation(n: u32) -> Vec<BoundsValidationRow> {
    use gpu_kernels::barnes_hut::{build_bh_kernel, traversal_budget, upload_bh, BhKernelConfig};
    use gpu_sim::analyze::{analyze_kernel, AnalysisConfig};
    use gpu_sim::exec::timed::time_grid;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::TimingParams;
    use nbody::barnes_hut::LinearTree;
    use nbody::spawn;

    let dev = DeviceConfig::g8800gtx();
    let theta = 0.5f32;
    let bodies = spawn::plummer(n as usize, 1.0, 1.0, 1234);
    let lt = LinearTree::from_bodies(&bodies, 1.0);
    let probes: Vec<simcore::Vec3> = bodies.pos.iter().copied().step_by(17).collect();
    let need = lt.max_stack_depth(&probes, theta * theta) as u32 + 16;
    let block = if 64 * need * 4 <= 15 * 1024 { 64 } else { 32 };
    let cfg = BhKernelConfig { block, depth: need };
    let kernel = build_bh_kernel(cfg);

    let mut gmem = GlobalMemory::new(512 << 20);
    let (mut params, padded) =
        upload_bh(&mut gmem, &lt, &bodies.pos, cfg.block).expect("tree upload fits");
    let out = gmem.alloc(padded as u64 * 16).expect("output fits");
    params.push(out.0 as u32);
    params.push((theta * theta).to_bits());
    params.push(0.05f32.to_bits());
    let grid = padded / cfg.block;
    let budget = traversal_budget(lt.n_nodes() as u32);

    let mut rows = Vec::new();
    for driver in DriverModel::ALL {
        let acfg = AnalysisConfig::new(grid, cfg.block, params.clone())
            .with_driver(driver)
            .with_trip_budget(budget);
        let (report, analyze_ms) = best_of_3_ms(|| analyze_kernel(&kernel, &acfg));
        let (tx_lo, tx_hi) = report.transaction_bounds;

        let tp = TimingParams::for_driver(driver);
        let run = time_grid(
            &kernel,
            grid,
            cfg.block,
            1,
            &params,
            &mut gmem.clone(),
            &dev,
            driver,
            &tp,
        )
        .expect("BH launch is well-formed");
        rows.push(BoundsValidationRow {
            kernel: kernel.name.clone(),
            driver,
            tx_lo,
            tx_hi,
            measured: run.transactions,
            enclosed: tx_lo <= run.transactions && run.transactions <= tx_hi,
            analyze_ms,
        });
    }
    rows
}

#[cfg(test)]
mod bounds_validation_tests {
    use super::*;

    #[test]
    fn interval_bounds_enclose_the_dynamic_bh_traversal() {
        for r in bh_bounds_validation(192) {
            assert!(
                r.enclosed,
                "{} under {}: measured {} outside [{}, {}]",
                r.kernel, r.driver, r.measured, r.tx_lo, r.tx_hi
            );
            assert!(
                r.tx_lo < r.tx_hi,
                "a data-dependent traversal is an interval"
            );
        }
    }
}

#[cfg(test)]
mod lint_validation_tests {
    use super::*;

    #[test]
    fn static_prediction_matches_dynamic_coalescer_on_membench() {
        for r in lint_cross_validation() {
            assert!(
                r.exact,
                "{} under {}: analysis must be exact",
                r.layout, r.driver
            );
            assert_eq!(
                r.predicted, r.measured,
                "{} under {}: static and dynamic transaction counts diverge",
                r.layout, r.driver
            );
        }
    }
}

/// Model the kernel seconds for an arbitrary force-kernel build sharing the
/// standard parameter convention (buffers…, out, n, eps, smem0) — used by the
/// prefetch ablation.
pub fn time_kernel_at(
    kernel: &gpu_sim::ir::Kernel,
    cfg: ForceKernelConfig,
    n: u32,
    driver: DriverModel,
) -> f64 {
    use gpu_kernels::force::force_params;
    use gpu_sim::exec::launch::extrapolate_linear;
    use gpu_sim::exec::timed::time_resident;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::TimingParams;
    use particle_layouts::{DeviceImage, Particle};

    let dev = DeviceConfig::g8800gtx();
    let tp = TimingParams::for_driver(driver);
    let regs = register_demand(kernel).regs_per_thread as u32;
    let occ = occupancy(&dev, cfg.block, regs, kernel.smem_bytes);
    let padded = n.div_ceil(cfg.block) * cfg.block;
    // Clamp residency to the smallest measured grid (see gravit_app::model):
    // extra resident blocks would read past the uploaded tiles.
    let resident: Vec<u32> = (0..occ.active_blocks.min(4)).collect();
    let mut measured = Vec::new();
    for tiles in [4u32, 8] {
        let small_n = tiles * cfg.block;
        let particles: Vec<Particle> = (0..small_n)
            .map(|i| Particle {
                pos: simcore::Vec3::new(i as f32 * 0.01, 1.0, 2.0),
                vel: simcore::Vec3::ZERO,
                mass: 1.0,
            })
            .collect();
        let mut gmem = GlobalMemory::new(64 << 20);
        let img = DeviceImage::upload(&mut gmem, cfg.layout, &particles, cfg.block)
            .expect("fit-sized upload fits");
        let out = particle_layouts::device::alloc_accel_out(&mut gmem, img.padded_n)
            .expect("output fits");
        let params = force_params(&img, out, 0.05);
        let run = time_resident(
            kernel,
            &resident,
            cfg.block,
            resident.len() as u32,
            &params,
            &mut gmem,
            &dev,
            driver,
            &tp,
        )
        .expect("ablation launch is well-formed");
        measured.push((small_n as u64, run.cycles));
    }
    let wave_cycles = extrapolate_linear(&measured, padded as u64).expect("cost grows with tiles");
    let blocks = (padded / cfg.block) as u64;
    let waves = blocks.div_ceil(dev.num_sms as u64 * resident.len() as u64);
    (wave_cycles * waves) as f64 / dev.clock_hz
}

/// One row of the static-cycle-model cross-validation (`table_verify`): the
/// same optimization level priced by `analyze::cost` and timed by the
/// dynamic engine, under one driver.
#[derive(Debug, Clone, PartialEq)]
pub struct CostValidationRow {
    /// Optimization ladder level.
    pub level: gpu_kernels::force::OptLevel,
    /// Driver model both sides ran under.
    pub driver: DriverModel,
    /// Static estimate, normalized to cycles per pairwise interaction so
    /// different block sizes are comparable.
    pub predicted_cycles_per_pair: f64,
    /// Dynamic-engine kernel seconds at the reference size.
    pub measured_seconds: f64,
    /// Static speedup over the ladder's baseline level.
    pub predicted_speedup: f64,
    /// Measured speedup over the ladder's baseline level.
    pub measured_speedup: f64,
}

/// Price and time the full optimization ladder under `driver`. The static
/// side runs at a tiny 2-block launch (the model normalizes per-interaction,
/// so size cancels); the dynamic side runs the standard extrapolated harness
/// at `n` particles.
pub fn cost_vs_measured(n: u32, driver: DriverModel) -> Vec<CostValidationRow> {
    use gpu_kernels::force::OptLevel;
    use gpu_sim::analyze::{cost, AnalysisConfig};

    const VGRID: u32 = 2;
    let mut rows: Vec<CostValidationRow> = Vec::new();
    for level in OptLevel::ALL {
        let fcfg = level.config();
        let kernel = build_force_kernel(fcfg);
        let vn = VGRID * fcfg.block;
        let mut params: Vec<u32> = (0..fcfg.layout.buffers().len() as u32)
            .map(|i| 0x1_0000 * (i + 1))
            .collect();
        params.push(0x20_0000); // out
        params.push(vn); // n
        params.push(0.05f32.to_bits()); // eps
        params.push(0); // smem0
        let acfg = AnalysisConfig::new(VGRID, fcfg.block, params).with_driver(driver);
        let c = cost::estimate(&kernel, &acfg).expect("the force ladder is statically analyzable");
        let pairs = (VGRID * fcfg.block) as f64 * vn as f64;
        rows.push(CostValidationRow {
            level,
            driver,
            predicted_cycles_per_pair: c.total_cycles() / pairs,
            measured_seconds: time_kernel_at(&kernel, fcfg, n, driver),
            predicted_speedup: 1.0,
            measured_speedup: 1.0,
        });
    }
    let base_pred = rows[0].predicted_cycles_per_pair;
    let base_meas = rows[0].measured_seconds;
    for r in &mut rows {
        r.predicted_speedup = base_pred / r.predicted_cycles_per_pair;
        r.measured_speedup = base_meas / r.measured_seconds;
    }
    rows
}

/// Pairs of ladder levels whose static and measured orderings disagree,
/// ignoring pairs the dynamic engine itself places within `tolerance`
/// (relative measured gap) — those are ties, not rankings.
pub fn ranking_disagreements(rows: &[CostValidationRow], tolerance: f64) -> Vec<(usize, usize)> {
    let pairs: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.predicted_cycles_per_pair, r.measured_seconds))
        .collect();
    rank_disagreements(&pairs, tolerance)
}

/// Core of the ranking check: index pairs whose `(predicted, measured)`
/// orderings disagree, ignoring pairs whose measured values are within
/// `tolerance` of each other (ties, not rankings).
pub fn rank_disagreements(pairs: &[(f64, f64)], tolerance: f64) -> Vec<(usize, usize)> {
    let mut bad = Vec::new();
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            let ((pa, ma), (pb, mb)) = (pairs[i], pairs[j]);
            let gap = (ma - mb).abs() / ma.max(mb);
            if gap <= tolerance {
                continue;
            }
            if (ma < mb) != (pa < pb) {
                bad.push((i, j));
            }
        }
    }
    bad
}

#[cfg(test)]
mod cost_validation_tests {
    use super::*;

    #[test]
    fn static_ranking_agrees_with_the_dynamic_engine() {
        for driver in DriverModel::ALL {
            let rows = cost_vs_measured(24_576, driver);
            let bad = ranking_disagreements(&rows, 0.03);
            assert!(
                bad.is_empty(),
                "{driver}: static/measured ranking disagrees on {:?}",
                bad.iter()
                    .map(|&(i, j)| (rows[i].level.label(), rows[j].level.label()))
                    .collect::<Vec<_>>()
            );
        }
    }
}

/// One row of the synthesis cross-validation (`table_synth`): a candidate
/// the synthesizer priced (and, for suggestions, proved) next to what the
/// dynamic engine actually measures for the transformed kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthValidationRow {
    /// `layout + schedule` candidate label (`baseline` = the kernel as
    /// written).
    pub label: String,
    /// Driver model both sides ran under.
    pub driver: DriverModel,
    /// Static estimate under the synthesizer's pricing launch.
    pub predicted_cycles: f64,
    /// Static speedup over the unmodified kernel.
    pub predicted_speedup: f64,
    /// Dynamic-engine kernel seconds at the reference size.
    pub measured_seconds: f64,
    /// Measured speedup over the unmodified kernel.
    pub measured_speedup: f64,
    /// Registers per thread of the (transformed) kernel.
    pub regs: u16,
    /// Translation-validation certificate summary (`-` for the baseline).
    pub certificate: String,
}

/// The word a byte offset into the packed 28-byte Unopt record holds —
/// the source-side semantics a synthesized [`LayoutRewrite`] is applied to
/// when uploading real particles into the rewritten buffers.
fn unopt_word(p: &particle_layouts::Particle, offset: u32) -> f32 {
    match offset {
        0 => p.pos.x,
        4 => p.pos.y,
        8 => p.pos.z,
        12 => p.vel.x,
        16 => p.vel.y,
        20 => p.vel.z,
        24 => p.mass,
        _ => unreachable!("the Unopt record is 28 bytes of f32 words"),
    }
}

/// Allocate the rewritten layout's buffers and populate every mapped word
/// from `particles`, returning the new buffer base parameters. Only the
/// Unopt source record is understood — the one kernel `table_synth`
/// measures synthesized rewrites of.
fn upload_rewritten(
    gmem: &mut gpu_sim::mem::GlobalMemory,
    rw: &gpu_sim::ir::layout::LayoutRewrite,
    particles: &[particle_layouts::Particle],
) -> Vec<u32> {
    let n = particles.len() as u64;
    let bases: Vec<gpu_sim::mem::DevicePtr> = rw
        .new_strides
        .iter()
        .map(|&s| {
            gmem.alloc_zeroed(n * s as u64)
                .expect("synthesized buffers fit")
        })
        .collect();
    for m in &rw.maps {
        assert_eq!(
            m.param, 0,
            "table_synth only understands rewrites of the single Unopt buffer"
        );
        for &(old_off, dest) in &m.words {
            let stride = rw.new_strides[dest.buffer] as u64;
            for (e, p) in particles.iter().enumerate() {
                gmem.store_f32(
                    bases[dest.buffer].0 + e as u64 * stride + dest.offset as u64,
                    unopt_word(p, old_off),
                )
                .expect("mapped word lands inside its buffer");
            }
        }
    }
    bases.iter().map(|b| b.0 as u32).collect()
}

/// Model the kernel seconds for a synthesized force-kernel candidate:
/// `rewrite = None` times the kernel over the standard Unopt upload;
/// `rewrite = Some` allocates and fills the rewritten buffers instead.
/// Mirrors [`time_kernel_at`] (tiles 4 and 8, linear extrapolation, waves).
pub fn time_synth_kernel(
    kernel: &gpu_sim::ir::Kernel,
    rewrite: Option<&gpu_sim::ir::layout::LayoutRewrite>,
    block: u32,
    n: u32,
    driver: DriverModel,
) -> f64 {
    use gpu_sim::exec::launch::extrapolate_linear;
    use gpu_sim::exec::timed::time_resident;
    use gpu_sim::mem::GlobalMemory;
    use gpu_sim::TimingParams;
    use particle_layouts::Particle;

    let Some(rw) = rewrite else {
        let cfg = ForceKernelConfig {
            layout: Layout::Unopt,
            block,
            unroll: 1,
            icm: false,
        };
        return time_kernel_at(kernel, cfg, n, driver);
    };

    let dev = DeviceConfig::g8800gtx();
    let tp = TimingParams::for_driver(driver);
    let regs = register_demand(kernel).regs_per_thread as u32;
    let occ = occupancy(&dev, block, regs, kernel.smem_bytes);
    let padded = n.div_ceil(block) * block;
    let resident: Vec<u32> = (0..occ.active_blocks.min(4)).collect();
    let mut measured = Vec::new();
    for tiles in [4u32, 8] {
        let small_n = tiles * block;
        let particles: Vec<Particle> = (0..small_n)
            .map(|i| Particle {
                pos: simcore::Vec3::new(i as f32 * 0.01, 1.0, 2.0),
                vel: simcore::Vec3::ZERO,
                mass: 1.0,
            })
            .collect();
        let mut gmem = GlobalMemory::new(64 << 20);
        let mut params = upload_rewritten(&mut gmem, rw, &particles);
        let out =
            particle_layouts::device::alloc_accel_out(&mut gmem, small_n).expect("output fits");
        params.push(out.0 as u32);
        params.push(small_n);
        params.push(0.05f32.to_bits());
        params.push(0); // smem0
        let run = time_resident(
            kernel,
            &resident,
            block,
            resident.len() as u32,
            &params,
            &mut gmem,
            &dev,
            driver,
            &tp,
        )
        .expect("synthesized launch is well-formed");
        measured.push((small_n as u64, run.cycles));
    }
    let wave_cycles = extrapolate_linear(&measured, padded as u64).expect("cost grows with tiles");
    let blocks = (padded / block) as u64;
    let waves = blocks.div_ceil(dev.num_sms as u64 * resident.len() as u64);
    (wave_cycles * waves) as f64 / dev.clock_hz
}

/// Run the synthesizer on the headline naive-AoS force target under
/// `driver`, then time the baseline and every proven suggestion on the
/// dynamic engine at `n` particles. The static and measured orderings are
/// what `table_synth` gates on.
pub fn synth_vs_measured(n: u32, driver: DriverModel) -> Vec<SynthValidationRow> {
    let mut target = gpu_kernels::synthset::force_unopt_target(driver);
    // The CI table wants several rows to rank, not just the winner.
    target.config.max_suggestions = 5;
    let report = target
        .synthesize()
        .expect("the headline synthesis target is priceable");
    let block = target.config.block;
    let base_meas = time_synth_kernel(&target.kernel, None, block, n, driver);
    let mut rows = vec![SynthValidationRow {
        label: "baseline (as written)".to_string(),
        driver,
        predicted_cycles: report.baseline_cycles,
        predicted_speedup: 1.0,
        measured_seconds: base_meas,
        measured_speedup: 1.0,
        regs: report.baseline_regs,
        certificate: "-".to_string(),
    }];
    for s in &report.suggestions {
        let meas = time_synth_kernel(&s.kernel, s.rewrite.as_ref(), block, n, driver);
        rows.push(SynthValidationRow {
            label: s.label.clone(),
            driver,
            predicted_cycles: s.predicted_cycles,
            predicted_speedup: s.predicted_speedup,
            measured_seconds: meas,
            measured_speedup: base_meas / meas,
            regs: s.regs,
            certificate: s.certificate.summary(),
        });
    }
    rows
}

/// Pairs of synthesized candidates whose static and measured orderings
/// disagree outside measurement ties (see [`rank_disagreements`]).
pub fn synth_ranking_disagreements(
    rows: &[SynthValidationRow],
    tolerance: f64,
) -> Vec<(usize, usize)> {
    let pairs: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.predicted_cycles, r.measured_seconds))
        .collect();
    rank_disagreements(&pairs, tolerance)
}
