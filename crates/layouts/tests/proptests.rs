//! Property-based tests: layout roundtrips and address-plan invariants.

use gpu_sim::mem::GlobalMemory;
use gpu_sim::DriverModel;
use particle_layouts::streams::{analyze_plan, half_warp_addresses};
use particle_layouts::{DeviceImage, Layout, Particle};
use proptest::prelude::*;
use simcore::Vec3;

fn particle_strategy() -> impl Strategy<Value = Particle> {
    (
        (-1e6f32..1e6, -1e6f32..1e6, -1e6f32..1e6),
        (-1e3f32..1e3, -1e3f32..1e3, -1e3f32..1e3),
        0.0f32..1e6,
    )
        .prop_map(|((px, py, pz), (vx, vy, vz), m)| Particle {
            pos: Vec3::new(px, py, pz),
            vel: Vec3::new(vx, vy, vz),
            mass: m,
        })
}

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::Unopt),
        Just(Layout::AoS),
        Just(Layout::SoA),
        Just(Layout::AoaS),
        Just(Layout::SoAoaS)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Upload → download is the identity for every layout, any particle set,
    /// any pad unit.
    #[test]
    fn device_image_roundtrips(ps in proptest::collection::vec(particle_strategy(), 1..200),
                               layout in layout_strategy(),
                               pad in prop_oneof![Just(32u32), Just(64), Just(128), Just(192)]) {
        let mut gmem = GlobalMemory::new(8 << 20);
        let img = DeviceImage::upload(&mut gmem, layout, &ps, pad).expect("upload fits");
        prop_assert_eq!(img.n as usize, ps.len());
        prop_assert_eq!(img.padded_n % pad, 0);
        prop_assert!(img.padded_n >= img.n);
        prop_assert_eq!(img.read_all(&gmem).expect("readback in bounds"), ps);
        // Padding slots are sentinels.
        for i in img.n..img.padded_n {
            prop_assert_eq!(img.read_particle(&gmem, i).expect("in bounds").mass, 0.0);
        }
    }

    /// Every read plan's half-warp addresses are distinct per lane, naturally
    /// aligned, and disjoint across lanes' slots.
    #[test]
    fn plan_addresses_are_aligned_and_distinct(layout in layout_strategy(), first in 0u64..1024) {
        for plan in [layout.read_plan_all(), layout.read_plan_posmass()] {
            let bases: Vec<u64> = (0..layout.buffers().len()).map(|b| (b as u64 + 1) << 20).collect();
            for (ri, r) in plan.reads.iter().enumerate() {
                let addrs = half_warp_addresses(&plan, &bases, ri, first);
                let width = (r.words * 4) as u64;
                let mut seen = Vec::new();
                for a in addrs.iter().flatten() {
                    prop_assert_eq!(a % width, 0, "misaligned address in {} plan", layout);
                    prop_assert!(!seen.contains(a), "duplicate lane address");
                    seen.push(*a);
                }
                prop_assert_eq!(seen.len(), 16);
            }
        }
    }

    /// Transaction analysis invariants: bus bytes cover useful bytes, and
    /// efficiency is in (0, 1].
    #[test]
    fn analysis_is_conservative(layout in layout_strategy(),
                                driver in prop_oneof![Just(DriverModel::Cuda10), Just(DriverModel::Cuda11), Just(DriverModel::Cuda22)]) {
        let a = analyze_plan(&layout.read_plan_all(), driver);
        prop_assert!(a.bus_bytes >= a.useful_bytes);
        prop_assert!(a.efficiency() > 0.0 && a.efficiency() <= 1.0);
        prop_assert!(a.transactions >= a.reads, "at least one transaction per load");
    }
}
