//! Host-side particle types: the canonical record and the four byte layouts
//! from the paper's Figures 2, 4, 6 and 8, as real `repr(C)` Rust types.
//!
//! Tests pin the sizes and field offsets, so "28-byte packed struct" is a
//! checked property rather than a comment.

use simcore::Vec3;

/// The canonical particle record all layouts convert to and from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Particle {
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
    /// Mass.
    pub mass: f32,
}

impl Particle {
    /// A particle at rest at the origin with zero mass — the padding sentinel
    /// (contributes exactly zero force under Plummer softening).
    pub const SENTINEL: Particle = Particle {
        pos: Vec3::ZERO,
        vel: Vec3::ZERO,
        mass: 0.0,
    };

    /// The seven floats in the paper's canonical order
    /// (px, py, pz, vx, vy, vz, mass).
    pub fn fields(&self) -> [f32; 7] {
        [
            self.pos.x, self.pos.y, self.pos.z, self.vel.x, self.vel.y, self.vel.z, self.mass,
        ]
    }
}

/// Paper Fig. 2: the original Gravit layout — a packed 28-byte structure.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParticlePacked {
    /// Position x/y/z.
    pub px: f32,
    /// Position y.
    pub py: f32,
    /// Position z.
    pub pz: f32,
    /// Velocity x.
    pub vx: f32,
    /// Velocity y.
    pub vy: f32,
    /// Velocity z.
    pub vz: f32,
    /// Mass.
    pub mass: f32,
}

/// Paper Fig. 6: the `__align__(16)` structure — 7 floats plus one hidden
/// 32-bit padding element, 32 bytes, 16-byte aligned. Serves both the `AoS`
/// variant (scalar access) and the `AoaS` variant (two 128-bit accesses).
#[repr(C, align(16))]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParticleAligned {
    /// Position x.
    pub px: f32,
    /// Position y.
    pub py: f32,
    /// Position z.
    pub pz: f32,
    /// Velocity x.
    pub vx: f32,
    /// Velocity y.
    pub vy: f32,
    /// Velocity z.
    pub vz: f32,
    /// Mass.
    pub mass: f32,
    /// The hidden padding element alignment adds.
    pub _pad: f32,
}

/// Paper Fig. 8, hot half: position + mass, the `float4`-shaped sub-structure
/// read on every tile of the force kernel.
#[repr(C, align(16))]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PosMass {
    /// Position x.
    pub x: f32,
    /// Position y.
    pub y: f32,
    /// Position z.
    pub z: f32,
    /// Mass.
    pub mass: f32,
}

/// Paper Fig. 8, cold half: velocity (+ hidden padding), read far less often
/// — the access-frequency grouping of Sec. II-D.
#[repr(C, align(16))]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Velocity4 {
    /// Velocity x.
    pub x: f32,
    /// Velocity y.
    pub y: f32,
    /// Velocity z.
    pub z: f32,
    /// Hidden padding element.
    pub _pad: f32,
}

impl From<Particle> for ParticlePacked {
    fn from(p: Particle) -> Self {
        ParticlePacked {
            px: p.pos.x,
            py: p.pos.y,
            pz: p.pos.z,
            vx: p.vel.x,
            vy: p.vel.y,
            vz: p.vel.z,
            mass: p.mass,
        }
    }
}

impl From<ParticlePacked> for Particle {
    fn from(p: ParticlePacked) -> Self {
        Particle {
            pos: Vec3::new(p.px, p.py, p.pz),
            vel: Vec3::new(p.vx, p.vy, p.vz),
            mass: p.mass,
        }
    }
}

impl From<Particle> for ParticleAligned {
    fn from(p: Particle) -> Self {
        ParticleAligned {
            px: p.pos.x,
            py: p.pos.y,
            pz: p.pos.z,
            vx: p.vel.x,
            vy: p.vel.y,
            vz: p.vel.z,
            mass: p.mass,
            _pad: 0.0,
        }
    }
}

impl From<ParticleAligned> for Particle {
    fn from(p: ParticleAligned) -> Self {
        Particle {
            pos: Vec3::new(p.px, p.py, p.pz),
            vel: Vec3::new(p.vx, p.vy, p.vz),
            mass: p.mass,
        }
    }
}

impl From<Particle> for (PosMass, Velocity4) {
    fn from(p: Particle) -> Self {
        (
            PosMass {
                x: p.pos.x,
                y: p.pos.y,
                z: p.pos.z,
                mass: p.mass,
            },
            Velocity4 {
                x: p.vel.x,
                y: p.vel.y,
                z: p.vel.z,
                _pad: 0.0,
            },
        )
    }
}

/// Structure-of-arrays host container (paper Fig. 4): seven scalar arrays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaParticles {
    /// Position x values.
    pub px: Vec<f32>,
    /// Position y values.
    pub py: Vec<f32>,
    /// Position z values.
    pub pz: Vec<f32>,
    /// Velocity x values.
    pub vx: Vec<f32>,
    /// Velocity y values.
    pub vy: Vec<f32>,
    /// Velocity z values.
    pub vz: Vec<f32>,
    /// Masses.
    pub mass: Vec<f32>,
}

impl SoaParticles {
    /// Transpose an AoS particle slice into SoA form.
    pub fn from_particles(ps: &[Particle]) -> Self {
        let mut s = SoaParticles::default();
        for p in ps {
            s.px.push(p.pos.x);
            s.py.push(p.pos.y);
            s.pz.push(p.pos.z);
            s.vx.push(p.vel.x);
            s.vy.push(p.vel.y);
            s.vz.push(p.vel.z);
            s.mass.push(p.mass);
        }
        s
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.px.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.px.is_empty()
    }

    /// Transpose back to AoS.
    pub fn to_particles(&self) -> Vec<Particle> {
        (0..self.len())
            .map(|i| Particle {
                pos: Vec3::new(self.px[i], self.py[i], self.pz[i]),
                vel: Vec3::new(self.vx[i], self.vy[i], self.vz[i]),
                mass: self.mass[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::{align_of, offset_of, size_of};

    #[test]
    fn packed_struct_is_28_bytes() {
        assert_eq!(size_of::<ParticlePacked>(), 28);
        assert_eq!(align_of::<ParticlePacked>(), 4);
        assert_eq!(offset_of!(ParticlePacked, px), 0);
        assert_eq!(offset_of!(ParticlePacked, vx), 12);
        assert_eq!(offset_of!(ParticlePacked, mass), 24);
    }

    #[test]
    fn aligned_struct_is_32_bytes_align_16() {
        assert_eq!(size_of::<ParticleAligned>(), 32);
        assert_eq!(align_of::<ParticleAligned>(), 16);
        assert_eq!(offset_of!(ParticleAligned, mass), 24);
        assert_eq!(offset_of!(ParticleAligned, _pad), 28);
    }

    #[test]
    fn sub_structures_are_float4_shaped() {
        assert_eq!(size_of::<PosMass>(), 16);
        assert_eq!(align_of::<PosMass>(), 16);
        assert_eq!(offset_of!(PosMass, mass), 12);
        assert_eq!(size_of::<Velocity4>(), 16);
        assert_eq!(align_of::<Velocity4>(), 16);
    }

    #[test]
    fn conversions_roundtrip() {
        let p = Particle {
            pos: Vec3::new(1.0, 2.0, 3.0),
            vel: Vec3::new(-1.0, -2.0, -3.0),
            mass: 7.5,
        };
        assert_eq!(Particle::from(ParticlePacked::from(p)), p);
        assert_eq!(Particle::from(ParticleAligned::from(p)), p);
        let (pm, v): (PosMass, Velocity4) = p.into();
        assert_eq!(pm.mass, 7.5);
        assert_eq!((pm.x, pm.y, pm.z), (1.0, 2.0, 3.0));
        assert_eq!((v.x, v.y, v.z), (-1.0, -2.0, -3.0));
    }

    #[test]
    fn soa_transpose_roundtrip() {
        let ps: Vec<Particle> = (0..10)
            .map(|i| Particle {
                pos: Vec3::splat(i as f32),
                vel: Vec3::splat(-(i as f32)),
                mass: i as f32 * 0.5,
            })
            .collect();
        let soa = SoaParticles::from_particles(&ps);
        assert_eq!(soa.len(), 10);
        assert!(!soa.is_empty());
        assert_eq!(soa.to_particles(), ps);
    }

    #[test]
    fn sentinel_has_zero_mass() {
        assert_eq!(Particle::SENTINEL.mass, 0.0);
        assert_eq!(Particle::SENTINEL.fields(), [0.0; 7]);
    }
}
