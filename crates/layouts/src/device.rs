//! Serializing particle sets into simulated device memory.
//!
//! [`DeviceImage::upload`] lays a particle slice out in [`gpu_sim`] global
//! memory under any [`Layout`], padding the count up to a block multiple with
//! zero-mass sentinels (the GPU-Gems trick that removes the bounds check from
//! the kernel — see the layouts crate docs). [`DeviceImage::download_accels`]
//! and friends read results back.
//!
//! All device accesses return [`gpu_sim::DeviceResult`]: allocator
//! exhaustion, out-of-bounds indices, and uninitialized readbacks surface as
//! typed [`gpu_sim::DeviceError`]s instead of panics.

use crate::host::Particle;
use crate::plan::{BufferKind, Field, Layout};
use gpu_sim::fault::{DeviceError, DeviceResult, FaultKind};
use gpu_sim::mem::{DevicePtr, GlobalMemory};

/// A particle set resident in simulated device memory under some layout.
#[derive(Debug, Clone)]
pub struct DeviceImage {
    /// The layout used.
    pub layout: Layout,
    /// Real (unpadded) particle count.
    pub n: u32,
    /// Padded count (multiple of the pad unit, ≥ n; zero when `n` is zero).
    pub padded_n: u32,
    /// Base pointer of each buffer, in [`Layout::buffers`] order.
    pub buffers: Vec<DevicePtr>,
    /// Bytes uploaded (all buffers, padded).
    pub bytes: u64,
}

impl DeviceImage {
    /// Upload `particles` under `layout`, padding the count to a multiple of
    /// `pad_to` (typically the block size) with [`Particle::SENTINEL`].
    ///
    /// An empty particle set is a valid no-op image: no buffers are
    /// allocated, `padded_n` is zero, and no kernel launch is needed.
    pub fn upload(
        gmem: &mut GlobalMemory,
        layout: Layout,
        particles: &[Particle],
        pad_to: u32,
    ) -> DeviceResult<DeviceImage> {
        if pad_to == 0 {
            return Err(DeviceError::new(FaultKind::BadConfig {
                reason: "pad unit must be positive".into(),
            }));
        }
        let n = particles.len() as u32;
        if n == 0 {
            return Ok(DeviceImage {
                layout,
                n: 0,
                padded_n: 0,
                buffers: Vec::new(),
                bytes: 0,
            });
        }
        let padded_n = n.div_ceil(pad_to) * pad_to;
        let kinds = layout.buffers();
        let mut buffers = Vec::with_capacity(kinds.len());
        let mut bytes = 0u64;
        for kind in &kinds {
            let size = kind.stride() * padded_n as u64;
            let ptr = gmem.alloc(size)?;
            bytes += size;
            for i in 0..padded_n {
                let p = particles
                    .get(i as usize)
                    .copied()
                    .unwrap_or(Particle::SENTINEL);
                write_record(gmem, *kind, ptr, i as u64, &p)?;
            }
            buffers.push(ptr);
        }
        Ok(DeviceImage {
            layout,
            n,
            padded_n,
            buffers,
            bytes,
        })
    }

    /// The exact allocation sizes this upload will request, in allocation
    /// order — feed to [`GlobalMemory::footprint`] for an exact budget.
    pub fn alloc_sizes(layout: Layout, n: u32, pad_to: u32) -> Vec<u64> {
        if n == 0 || pad_to == 0 {
            return Vec::new();
        }
        let padded_n = n.div_ceil(pad_to) * pad_to;
        layout
            .buffers()
            .iter()
            .map(|k| k.stride() * padded_n as u64)
            .collect()
    }

    /// Read particle `i` back from the device image (for roundtrip checks).
    pub fn read_particle(&self, gmem: &GlobalMemory, i: u32) -> DeviceResult<Particle> {
        if i >= self.padded_n {
            return Err(DeviceError::new(FaultKind::OutOfBounds {
                space: gpu_sim::ir::MemSpace::Global,
                addr: i as u64,
                width: 1,
                limit: self.padded_n as u64,
                redzone: false,
            }));
        }
        let mut p = Particle::SENTINEL;
        for (kind, base) in self.layout.buffers().iter().zip(&self.buffers) {
            read_record(gmem, *kind, *base, i as u64, &mut p)?;
        }
        Ok(p)
    }

    /// Read all real (unpadded) particles back.
    pub fn read_all(&self, gmem: &GlobalMemory) -> DeviceResult<Vec<Particle>> {
        (0..self.n).map(|i| self.read_particle(gmem, i)).collect()
    }

    /// Parameter values (buffer base addresses) to pass to a kernel.
    pub fn base_params(&self) -> Vec<u32> {
        self.buffers.iter().map(|p| p.0 as u32).collect()
    }

    /// Free this image's buffers (reverse allocation order, as the device's
    /// LIFO allocator requires). The image must be the most recent set of
    /// live allocations; chunked streaming relies on this to reuse the same
    /// region for every source chunk. The image is consumed — its pointers
    /// are dangling afterwards.
    pub fn free(self, gmem: &mut GlobalMemory) -> DeviceResult<()> {
        for ptr in self.buffers.into_iter().rev() {
            gmem.free(ptr)?;
        }
        Ok(())
    }
}

fn write_record(
    gmem: &mut GlobalMemory,
    kind: BufferKind,
    base: DevicePtr,
    i: u64,
    p: &Particle,
) -> DeviceResult<()> {
    let at = |off: u64| base.0 + i * kind.stride() + off;
    match kind {
        BufferKind::Packed28 | BufferKind::Aligned32 => {
            for (f, v) in p.fields().iter().enumerate() {
                gmem.store_f32(at(4 * f as u64), *v)?;
            }
            if kind == BufferKind::Aligned32 {
                gmem.store_f32(at(28), 0.0)?;
            }
        }
        BufferKind::ScalarArray(field) => {
            let v = match field {
                Field::Px => p.pos.x,
                Field::Py => p.pos.y,
                Field::Pz => p.pos.z,
                Field::Vx => p.vel.x,
                Field::Vy => p.vel.y,
                Field::Vz => p.vel.z,
                Field::Mass => p.mass,
            };
            gmem.store_f32(at(0), v)?;
        }
        BufferKind::PosMass4 => {
            gmem.store_f32(at(0), p.pos.x)?;
            gmem.store_f32(at(4), p.pos.y)?;
            gmem.store_f32(at(8), p.pos.z)?;
            gmem.store_f32(at(12), p.mass)?;
        }
        BufferKind::Velocity4 => {
            gmem.store_f32(at(0), p.vel.x)?;
            gmem.store_f32(at(4), p.vel.y)?;
            gmem.store_f32(at(8), p.vel.z)?;
            gmem.store_f32(at(12), 0.0)?;
        }
    }
    Ok(())
}

fn read_record(
    gmem: &GlobalMemory,
    kind: BufferKind,
    base: DevicePtr,
    i: u64,
    p: &mut Particle,
) -> DeviceResult<()> {
    let at = |off: u64| base.0 + i * kind.stride() + off;
    match kind {
        BufferKind::Packed28 | BufferKind::Aligned32 => {
            p.pos.x = gmem.load_f32(at(0))?;
            p.pos.y = gmem.load_f32(at(4))?;
            p.pos.z = gmem.load_f32(at(8))?;
            p.vel.x = gmem.load_f32(at(12))?;
            p.vel.y = gmem.load_f32(at(16))?;
            p.vel.z = gmem.load_f32(at(20))?;
            p.mass = gmem.load_f32(at(24))?;
        }
        BufferKind::ScalarArray(field) => {
            let v = gmem.load_f32(at(0))?;
            match field {
                Field::Px => p.pos.x = v,
                Field::Py => p.pos.y = v,
                Field::Pz => p.pos.z = v,
                Field::Vx => p.vel.x = v,
                Field::Vy => p.vel.y = v,
                Field::Vz => p.vel.z = v,
                Field::Mass => p.mass = v,
            }
        }
        BufferKind::PosMass4 => {
            p.pos.x = gmem.load_f32(at(0))?;
            p.pos.y = gmem.load_f32(at(4))?;
            p.pos.z = gmem.load_f32(at(8))?;
            p.mass = gmem.load_f32(at(12))?;
        }
        BufferKind::Velocity4 => {
            p.vel.x = gmem.load_f32(at(0))?;
            p.vel.y = gmem.load_f32(at(4))?;
            p.vel.z = gmem.load_f32(at(8))?;
        }
    }
    Ok(())
}

/// Allocate a zero-filled output buffer for per-particle `float4`
/// accelerations and return its pointer (the `cudaMalloc` + `cudaMemset`
/// idiom: output slots are legitimately read back even if a padded thread
/// never wrote them).
pub fn alloc_accel_out(gmem: &mut GlobalMemory, padded_n: u32) -> DeviceResult<DevicePtr> {
    gmem.alloc_zeroed(padded_n as u64 * 16)
}

/// Read back `n` accelerations from a `float4` output buffer.
pub fn download_accels(
    gmem: &GlobalMemory,
    out: DevicePtr,
    n: u32,
) -> DeviceResult<Vec<simcore::Vec3>> {
    (0..n as u64)
        .map(|i| {
            Ok(simcore::Vec3::new(
                gmem.load_f32(out.0 + 16 * i)?,
                gmem.load_f32(out.0 + 16 * i + 4)?,
                gmem.load_f32(out.0 + 16 * i + 8)?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Vec3;

    fn sample(n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| Particle {
                pos: Vec3::new(i as f32, 2.0 * i as f32, -(i as f32)),
                vel: Vec3::new(0.5, -0.5, i as f32),
                mass: 1.0 + i as f32,
            })
            .collect()
    }

    #[test]
    fn roundtrip_every_layout() {
        for layout in Layout::ALL {
            let mut gmem = GlobalMemory::new(1 << 20);
            let ps = sample(100);
            let img = DeviceImage::upload(&mut gmem, layout, &ps, 128).unwrap();
            assert_eq!(img.n, 100);
            assert_eq!(img.padded_n, 128);
            assert_eq!(img.read_all(&gmem).unwrap(), ps, "{layout} roundtrip");
        }
    }

    #[test]
    fn padding_is_zero_mass() {
        let mut gmem = GlobalMemory::new(1 << 20);
        let img = DeviceImage::upload(&mut gmem, Layout::SoAoaS, &sample(5), 128).unwrap();
        for i in 5..128 {
            let p = img.read_particle(&gmem, i).unwrap();
            assert_eq!(p.mass, 0.0, "padding particle {i} must be massless");
            assert_eq!(p.pos, Vec3::ZERO);
        }
    }

    #[test]
    fn buffer_bases_are_vector_aligned() {
        for layout in Layout::ALL {
            let mut gmem = GlobalMemory::new(1 << 20);
            let img = DeviceImage::upload(&mut gmem, layout, &sample(64), 64).unwrap();
            for b in &img.buffers {
                assert_eq!(
                    b.0 % 128,
                    0,
                    "{layout}: cudaMalloc-grade alignment expected"
                );
            }
        }
    }

    #[test]
    fn uploaded_bytes_match_layout_footprint() {
        let mut gmem = GlobalMemory::new(1 << 20);
        let img = DeviceImage::upload(&mut gmem, Layout::AoaS, &sample(64), 64).unwrap();
        assert_eq!(img.bytes, 64 * 32);
        let mut gmem = GlobalMemory::new(1 << 20);
        let img = DeviceImage::upload(&mut gmem, Layout::Unopt, &sample(64), 64).unwrap();
        assert_eq!(img.bytes, 64 * 28);
        let mut gmem = GlobalMemory::new(1 << 20);
        let img = DeviceImage::upload(&mut gmem, Layout::SoA, &sample(64), 64).unwrap();
        assert_eq!(img.bytes, 64 * 28);
    }

    #[test]
    fn alloc_sizes_predict_allocator_state_exactly() {
        for layout in Layout::ALL {
            let sizes = DeviceImage::alloc_sizes(layout, 100, 128);
            let budget = GlobalMemory::footprint(&sizes);
            let mut gmem = GlobalMemory::new(budget);
            DeviceImage::upload(&mut gmem, layout, &sample(100), 128).unwrap();
            assert_eq!(
                gmem.allocated(),
                budget,
                "{layout}: footprint must be exact"
            );
        }
    }

    #[test]
    fn accel_out_roundtrip() {
        let mut gmem = GlobalMemory::new(1 << 16);
        let out = alloc_accel_out(&mut gmem, 64).unwrap();
        gmem.store_f32(out.0 + 16 * 3, 1.5).unwrap();
        gmem.store_f32(out.0 + 16 * 3 + 4, 2.5).unwrap();
        gmem.store_f32(out.0 + 16 * 3 + 8, 3.5).unwrap();
        let acc = download_accels(&gmem, out, 64).unwrap();
        assert_eq!(acc[3], Vec3::new(1.5, 2.5, 3.5));
        assert_eq!(acc[0], Vec3::ZERO);
    }

    #[test]
    fn empty_upload_is_a_valid_noop_image() {
        let mut gmem = GlobalMemory::new(1 << 16);
        let img = DeviceImage::upload(&mut gmem, Layout::SoA, &[], 128).unwrap();
        assert_eq!(img.n, 0);
        assert_eq!(img.padded_n, 0);
        assert!(img.buffers.is_empty());
        assert_eq!(img.bytes, 0);
        assert_eq!(gmem.allocated(), 0, "no device memory consumed");
        assert!(img.read_all(&gmem).unwrap().is_empty());
    }

    #[test]
    fn zero_pad_unit_is_a_typed_error() {
        let mut gmem = GlobalMemory::new(1 << 16);
        let err = DeviceImage::upload(&mut gmem, Layout::SoA, &sample(4), 0).unwrap_err();
        assert!(matches!(err.kind, FaultKind::BadConfig { .. }));
    }

    #[test]
    fn free_rewinds_the_allocator_for_every_layout() {
        for layout in Layout::ALL {
            let mut gmem = GlobalMemory::new(1 << 20);
            let before = gmem.allocated();
            let img = DeviceImage::upload(&mut gmem, layout, &sample(100), 128).unwrap();
            assert!(gmem.allocated() > before);
            img.free(&mut gmem).unwrap();
            assert_eq!(gmem.allocated(), before, "{layout}: free must rewind fully");
            // The region is reusable: a second upload lands identically.
            let again = DeviceImage::upload(&mut gmem, layout, &sample(100), 128).unwrap();
            assert_eq!(again.read_all(&gmem).unwrap(), sample(100));
        }
    }

    #[test]
    fn oversized_upload_is_out_of_memory_not_a_panic() {
        let mut gmem = GlobalMemory::new(1 << 10); // far too small for 1000 particles
        let err = DeviceImage::upload(&mut gmem, Layout::AoS, &sample(1000), 128).unwrap_err();
        assert!(matches!(err.kind, FaultKind::OutOfMemory { .. }));
    }
}
