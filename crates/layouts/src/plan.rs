//! Layout descriptors and read plans.
//!
//! A [`ReadPlan`] is the machine-readable answer to "how does a thread fetch
//! this particle's data under layout X?" — the kernel builders turn it into
//! IR loads, the coalescing analysis turns it into address streams, and the
//! device module turns it into buffers. The per-layout plans are exactly the
//! access patterns of the paper's Figures 3, 5, 7 and 9.

use serde::{Deserialize, Serialize};

/// The memory layouts compared in the paper (Fig. 10's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// Original Gravit: packed 28-byte array of structures (Sec. II-A,
    /// labeled "unopt" in Fig. 10).
    Unopt,
    /// 16-byte-aligned 32-byte structure accessed with scalar loads — the
    /// alignment alone, without vector accesses.
    AoS,
    /// Structure of arrays: seven scalar arrays (Sec. II-B).
    SoA,
    /// Array of aligned structures: two 128-bit loads per particle
    /// (Sec. II-C).
    AoaS,
    /// Structure of arrays of aligned structures: the paper's contribution
    /// (Sec. II-D).
    SoAoaS,
}

impl Layout {
    /// All layouts in the order the paper plots them.
    pub const ALL: [Layout; 5] = [
        Layout::Unopt,
        Layout::AoS,
        Layout::SoA,
        Layout::AoaS,
        Layout::SoAoaS,
    ];

    /// Label used in tables/figures.
    pub fn label(self) -> &'static str {
        match self {
            Layout::Unopt => "unopt",
            Layout::AoS => "AoS",
            Layout::SoA => "SoA",
            Layout::AoaS => "AoaS",
            Layout::SoAoaS => "SoAoaS",
        }
    }

    /// The buffers this layout stores particles in.
    pub fn buffers(self) -> Vec<BufferKind> {
        match self {
            Layout::Unopt => vec![BufferKind::Packed28],
            Layout::AoS | Layout::AoaS => vec![BufferKind::Aligned32],
            Layout::SoA => vec![
                BufferKind::ScalarArray(Field::Px),
                BufferKind::ScalarArray(Field::Py),
                BufferKind::ScalarArray(Field::Pz),
                BufferKind::ScalarArray(Field::Vx),
                BufferKind::ScalarArray(Field::Vy),
                BufferKind::ScalarArray(Field::Vz),
                BufferKind::ScalarArray(Field::Mass),
            ],
            Layout::SoAoaS => vec![BufferKind::PosMass4, BufferKind::Velocity4],
        }
    }

    /// Bytes of device storage per particle (including padding elements).
    pub fn bytes_per_particle(self) -> u64 {
        match self {
            Layout::Unopt => 28,
            Layout::AoS | Layout::AoaS => 32,
            Layout::SoA => 28,
            Layout::SoAoaS => 32,
        }
    }

    /// The reads a thread issues to fetch **all seven** floats of particle
    /// `i` — the membench access pattern (paper Sec. III).
    pub fn read_plan_all(self) -> ReadPlan {
        let reads = match self {
            Layout::Unopt => scalar_reads(0, 28, &[0, 4, 8, 12, 16, 20, 24]),
            Layout::AoS => scalar_reads(0, 32, &[0, 4, 8, 12, 16, 20, 24]),
            Layout::SoA => (0..7)
                .map(|f| FieldRead {
                    buffer: f,
                    offset: 0,
                    words: 1,
                    stride: 4,
                })
                .collect(),
            Layout::AoaS => vec![
                FieldRead {
                    buffer: 0,
                    offset: 0,
                    words: 4,
                    stride: 32,
                },
                FieldRead {
                    buffer: 0,
                    offset: 16,
                    words: 4,
                    stride: 32,
                },
            ],
            Layout::SoAoaS => vec![
                FieldRead {
                    buffer: 0,
                    offset: 0,
                    words: 4,
                    stride: 16,
                },
                FieldRead {
                    buffer: 1,
                    offset: 0,
                    words: 4,
                    stride: 16,
                },
            ],
        };
        ReadPlan {
            layout: self,
            reads,
        }
    }

    /// The reads a thread issues to fetch **position + mass** of particle `i`
    /// — the force kernel's per-tile pattern. This is where the paper's
    /// access-frequency grouping pays: `SoAoaS` needs a single `float4`,
    /// while the ungrouped `AoaS` must pull both halves of the structure to
    /// reach the mass.
    pub fn read_plan_posmass(self) -> ReadPlan {
        let reads = match self {
            Layout::Unopt => scalar_reads(0, 28, &[0, 4, 8, 24]),
            Layout::AoS => scalar_reads(0, 32, &[0, 4, 8, 24]),
            Layout::SoA => vec![
                FieldRead {
                    buffer: 0,
                    offset: 0,
                    words: 1,
                    stride: 4,
                },
                FieldRead {
                    buffer: 1,
                    offset: 0,
                    words: 1,
                    stride: 4,
                },
                FieldRead {
                    buffer: 2,
                    offset: 0,
                    words: 1,
                    stride: 4,
                },
                FieldRead {
                    buffer: 6,
                    offset: 0,
                    words: 1,
                    stride: 4,
                },
            ],
            Layout::AoaS => vec![
                FieldRead {
                    buffer: 0,
                    offset: 0,
                    words: 4,
                    stride: 32,
                },
                FieldRead {
                    buffer: 0,
                    offset: 16,
                    words: 4,
                    stride: 32,
                },
            ],
            Layout::SoAoaS => vec![FieldRead {
                buffer: 0,
                offset: 0,
                words: 4,
                stride: 16,
            }],
        };
        ReadPlan {
            layout: self,
            reads,
        }
    }

    /// Where (buffer, byte offset within the particle's slot, word lane
    /// within the read) each of px/py/pz/mass lands when fetched via
    /// [`Layout::read_plan_posmass`] — used by kernel builders to pick the
    /// right destination registers.
    pub fn posmass_lanes(self) -> PosMassLanes {
        match self {
            // Scalar plans: reads arrive in order px, py, pz, mass.
            Layout::Unopt | Layout::AoS | Layout::SoA => PosMassLanes {
                px: (0, 0),
                py: (1, 0),
                pz: (2, 0),
                mass: (3, 0),
            },
            // AoaS: first float4 = (px,py,pz,vx), second = (vy,vz,mass,pad).
            Layout::AoaS => PosMassLanes {
                px: (0, 0),
                py: (0, 1),
                pz: (0, 2),
                mass: (1, 2),
            },
            // SoAoaS posmass float4 = (x,y,z,mass).
            Layout::SoAoaS => PosMassLanes {
                px: (0, 0),
                py: (0, 1),
                pz: (0, 2),
                mass: (0, 3),
            },
        }
    }
}

impl core::fmt::Display for Layout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which of the hot fields sits in which (read index, word lane) of the
/// posmass read plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosMassLanes {
    /// (read index, word index) of position x.
    pub px: (usize, usize),
    /// (read index, word index) of position y.
    pub py: (usize, usize),
    /// (read index, word index) of position z.
    pub pz: (usize, usize),
    /// (read index, word index) of mass.
    pub mass: (usize, usize),
}

fn scalar_reads(buffer: usize, stride: u32, offsets: &[u32]) -> Vec<FieldRead> {
    offsets
        .iter()
        .map(|&o| FieldRead {
            buffer,
            offset: o,
            words: 1,
            stride,
        })
        .collect()
}

/// The scalar fields, for naming SoA buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Field {
    Px,
    Py,
    Pz,
    Vx,
    Vy,
    Vz,
    Mass,
}

/// A device buffer a layout stores data in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferKind {
    /// Packed 28-byte records.
    Packed28,
    /// Aligned 32-byte records.
    Aligned32,
    /// One scalar array of the given field.
    ScalarArray(Field),
    /// Array of `{x,y,z,mass}` float4s.
    PosMass4,
    /// Array of `{vx,vy,vz,pad}` float4s.
    Velocity4,
}

impl BufferKind {
    /// Bytes per particle in this buffer.
    pub fn stride(self) -> u64 {
        match self {
            BufferKind::Packed28 => 28,
            BufferKind::Aligned32 => 32,
            BufferKind::ScalarArray(_) => 4,
            BufferKind::PosMass4 | BufferKind::Velocity4 => 16,
        }
    }
}

/// Where one word of the *old* record lands in a synthesized layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesizedField {
    /// Buffer index (kernel parameter order) in the old layout.
    pub old_buffer: usize,
    /// Byte offset of the word within the old record.
    pub old_offset: u32,
    /// Buffer index in the synthesized layout.
    pub buffer: usize,
    /// Byte offset within the synthesized record.
    pub offset: u32,
}

/// A layout *synthesized* by the static analyzer rather than drawn from the
/// fixed [`Layout`] menu: arbitrary per-buffer record strides plus a word
/// map from the old layout. Old words absent from `fields` are cold — the
/// synthesized layout drops them (the hot/cold split of Sec. IV).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesizedLayout {
    /// Synthesis tag, e.g. `soaoas-16`.
    pub tag: String,
    /// Bytes per element in each synthesized buffer.
    pub strides: Vec<u32>,
    /// Destination of every hot word of the old layout.
    pub fields: Vec<SynthesizedField>,
}

impl SynthesizedLayout {
    /// Build a synthesized layout; panics on malformed specs (empty, word
    /// out of its buffer's stride, or two words landing on the same slot).
    pub fn new(
        tag: impl Into<String>,
        strides: Vec<u32>,
        fields: Vec<SynthesizedField>,
    ) -> SynthesizedLayout {
        assert!(!strides.is_empty(), "synthesized layout with no buffers");
        assert!(
            strides.iter().all(|&s| s > 0 && s % 4 == 0),
            "strides must be positive word multiples"
        );
        for f in &fields {
            assert!(f.buffer < strides.len(), "field buffer out of range");
            assert!(
                f.offset + 4 <= strides[f.buffer],
                "field offset outside its record"
            );
        }
        let mut slots: Vec<(usize, u32)> = fields.iter().map(|f| (f.buffer, f.offset)).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), fields.len(), "two fields share a slot");
        SynthesizedLayout {
            tag: tag.into(),
            strides,
            fields,
        }
    }

    /// Bytes per element over all synthesized buffers.
    pub fn bytes_per_element(&self) -> u64 {
        self.strides.iter().map(|&s| s as u64).sum()
    }

    /// The per-thread read plan of the synthesized layout: one
    /// [`FieldRead`] per maximal run of contiguous mapped words in each
    /// buffer, vector-widened to 2 or 4 words where alignment allows —
    /// the same grouping rule the IR rewrite pass applies.
    pub fn reads(&self) -> Vec<FieldRead> {
        let mut words: Vec<(usize, u32)> =
            self.fields.iter().map(|f| (f.buffer, f.offset)).collect();
        words.sort_unstable();
        let mut out = Vec::new();
        let mut i = 0;
        while i < words.len() {
            let (buf, start) = words[i];
            let mut len = 1u32;
            while i + (len as usize) < words.len()
                && words[i + len as usize] == (buf, start + 4 * len)
            {
                len += 1;
            }
            let stride = self.strides[buf];
            let mut at = 0u32;
            while at < len {
                let mut w = 1u32;
                for cand in [4u32, 2] {
                    let off = start + 4 * at;
                    if len - at >= cand
                        && off.is_multiple_of(4 * cand)
                        && stride.is_multiple_of(4 * cand)
                    {
                        w = cand;
                        break;
                    }
                }
                out.push(FieldRead {
                    buffer: buf,
                    offset: start + 4 * at,
                    words: w,
                    stride,
                });
                at += w;
            }
            i += len as usize;
        }
        out
    }
}

/// One read a thread issues for its particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldRead {
    /// Index into the layout's buffer list.
    pub buffer: usize,
    /// Byte offset within the particle's slot in that buffer.
    pub offset: u32,
    /// Width in 32-bit words (1, 2 or 4).
    pub words: u32,
    /// Byte stride between consecutive particles in that buffer.
    pub stride: u32,
}

impl FieldRead {
    /// Byte address of this read for particle `i` in a buffer at `base`.
    pub fn address(&self, base: u64, i: u64) -> u64 {
        base + i * self.stride as u64 + self.offset as u64
    }
}

/// All reads a thread performs per particle under one layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadPlan {
    /// The layout this plan belongs to.
    pub layout: Layout,
    /// The reads, in issue order.
    pub reads: Vec<FieldRead>,
}

impl ReadPlan {
    /// Number of load instructions per particle.
    pub fn n_reads(&self) -> usize {
        self.reads.len()
    }

    /// Total 32-bit words fetched per particle.
    pub fn words(&self) -> u32 {
        self.reads.iter().map(|r| r.words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_posmass_tile_reads_as_one_float4() {
        // The synthesizer's soaoas-16 answer for the Gravit record: the four
        // hot words of the 28-byte record packed into one 16-byte tile.
        let l = SynthesizedLayout::new(
            "soaoas-16",
            vec![16],
            [0u32, 4, 8, 24]
                .iter()
                .enumerate()
                .map(|(i, &o)| SynthesizedField {
                    old_buffer: 0,
                    old_offset: o,
                    buffer: 0,
                    offset: 4 * i as u32,
                })
                .collect(),
        );
        assert_eq!(l.bytes_per_element(), 16);
        let reads = l.reads();
        assert_eq!(
            reads,
            vec![FieldRead {
                buffer: 0,
                offset: 0,
                words: 4,
                stride: 16
            }]
        );
    }

    #[test]
    fn synthesized_misaligned_words_stay_scalar() {
        // Three words at offsets 4..16 of a 16-byte record: 4 is not
        // 8-aligned, so the run splits scalar, vector2, scalar-free.
        let l = SynthesizedLayout::new(
            "tail",
            vec![16],
            (0..3)
                .map(|i| SynthesizedField {
                    old_buffer: 0,
                    old_offset: 4 * i,
                    buffer: 0,
                    offset: 4 + 4 * i,
                })
                .collect(),
        );
        let reads = l.reads();
        assert_eq!(reads.len(), 2);
        assert_eq!((reads[0].offset, reads[0].words), (4, 1));
        assert_eq!((reads[1].offset, reads[1].words), (8, 2));
    }

    #[test]
    #[should_panic]
    fn synthesized_slot_collision_rejected() {
        SynthesizedLayout::new(
            "bad",
            vec![8],
            vec![
                SynthesizedField {
                    old_buffer: 0,
                    old_offset: 0,
                    buffer: 0,
                    offset: 0,
                },
                SynthesizedField {
                    old_buffer: 0,
                    old_offset: 4,
                    buffer: 0,
                    offset: 0,
                },
            ],
        );
    }

    #[test]
    fn all_plans_fetch_seven_words() {
        for l in Layout::ALL {
            let p = l.read_plan_all();
            let words = p.words();
            match l {
                Layout::Unopt | Layout::AoS | Layout::SoA => assert_eq!(words, 7, "{l}"),
                // Vector plans fetch the hidden padding element too.
                Layout::AoaS | Layout::SoAoaS => assert_eq!(words, 8, "{l}"),
            }
        }
    }

    #[test]
    fn read_counts_match_the_paper_figures() {
        assert_eq!(Layout::Unopt.read_plan_all().n_reads(), 7); // Fig. 3
        assert_eq!(Layout::SoA.read_plan_all().n_reads(), 7); // Fig. 5
        assert_eq!(Layout::AoaS.read_plan_all().n_reads(), 2); // Fig. 7
        assert_eq!(Layout::SoAoaS.read_plan_all().n_reads(), 2); // Fig. 9
    }

    #[test]
    fn grouping_pays_in_the_posmass_plan() {
        // The Sec. II-D claim: frequency grouping halves the hot-path reads.
        assert_eq!(Layout::SoAoaS.read_plan_posmass().n_reads(), 1);
        assert_eq!(Layout::AoaS.read_plan_posmass().n_reads(), 2);
    }

    #[test]
    fn addresses_follow_stride_and_offset() {
        let r = FieldRead {
            buffer: 0,
            offset: 24,
            words: 1,
            stride: 28,
        };
        assert_eq!(r.address(1000, 0), 1024);
        assert_eq!(r.address(1000, 3), 1000 + 84 + 24);
    }

    #[test]
    fn buffer_lists_match_plan_indices() {
        for l in Layout::ALL {
            let bufs = l.buffers();
            for plan in [l.read_plan_all(), l.read_plan_posmass()] {
                for r in &plan.reads {
                    assert!(r.buffer < bufs.len(), "{l}: read references missing buffer");
                    assert_eq!(
                        bufs[r.buffer].stride(),
                        r.stride as u64,
                        "{l}: stride disagrees with buffer kind"
                    );
                }
            }
        }
    }

    #[test]
    fn vector_reads_are_aligned_within_slot() {
        for l in Layout::ALL {
            for plan in [l.read_plan_all(), l.read_plan_posmass()] {
                for r in &plan.reads {
                    let width = r.words * 4;
                    assert_eq!(r.offset % width, 0, "{l}: misaligned read in plan");
                    assert_eq!(r.stride % width, 0, "{l}: stride breaks alignment for i>0");
                }
            }
        }
    }

    #[test]
    fn posmass_lanes_point_at_real_words() {
        for l in Layout::ALL {
            let plan = l.read_plan_posmass();
            let lanes = l.posmass_lanes();
            for (ri, wi) in [lanes.px, lanes.py, lanes.pz, lanes.mass] {
                assert!(ri < plan.reads.len(), "{l}");
                assert!((wi as u32) < plan.reads[ri].words, "{l}");
            }
        }
    }
}

/// Which (read index, word lane) of [`Layout::read_plan_posvel`] holds each
/// integration field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosVelLanes {
    /// Position x/y/z.
    pub pos: [(usize, usize); 3],
    /// Velocity x/y/z.
    pub vel: [(usize, usize); 3],
}

impl Layout {
    /// The reads (and, reused with stores, writes) an **integration kernel**
    /// issues per particle: position and velocity, plus whatever padding or
    /// co-located fields the layout forces along (mass rides in the same
    /// vector for `AoaS`/`SoAoaS` and is written back unchanged).
    pub fn read_plan_posvel(self) -> ReadPlan {
        let reads = match self {
            Layout::Unopt => scalar_reads(0, 28, &[0, 4, 8, 12, 16, 20]),
            Layout::AoS => scalar_reads(0, 32, &[0, 4, 8, 12, 16, 20]),
            Layout::SoA => (0..6)
                .map(|f| FieldRead {
                    buffer: f,
                    offset: 0,
                    words: 1,
                    stride: 4,
                })
                .collect(),
            Layout::AoaS => vec![
                FieldRead {
                    buffer: 0,
                    offset: 0,
                    words: 4,
                    stride: 32,
                },
                FieldRead {
                    buffer: 0,
                    offset: 16,
                    words: 4,
                    stride: 32,
                },
            ],
            Layout::SoAoaS => vec![
                FieldRead {
                    buffer: 0,
                    offset: 0,
                    words: 4,
                    stride: 16,
                },
                FieldRead {
                    buffer: 1,
                    offset: 0,
                    words: 4,
                    stride: 16,
                },
            ],
        };
        ReadPlan {
            layout: self,
            reads,
        }
    }

    /// Lane mapping for [`Layout::read_plan_posvel`].
    pub fn posvel_lanes(self) -> PosVelLanes {
        match self {
            // Scalar plans read px,py,pz,vx,vy,vz in order.
            Layout::Unopt | Layout::AoS | Layout::SoA => PosVelLanes {
                pos: [(0, 0), (1, 0), (2, 0)],
                vel: [(3, 0), (4, 0), (5, 0)],
            },
            // AoaS: (px,py,pz,vx) then (vy,vz,mass,pad).
            Layout::AoaS => PosVelLanes {
                pos: [(0, 0), (0, 1), (0, 2)],
                vel: [(0, 3), (1, 0), (1, 1)],
            },
            // SoAoaS: (x,y,z,mass) then (vx,vy,vz,pad).
            Layout::SoAoaS => PosVelLanes {
                pos: [(0, 0), (0, 1), (0, 2)],
                vel: [(1, 0), (1, 1), (1, 2)],
            },
        }
    }
}

#[cfg(test)]
mod posvel_tests {
    use super::*;

    #[test]
    fn posvel_plans_cover_six_words_plus_ride_alongs() {
        for l in Layout::ALL {
            let p = l.read_plan_posvel();
            match l {
                Layout::Unopt | Layout::AoS | Layout::SoA => assert_eq!(p.words(), 6, "{l}"),
                Layout::AoaS | Layout::SoAoaS => assert_eq!(p.words(), 8, "{l}"),
            }
        }
    }

    #[test]
    fn posvel_lanes_index_real_words() {
        for l in Layout::ALL {
            let plan = l.read_plan_posvel();
            let lanes = l.posvel_lanes();
            for (ri, wi) in lanes.pos.iter().chain(lanes.vel.iter()) {
                assert!(*ri < plan.reads.len(), "{l}");
                assert!((*wi as u32) < plan.reads[*ri].words, "{l}");
            }
            // All six lanes distinct.
            let mut all: Vec<(usize, usize)> = lanes.pos.to_vec();
            all.extend_from_slice(&lanes.vel);
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), 6, "{l}: overlapping integration lanes");
        }
    }

    #[test]
    fn posvel_plan_buffers_and_strides_are_consistent() {
        for l in Layout::ALL {
            let bufs = l.buffers();
            for r in &l.read_plan_posvel().reads {
                assert!(r.buffer < bufs.len(), "{l}");
                assert_eq!(bufs[r.buffer].stride(), r.stride as u64, "{l}");
                assert_eq!(r.offset % (r.words * 4), 0, "{l}: misaligned");
            }
        }
    }
}
