//! # particle-layouts — the paper's memory layouts, as real layouts
//!
//! Section II of the paper walks the Gravit particle record (7 floats:
//! position, velocity, mass) through four global-memory organizations:
//!
//! | variant | layout | per-particle reads (all 7 floats) |
//! |---|---|---|
//! | `Unopt`  | packed 28-byte array of structures (original Gravit) | 7 scalar, non-coalesced |
//! | `AoS`    | 32-byte aligned array of structures, scalar access | 7 scalar, non-coalesced |
//! | `SoA`    | structure of arrays (7 scalar arrays) | 7 scalar, coalesced |
//! | `AoaS`   | array of 16-byte-aligned structures | 2 × 128-bit, non-coalesced |
//! | `SoAoaS` | **the contribution**: two arrays of 16-byte-aligned sub-structures, grouped by access frequency (`{x,y,z,mass}` hot / `{vx,vy,vz,pad}` cold) | 2 × 128-bit, coalesced |
//!
//! This crate provides each layout three ways, and they cannot drift apart
//! because the latter two are derived from the first:
//!
//! 1. **Host types** ([`host`]): `#[repr(C)]`/`#[repr(C, align(16))]` structs
//!    whose sizes and field offsets are checked by tests — these are the
//!    actual byte layouts, also usable for CPU-side cache experiments.
//! 2. **Read plans** ([`plan`]): a machine-readable description of which
//!    buffer, offset, stride and width each field read uses — consumed by the
//!    kernel builders and by the coalescing analysis (paper Figs. 3/5/7/9).
//! 3. **Device images** ([`device`]): serialization of a particle set into
//!    simulated global memory, padded to a block multiple with zero-mass
//!    sentinel particles (so kernels need no bounds `if`, as in GPU Gems).

#![warn(missing_docs)]

pub mod device;
pub mod host;
pub mod plan;
pub mod streams;

pub use device::DeviceImage;
pub use host::Particle;
pub use plan::{BufferKind, FieldRead, Layout, ReadPlan};
