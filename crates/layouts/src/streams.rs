//! Half-warp address streams and transaction analysis.
//!
//! Turns a [`ReadPlan`] into the exact per-lane address streams a half-warp
//! generates, and runs them through the [`gpu_sim::coalesce`] protocols.
//! This is the direct reproduction of the paper's Figures 3, 5, 7 and 9
//! (transaction diagrams) and the source of the per-layout transaction table
//! (bench binary `table_transactions`).

use crate::plan::{Layout, ReadPlan};
use gpu_sim::coalesce::{coalesce_half_warp, AccessWidth};
use gpu_sim::DriverModel;

/// The address stream of one read of the plan, for one half-warp where lane
/// `k` handles particle `first + k`.
pub fn half_warp_addresses(
    plan: &ReadPlan,
    bases: &[u64],
    read_idx: usize,
    first: u64,
) -> Vec<Option<u64>> {
    let r = plan.reads[read_idx];
    (0..16)
        .map(|k| Some(r.address(bases[r.buffer], first + k)))
        .collect()
}

/// Transaction analysis of one layout under one driver protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionAnalysis {
    /// Layout analyzed.
    pub layout: Layout,
    /// Driver protocol used.
    pub driver: DriverModel,
    /// Load instructions per particle fetch.
    pub reads: usize,
    /// DRAM transactions per half-warp per particle fetch.
    pub transactions: usize,
    /// Bus bytes per half-warp per particle fetch.
    pub bus_bytes: u64,
    /// Useful bytes (what the threads asked for).
    pub useful_bytes: u64,
    /// Whether every read coalesced under the strict rule.
    pub all_coalesced: bool,
}

impl TransactionAnalysis {
    /// Bus efficiency: useful bytes over transferred bytes.
    pub fn efficiency(&self) -> f64 {
        self.useful_bytes as f64 / self.bus_bytes as f64
    }
}

/// Analyze a full-record fetch (all seven floats) by a half-warp whose lane
/// `k` handles particle `k`, with buffers at synthetic 1 MiB-spaced aligned
/// bases.
pub fn analyze_layout(layout: Layout, driver: DriverModel) -> TransactionAnalysis {
    analyze_plan(&layout.read_plan_all(), driver)
}

/// As [`analyze_layout`] but for an arbitrary plan (e.g. the posmass plan).
pub fn analyze_plan(plan: &ReadPlan, driver: DriverModel) -> TransactionAnalysis {
    let bases: Vec<u64> = (0..plan.layout.buffers().len())
        .map(|b| (b as u64 + 1) << 20)
        .collect();
    let mut transactions = 0usize;
    let mut bus_bytes = 0u64;
    let mut useful = 0u64;
    let mut all_coalesced = true;
    for (ri, r) in plan.reads.iter().enumerate() {
        let addrs = half_warp_addresses(plan, &bases, ri, 0);
        let width = AccessWidth::from_bytes(r.words * 4).expect("plan width");
        let res = coalesce_half_warp(driver, &addrs, width);
        transactions += res.count();
        bus_bytes += res.total_bytes();
        useful += 16 * width.bytes();
        all_coalesced &= res.coalesced;
    }
    TransactionAnalysis {
        layout: plan.layout,
        driver,
        reads: plan.reads.len(),
        transactions,
        bus_bytes,
        useful_bytes: useful,
        all_coalesced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline counts the paper's Figures 3/5/7/9 illustrate, under the
    /// CC-1.0 protocol the figures assume.
    #[test]
    fn paper_figure_transaction_counts() {
        let t = |l: Layout| analyze_layout(l, DriverModel::Cuda10);

        let unopt = t(Layout::Unopt); // Fig. 3
        assert_eq!(unopt.reads, 7);
        assert_eq!(unopt.transactions, 7 * 16);
        assert!(!unopt.all_coalesced);

        let soa = t(Layout::SoA); // Fig. 5
        assert_eq!(soa.reads, 7);
        assert_eq!(soa.transactions, 7);
        assert!(soa.all_coalesced);

        let aoas = t(Layout::AoaS); // Fig. 7
        assert_eq!(aoas.reads, 2);
        assert_eq!(aoas.transactions, 2 * 16);
        assert!(!aoas.all_coalesced);

        let soaoas = t(Layout::SoAoaS); // Fig. 9
        assert_eq!(soaoas.reads, 2);
        assert_eq!(
            soaoas.transactions, 4,
            "two coalesced float4 reads = 2×2 128B transactions"
        );
        assert!(soaoas.all_coalesced);
    }

    #[test]
    fn soaoas_has_best_bus_efficiency_among_vector_layouts() {
        let aoas = analyze_layout(Layout::AoaS, DriverModel::Cuda10);
        let soaoas = analyze_layout(Layout::SoAoaS, DriverModel::Cuda10);
        assert!(soaoas.efficiency() > aoas.efficiency());
        assert!(
            (soaoas.efficiency() - 1.0).abs() < 1e-12,
            "SoAoaS wastes no bus bytes"
        );
    }

    #[test]
    fn cuda22_softens_the_unopt_penalty() {
        let strict = analyze_layout(Layout::Unopt, DriverModel::Cuda10);
        let seg = analyze_layout(Layout::Unopt, DriverModel::Cuda22);
        assert!(seg.transactions < strict.transactions);
        assert!(seg.bus_bytes <= strict.bus_bytes);
    }

    #[test]
    fn posmass_plan_rewards_grouping() {
        // The force kernel's hot fetch: SoAoaS moves half the bus bytes AoaS
        // does, because mass lives with position.
        let aoas = analyze_plan(&Layout::AoaS.read_plan_posmass(), DriverModel::Cuda10);
        let soaoas = analyze_plan(&Layout::SoAoaS.read_plan_posmass(), DriverModel::Cuda10);
        assert!(soaoas.bus_bytes * 2 <= aoas.bus_bytes);
        assert_eq!(soaoas.transactions, 2);
    }

    #[test]
    fn streams_respect_first_particle_offset() {
        let plan = Layout::SoAoaS.read_plan_all();
        let bases = vec![0u64, 1 << 20];
        let a0 = half_warp_addresses(&plan, &bases, 0, 0);
        let a1 = half_warp_addresses(&plan, &bases, 0, 16);
        assert_eq!(a1[0].unwrap() - a0[0].unwrap(), 16 * 16);
    }
}
