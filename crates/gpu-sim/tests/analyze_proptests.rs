//! The load-bearing property of the static analyzer: for kernels whose
//! addresses are affine in `tid`/`ctaid`/a loop counter — the entire space
//! the paper's layouts live in — the static transaction prediction equals
//! the dynamic coalescer's measurement **exactly**, under every driver
//! model.

use gpu_sim::analyze::{analyze_kernel, AnalysisConfig};
use gpu_sim::exec::timed::time_grid;
use gpu_sim::ir::{Kernel, KernelBuilder, MemSpace, Operand};
use gpu_sim::mem::GlobalMemory;
use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
use proptest::prelude::*;

/// One random affine access site: element index
/// `e = c0 + c1·tid + c2·ctaid (+ c3·i inside the loop)`, byte address
/// `e·(4·width) + buf` — always width-aligned because the buffer base is
/// 256-aligned.
#[derive(Debug, Clone)]
struct Site {
    store: bool,
    width: u32,
    c0: u32,
    c1: u32,
    c2: u32,
    c3: u32,
}

fn site_strategy() -> impl Strategy<Value = Site> {
    (
        any::<bool>(),
        prop_oneof![Just(1u32), Just(2u32), Just(4u32)],
        0u32..64,
        prop_oneof![Just(0u32), Just(1u32), Just(2u32), Just(4u32), Just(7u32)],
        0u32..4,
        0u32..8,
    )
        .prop_map(|(store, width, c0, c1, c2, c3)| Site {
            store,
            width,
            c0,
            c1,
            c2,
            c3,
        })
}

#[derive(Debug, Clone)]
struct Case {
    sites: Vec<Site>,
    /// Loop trip count; 0 = straight-line kernel (no `c3` term).
    iters: u32,
    /// Only lanes with `tid < guard` access memory; `None` = unguarded.
    guard: Option<u32>,
    grid: u32,
    block: u32,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(site_strategy(), 1..4),
        0u32..4,
        prop_oneof![
            Just(None),
            Just(Some(8u32)),
            Just(Some(16u32)),
            Just(Some(24u32)),
            Just(Some(48u32))
        ],
        1u32..3,
        prop_oneof![Just(32u32), Just(64u32)],
    )
        .prop_map(|(sites, iters, guard, grid, block)| Case {
            sites,
            iters,
            guard,
            grid,
            block,
        })
}

fn build_case_kernel(case: &Case) -> Kernel {
    let mut b = KernelBuilder::new("affine_case");
    let buf = b.param();
    let tid = b.special(gpu_sim::ir::SpecialReg::TidX);
    let ctaid = b.special(gpu_sim::ir::SpecialReg::CtaidX);
    let val = b.mov(Operand::ImmF(1.5));

    let emit_sites = |b: &mut KernelBuilder, loop_var: Option<gpu_sim::ir::Reg>| {
        for s in &case.sites {
            // e = c0 + c1·tid + c2·ctaid (+ c3·i)
            let mut e = b.mad_u(tid.into(), Operand::ImmU(s.c1), Operand::ImmU(s.c0));
            e = b.mad_u(ctaid.into(), Operand::ImmU(s.c2), e.into());
            if let Some(i) = loop_var {
                e = b.mad_u(i.into(), Operand::ImmU(s.c3), e.into());
            }
            let addr = b.mad_u(e.into(), Operand::ImmU(4 * s.width), buf.into());
            if s.store {
                let srcs = (0..s.width).map(|_| val.into()).collect();
                b.st(MemSpace::Global, addr, 0, srcs);
            } else {
                let _ = b.ld(MemSpace::Global, addr, 0, s.width as usize);
            }
        }
    };

    let body = |b: &mut KernelBuilder| {
        if case.iters > 0 {
            b.for_loop(Operand::ImmU(0), Operand::ImmU(case.iters), 1, |b, i| {
                emit_sites(b, Some(i));
            });
        } else {
            emit_sites(b, None);
        }
    };

    match case.guard {
        Some(t) => {
            let p = b.setp(gpu_sim::ir::CmpOp::ULt, tid.into(), Operand::ImmU(t));
            b.if_then(p, body);
        }
        None => body(&mut b),
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Static `predicted_transactions` == dynamic `TimedRun::transactions`,
    /// exactly, for every driver model.
    #[test]
    fn static_prediction_equals_dynamic_measurement(case in case_strategy()) {
        let kernel = build_case_kernel(&case);
        let dev = DeviceConfig::g8800gtx();
        for driver in DriverModel::ALL {
            // Fresh memory per run: stores mutate data, never structure.
            let mut gmem = GlobalMemory::new(1 << 20);
            // alloc_zeroed: the redzone sanitizer faults loads of
            // never-written memory, and random sites read anywhere.
            let buf = gmem.alloc_zeroed(1 << 17).expect("arena");
            let params = vec![buf.0 as u32];

            let cfg = AnalysisConfig::new(case.grid, case.block, params.clone())
                .with_driver(driver);
            let report = analyze_kernel(&kernel, &cfg);
            prop_assert!(report.exact, "affine kernel must analyze exactly: {:?}", report.diagnostics);
            prop_assert!(
                !report.has_errors() || report.diagnostics.iter().any(|d| d.kind == gpu_sim::LintKind::UncoalescedAccess),
                "only coalescing findings expected: {:?}", report.diagnostics
            );

            let tp = TimingParams::for_driver(driver);
            let timed = time_grid(
                &kernel, case.grid, case.block, 1, &params, &mut gmem, &dev, driver, &tp,
            ).expect("dynamic run");
            prop_assert_eq!(
                report.predicted_transactions, timed.transactions,
                "driver {}: static prediction diverged from the coalescer", driver
            );
        }
    }
}
