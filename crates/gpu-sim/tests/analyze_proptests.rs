//! The load-bearing property of the static analyzer: for kernels whose
//! addresses are affine in `tid`/`ctaid`/a loop counter — the entire space
//! the paper's layouts live in — the static transaction prediction equals
//! the dynamic coalescer's measurement **exactly**, under every driver
//! model.

use gpu_sim::analyze::{analyze_kernel, AnalysisConfig, BufferExtent};
use gpu_sim::exec::timed::time_grid;
use gpu_sim::ir::{AluOp, CmpOp, Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};
use gpu_sim::mem::GlobalMemory;
use gpu_sim::{DeviceConfig, DriverModel, TimingParams};
use proptest::prelude::*;

/// One random affine access site: element index
/// `e = c0 + c1·tid + c2·ctaid (+ c3·i inside the loop)`, byte address
/// `e·(4·width) + buf` — always width-aligned because the buffer base is
/// 256-aligned.
#[derive(Debug, Clone)]
struct Site {
    store: bool,
    width: u32,
    c0: u32,
    c1: u32,
    c2: u32,
    c3: u32,
}

fn site_strategy() -> impl Strategy<Value = Site> {
    (
        any::<bool>(),
        prop_oneof![Just(1u32), Just(2u32), Just(4u32)],
        0u32..64,
        prop_oneof![Just(0u32), Just(1u32), Just(2u32), Just(4u32), Just(7u32)],
        0u32..4,
        0u32..8,
    )
        .prop_map(|(store, width, c0, c1, c2, c3)| Site {
            store,
            width,
            c0,
            c1,
            c2,
            c3,
        })
}

#[derive(Debug, Clone)]
struct Case {
    sites: Vec<Site>,
    /// Loop trip count; 0 = straight-line kernel (no `c3` term).
    iters: u32,
    /// Only lanes with `tid < guard` access memory; `None` = unguarded.
    guard: Option<u32>,
    grid: u32,
    block: u32,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(site_strategy(), 1..4),
        0u32..4,
        prop_oneof![
            Just(None),
            Just(Some(8u32)),
            Just(Some(16u32)),
            Just(Some(24u32)),
            Just(Some(48u32))
        ],
        1u32..3,
        prop_oneof![Just(32u32), Just(64u32)],
    )
        .prop_map(|(sites, iters, guard, grid, block)| Case {
            sites,
            iters,
            guard,
            grid,
            block,
        })
}

fn build_case_kernel(case: &Case) -> Kernel {
    let mut b = KernelBuilder::new("affine_case");
    let buf = b.param();
    let tid = b.special(gpu_sim::ir::SpecialReg::TidX);
    let ctaid = b.special(gpu_sim::ir::SpecialReg::CtaidX);
    let val = b.mov(Operand::ImmF(1.5));

    let emit_sites = |b: &mut KernelBuilder, loop_var: Option<gpu_sim::ir::Reg>| {
        for s in &case.sites {
            // e = c0 + c1·tid + c2·ctaid (+ c3·i)
            let mut e = b.mad_u(tid.into(), Operand::ImmU(s.c1), Operand::ImmU(s.c0));
            e = b.mad_u(ctaid.into(), Operand::ImmU(s.c2), e.into());
            if let Some(i) = loop_var {
                e = b.mad_u(i.into(), Operand::ImmU(s.c3), e.into());
            }
            let addr = b.mad_u(e.into(), Operand::ImmU(4 * s.width), buf.into());
            if s.store {
                let srcs = (0..s.width).map(|_| val.into()).collect();
                b.st(MemSpace::Global, addr, 0, srcs);
            } else {
                let _ = b.ld(MemSpace::Global, addr, 0, s.width as usize);
            }
        }
    };

    let body = |b: &mut KernelBuilder| {
        if case.iters > 0 {
            b.for_loop(Operand::ImmU(0), Operand::ImmU(case.iters), 1, |b, i| {
                emit_sites(b, Some(i));
            });
        } else {
            emit_sites(b, None);
        }
    };

    match case.guard {
        Some(t) => {
            let p = b.setp(gpu_sim::ir::CmpOp::ULt, tid.into(), Operand::ImmU(t));
            b.if_then(p, body);
        }
        None => body(&mut b),
    }
    b.finish()
}

/// One random *bounded data-dependent* kernel, the fragment the interval
/// domain exists for. The trip count is loaded from `data[0]` — invisible to
/// the analyzer, concrete to the executor — clamped to `budget` with `IMin`,
/// and drives a `do_while`. Store addresses are masked (`i & mask`) plus an
/// affine `tid` term, so the static footprint is an honest interval while the
/// dynamic footprint depends on the loaded count.
#[derive(Debug, Clone)]
struct BoundedCase {
    /// Value uploaded to `data[0]`; dynamic trips are `max(min(trips, budget), 1)`.
    trips: u32,
    /// `IMin` clamp and the analyzer's `with_trip_budget`.
    budget: u32,
    /// Store element index is `(i & mask) + c1·tid`.
    mask: u32,
    c1: u32,
    /// Also emit a masked data load inside the loop.
    with_load: bool,
    grid: u32,
    block: u32,
}

fn bounded_case_strategy() -> impl Strategy<Value = BoundedCase> {
    (
        (1u32..13, any::<u32>()),
        prop_oneof![Just(3u32), Just(7u32), Just(15u32)],
        0u32..3,
        any::<bool>(),
        1u32..3,
        prop_oneof![Just(32u32), Just(64u32)],
    )
        .prop_map(
            |((budget, seed), mask, c1, with_load, grid, block)| BoundedCase {
                // The actual count never exceeds the declared budget.
                trips: seed % (budget + 1),
                budget,
                mask,
                c1,
                with_load,
                grid,
                block,
            },
        )
}

fn build_bounded_kernel(case: &BoundedCase) -> Kernel {
    let mut b = KernelBuilder::new("bounded_case");
    let data = b.param();
    let out = b.param();
    let tid = b.special(SpecialReg::TidX);
    let val = b.mov(Operand::ImmF(2.0));
    // n = data[0]: data-dependent, so the analyzer must fall back to the
    // interval fragment from here on.
    let n = b.ld(MemSpace::Global, data, 0, 1)[0];
    let nc = b.alu(AluOp::IMin, n.into(), Operand::ImmU(case.budget));
    let i = b.mov(Operand::ImmU(0));
    b.do_while(|b| {
        let m = b.alu(AluOp::IAnd, i.into(), Operand::ImmU(case.mask));
        let e = b.mad_u(tid.into(), Operand::ImmU(case.c1), m.into());
        let addr = b.mad_u(e.into(), Operand::ImmU(4), out.into());
        b.st(MemSpace::Global, addr, 0, vec![val.into()]);
        if case.with_load {
            let lm = b.alu(AluOp::IAnd, i.into(), Operand::ImmU(7));
            let la = b.mad_u(lm.into(), Operand::ImmU(4), data.into());
            let _ = b.ld(MemSpace::Global, la, 4, 1); // data[1 + (i & 7)]
        }
        b.alu_into(i, AluOp::IAdd, i.into(), Operand::ImmU(1));
        b.setp(CmpOp::ULt, i.into(), nc.into())
    });
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Static `predicted_transactions` == dynamic `TimedRun::transactions`,
    /// exactly, for every driver model.
    #[test]
    fn static_prediction_equals_dynamic_measurement(case in case_strategy()) {
        let kernel = build_case_kernel(&case);
        let dev = DeviceConfig::g8800gtx();
        for driver in DriverModel::ALL {
            // Fresh memory per run: stores mutate data, never structure.
            let mut gmem = GlobalMemory::new(1 << 20);
            // alloc_zeroed: the redzone sanitizer faults loads of
            // never-written memory, and random sites read anywhere.
            let buf = gmem.alloc_zeroed(1 << 17).expect("arena");
            let params = vec![buf.0 as u32];

            let cfg = AnalysisConfig::new(case.grid, case.block, params.clone())
                .with_driver(driver);
            let report = analyze_kernel(&kernel, &cfg);
            prop_assert!(report.exact, "affine kernel must analyze exactly: {:?}", report.diagnostics);
            prop_assert!(
                !report.has_errors() || report.diagnostics.iter().any(|d| d.kind == gpu_sim::LintKind::UncoalescedAccess),
                "only coalescing findings expected: {:?}", report.diagnostics
            );

            let tp = TimingParams::for_driver(driver);
            let timed = time_grid(
                &kernel, case.grid, case.block, 1, &params, &mut gmem, &dev, driver, &tp,
            ).expect("dynamic run");
            prop_assert_eq!(
                report.predicted_transactions, timed.transactions,
                "driver {}: static prediction diverged from the coalescer", driver
            );
            prop_assert_eq!(
                report.transaction_bounds,
                (report.predicted_transactions, report.predicted_transactions),
                "exact reports must carry a degenerate transaction interval"
            );
        }
    }

    /// The interval fragment's soundness, end to end: on random bounded
    /// data-dependent loops, the static transaction interval encloses the
    /// dynamic coalescer's measurement, and every byte the executor verifiably
    /// wrote lies inside some store site's static address interval. Observed
    /// store addresses come from the memory system itself: `out` is allocated
    /// *uninitialized*, so after the run exactly the written words are
    /// downloadable and everything else is still poison.
    #[test]
    fn interval_bounds_enclose_dynamic_observations(case in bounded_case_strategy()) {
        let kernel = build_bounded_kernel(&case);
        let dev = DeviceConfig::g8800gtx();
        let out_len = u64::from(4 * (case.mask + case.c1 * (case.block - 1) + 1));
        for driver in DriverModel::ALL {
            let mut gmem = GlobalMemory::new(1 << 20);
            let data = gmem.alloc_zeroed(64).expect("data arena");
            gmem.store_u32(data.addr(), case.trips).expect("trip count");
            let out = gmem.alloc(out_len).expect("out arena");
            let params = vec![data.addr() as u32, out.addr() as u32];

            let cfg = AnalysisConfig::new(case.grid, case.block, params.clone())
                .with_driver(driver)
                .with_trip_budget(u64::from(case.budget))
                .with_buffers(vec![
                    BufferExtent { base: data.addr(), len: 64 },
                    BufferExtent { base: out.addr(), len: out_len },
                ]);
            let report = analyze_kernel(&kernel, &cfg);
            prop_assert!(!report.exact, "a loaded trip count must leave the affine fragment");
            prop_assert!(
                !report.diagnostics.iter().any(|d| d.kind == gpu_sim::LintKind::PossibleOutOfBounds),
                "masked addresses fit the declared extents; certifier disagreed: {:?}",
                report.diagnostics
            );
            // The uniform `data[0]` broadcast load is legitimately uncoalesced
            // on G80; nothing else may reach error severity.
            prop_assert!(
                !report.has_errors()
                    || report.diagnostics.iter().all(|d|
                        d.severity != gpu_sim::Severity::Error
                            || d.kind == gpu_sim::LintKind::UncoalescedAccess),
                "unexpected errors: {:?}", report.diagnostics
            );

            let tp = TimingParams::for_driver(driver);
            let timed = time_grid(
                &kernel, case.grid, case.block, 1, &params, &mut gmem, &dev, driver, &tp,
            ).expect("dynamic run");
            let (lo, hi) = report.transaction_bounds;
            prop_assert!(
                lo <= timed.transactions && timed.transactions <= hi,
                "driver {}: dynamic {} transactions escape the static interval [{}, {}]",
                driver, timed.transactions, lo, hi
            );

            // Every store site must carry a finite interval footprint.
            let hulls: Vec<(u64, u64)> = report
                .accesses
                .iter()
                .filter(|s| s.space == MemSpace::Global && !s.is_load)
                .map(|s| s.addr_range.expect("masked store must have bounded addresses"))
                .collect();
            prop_assert!(!hulls.is_empty(), "the loop stores every trip");

            // Word-probe the output buffer: downloadable == written.
            let mut observed = 0usize;
            for w in 0..(out_len / 4) {
                let addr = out.addr() + 4 * w;
                if gmem.download(out.offset(4 * w), 4).is_ok() {
                    observed += 1;
                    prop_assert!(
                        hulls.iter().any(|&(lo, hi)| lo <= addr && addr + 4 <= hi),
                        "written word at {addr:#x} escapes every static store hull {hulls:?}"
                    );
                }
            }
            // tid 0 stores word `(i & mask)`, so word 0 is written on trip 0.
            prop_assert!(observed > 0, "a do_while kernel writes at least once");
        }
    }
}
