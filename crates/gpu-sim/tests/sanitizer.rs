//! Device-fault sanitizer acceptance tests.
//!
//! Every fault class in [`gpu_sim::fault::FaultKind`] gets a fault-injection
//! (or naturally-faulting) test that asserts both the classification and the
//! exact fault coordinates — kernel, block, thread — the way
//! `compute-sanitizer` attributes faults on real CUDA. Property tests then
//! drive random coordinates and addresses through the injection harness to
//! show attribution is exact everywhere, and a regression test proves the
//! paper's mis-padded 28-byte AoS particle faults loudly instead of
//! returning silently wrong accelerations.

use gpu_sim::exec::functional::{run_grid, run_grid_injected, MAX_BLOCK};
use gpu_sim::fault::{DeviceError, FaultKind, FaultPlan, Mutation};
use gpu_sim::ir::{Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};
use gpu_sim::mem::GlobalMemory;
use proptest::prelude::*;

/// `out[tid] = in[tid]` over one block: a 4-byte load and store per thread.
fn copy_kernel() -> Kernel {
    let mut b = KernelBuilder::new("san_copy");
    let input = b.param();
    let out = b.param();
    let tid = b.special(SpecialReg::TidX);
    let src = b.mad_u(tid.into(), Operand::ImmU(4), input.into());
    let v = b.ld(MemSpace::Global, src, 0, 1)[0];
    let dst = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, dst, 0, vec![v.into()]);
    b.finish()
}

/// Multi-block variant: `out[gtid] = in[gtid]`.
fn grid_copy_kernel() -> Kernel {
    let mut b = KernelBuilder::new("san_grid_copy");
    let input = b.param();
    let out = b.param();
    let gtid = b.global_thread_index();
    let src = b.mad_u(gtid.into(), Operand::ImmU(4), input.into());
    let v = b.ld(MemSpace::Global, src, 0, 1)[0];
    let dst = b.mad_u(gtid.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, dst, 0, vec![v.into()]);
    b.finish()
}

/// Memory with `threads` initialized input floats and a zeroed output buffer.
fn setup(threads: u32) -> (GlobalMemory, u32, u32) {
    let mut gmem = GlobalMemory::new(1 << 20);
    let data: Vec<f32> = (0..threads).map(|i| i as f32).collect();
    let d = gmem.alloc_f32(&data).expect("input fits");
    let out = gmem.alloc_zeroed(threads as u64 * 4).expect("output fits");
    (gmem, d.0 as u32, out.0 as u32)
}

fn fault(r: Result<gpu_sim::exec::functional::FunctionalRun, DeviceError>) -> DeviceError {
    r.expect_err("the sanitizer must detect the fault")
}

#[test]
fn injected_oob_is_detected_with_exact_coordinates() {
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    let far = 1u64 << 30; // 4-aligned and far outside the 1 MiB space
    let plan = FaultPlan::at_thread(0, 13, Mutation::SetAddr(far));
    let e = fault(run_grid_injected(&k, 1, 32, &[d, out], &mut gmem, &plan));
    match e.kind {
        FaultKind::OutOfBounds {
            space,
            addr,
            width,
            limit,
            redzone,
        } => {
            assert_eq!(space, MemSpace::Global);
            assert_eq!(addr, far);
            assert_eq!(width, 4);
            assert_eq!(limit, 1 << 20);
            assert!(!redzone, "an address beyond capacity is not a redzone hit");
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
    assert_eq!(e.site.kernel.as_deref(), Some("san_copy"));
    assert_eq!(e.site.block, Some(0));
    assert_eq!(e.site.thread, Some(13));
    assert!(
        e.site.instruction.is_some(),
        "faulting instruction must be recorded"
    );
}

#[test]
fn injected_misalignment_wins_over_out_of_bounds() {
    // A far AND misaligned address must classify as Misaligned: the
    // alignment pre-check fires before any byte is dereferenced, exactly
    // like the hardware raising a misaligned-address exception.
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    let bad = (1u64 << 30) + 2;
    let plan = FaultPlan::at_thread(0, 7, Mutation::SetAddr(bad));
    let e = fault(run_grid_injected(&k, 1, 32, &[d, out], &mut gmem, &plan));
    match e.kind {
        FaultKind::Misaligned { space, addr, width } => {
            assert_eq!(space, MemSpace::Global);
            assert_eq!(addr, bad);
            assert_eq!(width, 4);
        }
        other => panic!("expected Misaligned, got {other:?}"),
    }
    assert_eq!(e.site.block, Some(0));
    assert_eq!(e.site.thread, Some(7));
}

#[test]
fn one_past_the_end_lands_in_the_redzone() {
    // Thread 31 is nudged 4 bytes forward: one element past the input
    // buffer, into the guard band before the output buffer. The report must
    // say "redzone" — the signature of an off-by-one stride bug.
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    let plan = FaultPlan::at_thread(0, 31, Mutation::AddrDelta(4));
    let e = fault(run_grid_injected(&k, 1, 32, &[d, out], &mut gmem, &plan));
    match e.kind {
        FaultKind::OutOfBounds { addr, redzone, .. } => {
            assert_eq!(addr, d as u64 + 32 * 4);
            assert!(
                redzone,
                "one-past-the-end must be attributed to the guard band"
            );
        }
        other => panic!("expected a redzone OutOfBounds, got {other:?}"),
    }
    assert_eq!(e.site.thread, Some(31));
}

#[test]
fn reading_never_written_memory_is_an_uninitialized_read() {
    // `alloc` poison-fills; no injection needed — the first thread to load
    // the buffer faults.
    let k = copy_kernel();
    let mut gmem = GlobalMemory::new(1 << 20);
    let d = gmem.alloc(32 * 4).expect("fits"); // allocated, never written
    let out = gmem.alloc_zeroed(32 * 4).expect("fits");
    let e = fault(run_grid(&k, 1, 32, &[d.0 as u32, out.0 as u32], &mut gmem));
    match e.kind {
        FaultKind::UninitializedRead { addr, width } => {
            assert_eq!(addr, d.0);
            assert_eq!(width, 4);
        }
        other => panic!("expected UninitializedRead, got {other:?}"),
    }
    assert_eq!(e.site.block, Some(0));
    assert_eq!(
        e.site.thread,
        Some(0),
        "thread 0 reads the first poisoned word"
    );
}

#[test]
fn allocator_exhaustion_is_a_typed_host_side_fault() {
    let mut gmem = GlobalMemory::new(4096);
    let e = gmem.alloc(1 << 20).expect_err("cannot fit 1 MiB in 4 KiB");
    match e.kind {
        FaultKind::OutOfMemory {
            requested,
            capacity,
            ..
        } => {
            assert_eq!(requested, 1 << 20);
            assert_eq!(capacity, 4096);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
    // Host-side API fault: no device coordinates to attribute.
    assert_eq!(e.site.block, None);
    assert_eq!(e.site.thread, None);
    assert!(e.report().contains("OutOfMemory"));
}

#[test]
fn bad_launch_geometry_is_rejected_before_execution() {
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);

    let e = fault(run_grid(&k, 0, 32, &[d, out], &mut gmem));
    assert!(
        matches!(e.kind, FaultKind::BadLaunch { .. }),
        "empty grid: {e:?}"
    );
    assert_eq!(e.site.kernel.as_deref(), Some("san_copy"));

    let e = fault(run_grid(&k, 1, MAX_BLOCK + 1, &[d, out], &mut gmem));
    match &e.kind {
        FaultKind::BadLaunch { reason } => assert!(reason.contains("block size")),
        other => panic!("expected BadLaunch, got {other:?}"),
    }
}

#[test]
fn parameter_count_mismatch_is_a_bad_launch() {
    let k = copy_kernel();
    let (mut gmem, d, _out) = setup(32);
    let e = fault(run_grid(&k, 1, 32, &[d], &mut gmem)); // kernel wants 2 params
    match &e.kind {
        FaultKind::BadLaunch { reason } => {
            assert!(reason.contains("2 parameters"), "reason: {reason}");
            assert!(reason.contains("passed 1"), "reason: {reason}");
        }
        other => panic!("expected BadLaunch, got {other:?}"),
    }
    assert_eq!(e.site.kernel.as_deref(), Some("san_copy"));
}

#[test]
fn storing_to_texture_memory_is_a_read_only_write() {
    let mut b = KernelBuilder::new("san_tex_store");
    let out = b.param();
    let tid = b.special(SpecialReg::TidX);
    let dst = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Texture, dst, 0, vec![Operand::ImmF(1.0)]);
    let k = b.finish();

    let mut gmem = GlobalMemory::new(1 << 16);
    let out = gmem.alloc_zeroed(128).expect("fits");
    let e = fault(run_grid(&k, 1, 8, &[out.0 as u32], &mut gmem));
    match e.kind {
        FaultKind::ReadOnlyWrite { space, .. } => assert_eq!(space, MemSpace::Texture),
        other => panic!("expected ReadOnlyWrite, got {other:?}"),
    }
    assert_eq!(e.site.thread, Some(0));
}

/// The paper's regression: Gravit's particle struct is 28 bytes
/// (float4 pos+mass is the fix; the unpadded AoS record is 7 floats). A
/// float4 vector load over a 28-byte stride is misaligned for every thread
/// whose record does not happen to start on a 16-byte boundary. On real
/// hardware pre-padding this either faulted or silently produced garbage —
/// here it must be a typed Misaligned fault at thread 1, never wrong
/// accelerations.
#[test]
fn mispadded_28_byte_aos_faults_instead_of_returning_wrong_physics() {
    let mut b = KernelBuilder::new("san_aos28");
    let particles = b.param();
    let out = b.param();
    let tid = b.special(SpecialReg::TidX);
    let rec = b.mad_u(tid.into(), Operand::ImmU(28), particles.into());
    let pos = b.ld(MemSpace::Global, rec, 0, 4); // float4 load of pos+mass
    let dst = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, dst, 0, vec![pos[3].into()]);
    let k = b.finish();

    let mut gmem = GlobalMemory::new(1 << 20);
    let n = 32u32;
    let data: Vec<f32> = (0..n * 7).map(|i| i as f32).collect();
    let d = gmem.alloc_f32(&data).expect("fits");
    let out = gmem.alloc_zeroed(n as u64 * 4).expect("fits");
    let e = fault(run_grid(&k, 1, n, &[d.0 as u32, out.0 as u32], &mut gmem));
    match e.kind {
        FaultKind::Misaligned { space, addr, width } => {
            assert_eq!(space, MemSpace::Global);
            assert_eq!(
                width, 16,
                "the whole float4 access is checked, not its words"
            );
            assert_eq!(
                addr,
                d.0 + 28,
                "thread 1's record starts 28 B in — not 16-B aligned"
            );
        }
        other => panic!("expected Misaligned, got {other:?}"),
    }
    assert_eq!(
        e.site.thread,
        Some(1),
        "thread 0's record is aligned; thread 1 faults first"
    );
    assert_eq!(e.site.kernel.as_deref(), Some("san_aos28"));
}

#[test]
fn healthy_injection_free_run_still_computes() {
    // Control: the same kernel with an empty plan completes and copies.
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    run_grid_injected(&k, 1, 32, &[d, out], &mut gmem, &FaultPlan::default())
        .expect("no faults injected");
    let vals = gmem
        .read_f32(gpu_sim::mem::DevicePtr(out as u64), 32)
        .expect("written");
    assert_eq!(vals, (0..32).map(|i| i as f32).collect::<Vec<_>>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A random (block, thread) struck with a random far out-of-bounds
    /// address is always detected AND attributed to exactly that thread.
    #[test]
    fn random_oob_injection_attributes_the_exact_thread(
        block in 0u32..4,
        thread in 0u32..64,
        slot in 0u64..1_000_000,
    ) {
        let k = grid_copy_kernel();
        let mut gmem = GlobalMemory::new(1 << 20);
        let n = 4 * 64;
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let d = gmem.alloc_f32(&data).expect("fits");
        let out = gmem.alloc_zeroed(n as u64 * 4).expect("fits");
        let far = (1u64 << 20) + slot * 4; // 4-aligned, at/after capacity
        let plan = FaultPlan::at_thread(block, thread, Mutation::SetAddr(far));
        let e = fault(run_grid_injected(&k, 4, 64, &[d.0 as u32, out.0 as u32], &mut gmem, &plan));
        prop_assert!(
            matches!(e.kind, FaultKind::OutOfBounds { addr, .. } if addr == far),
            "kind: {:?}", e.kind
        );
        prop_assert_eq!(e.site.block, Some(block));
        prop_assert_eq!(e.site.thread, Some(thread));
        prop_assert_eq!(e.site.kernel.as_deref(), Some("san_grid_copy"));
    }

    /// A random misaligned address is always classified Misaligned (never
    /// OutOfBounds or a wrong value), with the mutated address reported.
    #[test]
    fn random_misaligned_injection_is_classified_and_located(
        block in 0u32..4,
        thread in 0u32..64,
        word in 0u64..100_000,
        skew in 1u64..4,
    ) {
        let k = grid_copy_kernel();
        let mut gmem = GlobalMemory::new(1 << 20);
        let n = 4 * 64;
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let d = gmem.alloc_f32(&data).expect("fits");
        let out = gmem.alloc_zeroed(n as u64 * 4).expect("fits");
        let bad = word * 4 + skew; // guaranteed addr % 4 != 0
        let plan = FaultPlan::at_thread(block, thread, Mutation::SetAddr(bad));
        let e = fault(run_grid_injected(&k, 4, 64, &[d.0 as u32, out.0 as u32], &mut gmem, &plan));
        prop_assert!(
            matches!(e.kind, FaultKind::Misaligned { addr, width: 4, .. } if addr == bad),
            "kind: {:?}", e.kind
        );
        prop_assert_eq!(e.site.block, Some(block));
        prop_assert_eq!(e.site.thread, Some(thread));
    }

    /// Initialize only the first `k` of 64 input slots: the first poisoned
    /// load is detected and attributed to thread `k` at the exact address.
    #[test]
    fn partial_initialization_poison_is_caught_at_the_boundary(k in 0usize..64) {
        let kern = copy_kernel();
        let mut gmem = GlobalMemory::new(1 << 20);
        let d = gmem.alloc(64 * 4).expect("fits");
        for i in 0..k {
            gmem.store_f32(d.0 + i as u64 * 4, i as f32).expect("in bounds");
        }
        let out = gmem.alloc_zeroed(64 * 4).expect("fits");
        let e = fault(run_grid(&kern, 1, 64, &[d.0 as u32, out.0 as u32], &mut gmem));
        prop_assert!(
            matches!(e.kind, FaultKind::UninitializedRead { addr, width: 4 } if addr == d.0 + k as u64 * 4),
            "kind: {:?}", e.kind
        );
        prop_assert_eq!(e.site.thread, Some(k as u32));
        prop_assert_eq!(e.site.block, Some(0));
    }
}
