//! Differential tests for the parallel block executor: for random kernels,
//! geometries and thread counts, parallel execution must be **bit-identical**
//! to sequential execution — final device state (data, shadow, ECC),
//! merged statistics, and, when the launch faults, the *same* typed error
//! with the *same* fault coordinates.
//!
//! The kernels generated here are block-independent (no block reads another
//! block's writes), which is the contract CUDA grids satisfy by construction
//! and the one the commit/merge scheme guarantees determinism for (see
//! DESIGN.md §15).

use gpu_sim::exec::functional::{run_grid_full, FunctionalRun};
use gpu_sim::fault::{DeviceError, FaultKind, FaultPlan, Mutation};
use gpu_sim::ir::{AluOp, CmpOp, Kernel, KernelBuilder, MemSpace, Operand};
use gpu_sim::mem::GlobalMemory;
use proptest::prelude::*;

/// Thread counts every scenario is replayed under; index 0 is the
/// sequential reference.
const THREADS: [usize; 3] = [1, 2, 8];

/// A random affine kernel: `out[gti*stride + k] = in[gti]*scale + gti` for
/// `k < writes_per_thread` — strided, multi-word global traffic with every
/// written word owned by exactly one thread.
fn affine_kernel(stride: u32, writes_per_thread: u32) -> Kernel {
    let mut b = KernelBuilder::new("diff_affine");
    let inp = b.param();
    let out = b.param();
    let scale = b.param();
    let gti = b.global_thread_index();
    let iaddr = b.mad_u(gti.into(), Operand::ImmU(4), inp.into());
    let v = b.ld(MemSpace::Global, iaddr, 0, 1)[0];
    let scaled = b.fmul(v.into(), scale.into());
    let slot = b.alu(AluOp::IMul, gti.into(), Operand::ImmU(stride));
    for k in 0..writes_per_thread {
        let w = b.iadd(slot.into(), Operand::ImmU(k));
        let oaddr = b.mad_u(w.into(), Operand::ImmU(4), out.into());
        let tagged = b.fadd(scaled.into(), gti.into());
        b.st(MemSpace::Global, oaddr, 0, vec![tagged.into()]);
    }
    b.finish()
}

/// A divergent kernel: a data-dependent countdown loop (`(gti & mask) + 1`
/// trips) inside a parity branch, so warps diverge on both the branch and
/// the trip count; the per-thread iteration tally lands in `out[gti]`.
fn divergent_kernel(mask: u32) -> Kernel {
    let mut b = KernelBuilder::new("diff_divergent");
    let out = b.param();
    let gti = b.global_thread_index();
    let acc = b.mov(Operand::ImmU(0));
    let parity = b.alu(AluOp::IAnd, gti.into(), Operand::ImmU(1));
    let odd = b.setp(CmpOp::UEq, parity.into(), Operand::ImmU(1));
    let trips = b.alu(AluOp::IAnd, gti.into(), Operand::ImmU(mask));
    let count = b.iadd(trips.into(), Operand::ImmU(1));
    b.if_else(
        odd,
        |b| {
            b.do_while(|b| {
                b.alu_into(acc, AluOp::IAdd, acc.into(), Operand::ImmU(3));
                b.alu_into(count, AluOp::ISub, count.into(), Operand::ImmU(1));
                b.setp(CmpOp::UNe, count.into(), Operand::ImmU(0))
            });
        },
        |b| {
            b.alu_into(acc, AluOp::IAdd, acc.into(), Operand::ImmU(7));
        },
    );
    let oaddr = b.mad_u(gti.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, oaddr, 0, vec![acc.into()]);
    b.finish()
}

/// Execute one launch scenario and capture everything observable: the run
/// result and the complete final device state.
#[allow(clippy::too_many_arguments)]
fn execute(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    in_words: u32,
    out_words: u32,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
    threads: usize,
) -> (Result<FunctionalRun, DeviceError>, GlobalMemory) {
    let mut gmem = GlobalMemory::new(16 << 20);
    let data: Vec<f32> = (0..in_words).map(|i| i as f32 * 0.5 - 7.0).collect();
    let inp = if in_words > 0 {
        gmem.alloc_f32(&data).expect("input fits").0
    } else {
        0
    };
    let out = gmem.alloc(u64::from(out_words) * 4).expect("output fits");
    let mut params = Vec::new();
    if in_words > 0 {
        params.push(inp as u32);
    }
    params.push(out.0 as u32);
    params.push(1.5f32.to_bits());
    params.truncate(kernel.n_params as usize);
    let r = run_grid_full(
        kernel, grid, block, &params, &mut gmem, plan, watchdog, threads,
    );
    (r, gmem)
}

/// Assert that every thread count reproduces the sequential outcome
/// bit-for-bit: same `Result` (stats or typed error with coordinates) and
/// same final device state.
fn assert_all_threads_identical(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    in_words: u32,
    out_words: u32,
    plan: Option<&FaultPlan>,
    watchdog: Option<u64>,
) -> Result<(), String> {
    let (ref_r, ref_m) = execute(
        kernel, grid, block, in_words, out_words, plan, watchdog, THREADS[0],
    );
    for &t in &THREADS[1..] {
        let (r, m) = execute(kernel, grid, block, in_words, out_words, plan, watchdog, t);
        prop_assert_eq!(
            &r,
            &ref_r,
            "run result diverged at {} threads (grid {} block {})",
            t,
            grid,
            block
        );
        prop_assert!(
            m == ref_m,
            "device state diverged at {t} threads (grid {grid} block {block})"
        );
    }
    Ok(())
}

fn grid_strategy() -> impl Strategy<Value = u32> {
    1u32..12
}

fn block_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![Just(32u32), Just(64), Just(128)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Healthy affine launches: memory, shadow, ECC and stats all match.
    #[test]
    fn affine_parallel_equals_sequential(
        grid in grid_strategy(),
        block in block_strategy(),
        stride in 1u32..3,
        writes in 1u32..4,
    ) {
        let k = affine_kernel(stride, writes);
        let n = grid * block;
        assert_all_threads_identical(&k, grid, block, n, n * stride + writes, None, None)?;
    }

    /// Healthy divergent launches (warp-divergent branch + data-dependent
    /// loop): identical across thread counts.
    #[test]
    fn divergent_parallel_equals_sequential(
        grid in grid_strategy(),
        block in block_strategy(),
        mask in prop_oneof![Just(3u32), Just(7), Just(15)],
    ) {
        let k = divergent_kernel(mask);
        let n = grid * block;
        assert_all_threads_identical(&k, grid, block, 0, n, None, None)?;
    }

    /// Injected permanent faults: the parallel executor reports the same
    /// typed error with the same kernel/block/thread/instruction coordinates
    /// the sequential one does, and leaves identical device state.
    #[test]
    fn injected_faults_have_identical_coordinates(
        grid in grid_strategy(),
        block in block_strategy(),
        fault_block in 0u32..12,
        fault_lane in 0u32..32,
    ) {
        let k = affine_kernel(1, 1);
        let n = grid * block;
        // Redirect one lane's accesses far out of bounds (16-byte aligned so
        // the class is OutOfBounds). Blocks past the grid simply never fault.
        let plan = FaultPlan::at_thread(
            fault_block % grid,
            fault_lane,
            Mutation::SetAddr(1 << 40),
        );
        assert_all_threads_identical(&k, grid, block, n, n + 1, Some(&plan), None)?;
    }

    /// Watchdog kills: the deterministic budget split must attribute the
    /// timeout to the same block/thread/instruction regardless of how many
    /// host threads raced — the satellite-2 bugfix under test. Budgets span
    /// instant kills through full completion.
    #[test]
    fn watchdog_kills_are_deterministic(
        grid in grid_strategy(),
        block in block_strategy(),
        budget in prop_oneof![1u64..64, 64u64..4096, Just(u64::MAX)],
        divergent in prop_oneof![Just(true), Just(false)],
    ) {
        let (k, in_words) = if divergent {
            (divergent_kernel(7), 0)
        } else {
            (affine_kernel(1, 2), grid * block)
        };
        let n = grid * block;
        assert_all_threads_identical(&k, grid, block, in_words, n + 2, None, Some(budget))?;
    }

    /// Faults and watchdog together: whichever fires first must be the same
    /// one, with the same coordinates, at every thread count.
    #[test]
    fn fault_and_watchdog_interplay_is_deterministic(
        grid in grid_strategy(),
        block in block_strategy(),
        fault_block in 0u32..12,
        budget in 1u64..2048,
    ) {
        let k = affine_kernel(1, 1);
        let n = grid * block;
        let plan = FaultPlan::at_thread(fault_block % grid, 5, Mutation::SetAddr(1 << 40));
        assert_all_threads_identical(&k, grid, block, n, n + 1, Some(&plan), Some(budget))?;
    }
}

/// The transient-fault (chaos) suite from PR 4 must see identical fault
/// attribution whether the underlying executor ran blocks sequentially or in
/// parallel: the watchdog-starved "hang" fate is the adversarial case, since
/// its budget of 1 kills the very first fetched item of the grid.
#[test]
fn chaos_hang_attribution_matches_sequential() {
    use gpu_sim::ir::lower::lower;
    use gpu_sim::transient::HANG_BUDGET;
    let k = divergent_kernel(7);
    let prog = lower(&k);
    let (grid, block) = (6u32, 64u32);
    let mut reference: Option<(Result<FunctionalRun, DeviceError>, GlobalMemory)> = None;
    for &t in &THREADS {
        let mut gmem = GlobalMemory::new(1 << 20);
        let out = gmem.alloc(u64::from(grid * block) * 4).expect("fits");
        let params = [out.0 as u32];
        let r = gpu_sim::exec::functional::run_lowered_full(
            &prog,
            grid,
            block,
            &params,
            &mut gmem,
            None,
            Some(HANG_BUDGET),
            t,
        );
        let err = r.clone().expect_err("a budget of 1 must kill the launch");
        assert!(
            matches!(err.kind, FaultKind::WatchdogTimeout { .. }),
            "got {:?}",
            err.kind
        );
        match &reference {
            None => reference = Some((r, gmem)),
            Some((rr, rm)) => {
                assert_eq!(&r, rr, "hang attribution diverged at {t} threads");
                assert!(
                    gmem == *rm,
                    "post-kill device state diverged at {t} threads"
                );
            }
        }
    }
}

/// The launch-validation bugfix rides the same entry points the difftests
/// use: an oversized grid is rejected with a typed error before any thread
/// pool spins up, at every thread count.
#[test]
fn oversized_grids_are_rejected_at_every_thread_count() {
    use gpu_sim::exec::functional::MAX_GRID;
    let k = affine_kernel(1, 1);
    for &t in &THREADS {
        let mut gmem = GlobalMemory::new(1 << 20);
        let err = run_grid_full(&k, MAX_GRID + 1, 64, &[], &mut gmem, None, None, t)
            .expect_err("65536 blocks must be rejected");
        assert!(
            matches!(err.kind, FaultKind::BadLaunch { .. }),
            "got {:?}",
            err.kind
        );
    }
}
