//! Property-based tests for the GPU simulator's core invariants.

use gpu_sim::coalesce::{coalesce_half_warp, AccessWidth};
use gpu_sim::ir::count::trip_count;
use gpu_sim::ir::passes::{fold_addressing, licm, unroll_innermost};
use gpu_sim::ir::regalloc::register_demand;
use gpu_sim::ir::{AluOp, Kernel, KernelBuilder, MemSpace, Operand};
use gpu_sim::mem::GlobalMemory;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceConfig, DriverModel};
use proptest::prelude::*;

fn width_strategy() -> impl Strategy<Value = AccessWidth> {
    prop_oneof![
        Just(AccessWidth::W4),
        Just(AccessWidth::W8),
        Just(AccessWidth::W16)
    ]
}

/// Aligned address streams for a half-warp: per-lane slot indices in a
/// window, scaled by the access width.
fn addr_strategy() -> impl Strategy<Value = (Vec<Option<u64>>, AccessWidth)> {
    (
        width_strategy(),
        proptest::collection::vec(proptest::option::of(0u64..256), 1..=16),
    )
        .prop_map(|(w, slots)| {
            let addrs = slots
                .into_iter()
                .map(|s| s.map(|s| s * w.bytes()))
                .collect();
            (addrs, w)
        })
}

proptest! {
    /// Every protocol's transactions cover every requested byte.
    #[test]
    fn coalescing_covers_all_requested_bytes((addrs, width) in addr_strategy(),
                                             driver in prop_oneof![Just(DriverModel::Cuda10), Just(DriverModel::Cuda11), Just(DriverModel::Cuda22)]) {
        let res = coalesce_half_warp(driver, &addrs, width);
        for a in addrs.iter().flatten() {
            for byte in *a..*a + width.bytes() {
                prop_assert!(
                    res.transactions.iter().any(|t| byte >= t.start && byte < t.start + t.bytes as u64),
                    "byte {byte} of access at {a} not covered under {driver}"
                );
            }
        }
    }

    /// Transactions are segment-aligned power-of-two sizes within limits.
    #[test]
    fn transactions_are_well_formed((addrs, width) in addr_strategy(),
                                    driver in prop_oneof![Just(DriverModel::Cuda10), Just(DriverModel::Cuda11), Just(DriverModel::Cuda22)]) {
        let res = coalesce_half_warp(driver, &addrs, width);
        for t in &res.transactions {
            prop_assert!(matches!(t.bytes, 32 | 64 | 128), "bad size {}", t.bytes);
            prop_assert_eq!(t.start % t.bytes as u64, 0, "misaligned transaction");
        }
        // Never more transactions than active lanes — except the coalesced
        // 128-bit fast path, which always issues its two 128-byte halves
        // regardless of how many lanes are active.
        let active = addrs.iter().flatten().count();
        prop_assert!(res.transactions.len() <= active.max(1) + 1);
    }

    /// The segmented protocol never issues more transactions than the strict
    /// one. (It MAY move more bytes: two scattered 8-byte accesses in one
    /// 128-byte segment become one 128-byte transaction where CC 1.0 issued
    /// two 32-byte ones — fewer commands, more bus traffic. That trade is
    /// real hardware behaviour, so only the count is asserted.)
    #[test]
    fn cuda22_never_exceeds_cuda10_transactions((addrs, width) in addr_strategy()) {
        let strict = coalesce_half_warp(DriverModel::Cuda10, &addrs, width);
        let seg = coalesce_half_warp(DriverModel::Cuda22, &addrs, width);
        prop_assert!(seg.count() <= strict.count());
    }

    /// Occupancy is monotone: more registers per thread never increases the
    /// number of resident warps.
    #[test]
    fn occupancy_monotone_in_registers(block in prop_oneof![Just(64u32), Just(128), Just(192), Just(256)],
                                       regs in 4u32..24) {
        let dev = DeviceConfig::g8800gtx();
        let a = occupancy(&dev, block, regs, block * 16);
        let b = occupancy(&dev, block, regs + 1, block * 16);
        prop_assert!(b.active_warps <= a.active_warps);
        prop_assert!(a.active_warps <= a.max_warps);
        prop_assert!(a.active_blocks >= 1);
    }

    /// Bottom-tested trip counts: at least 1, and consistent with the
    /// mathematical ceiling for non-degenerate bounds.
    #[test]
    fn trip_count_properties(start in 0u32..1000, len in 0u32..1000, step in 1u32..64) {
        let end = start + len;
        let t = trip_count(start, end, step).unwrap();
        prop_assert!(t >= 1);
        if len > 0 {
            prop_assert_eq!(t, len.div_ceil(step) as u64);
        }
    }
}

/// A randomized reduction kernel: `out[tid] = Σ_{j<trips} data[tid*trips + j] · scale`.
fn reduction_kernel(trips: u32) -> Kernel {
    let mut b = KernelBuilder::new("prop_reduce");
    let data = b.param();
    let out = b.param();
    let scale = b.param();
    let tid = b.special(gpu_sim::ir::SpecialReg::TidX);
    let s = b.mov(scale.into());
    let acc = b.mov(Operand::ImmF(0.0));
    let base = b.mad_u(tid.into(), Operand::ImmU(trips * 4), data.into());
    b.for_loop(Operand::ImmU(0), Operand::ImmU(trips), 1, |b, j| {
        let addr = b.mad_u(j.into(), Operand::ImmU(4), base.into());
        let v = b.ld(MemSpace::Global, addr, 0, 1)[0];
        let scaled = b.fmul(v.into(), s.into());
        b.alu_into(acc, AluOp::FAdd, acc.into(), scaled.into());
    });
    let oaddr = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, oaddr, 0, vec![acc.into()]);
    b.finish()
}

fn run_reduction(k: &Kernel, data: &[f32], threads: u32, scale: f32) -> Vec<f32> {
    let mut gmem = GlobalMemory::new(4 << 20);
    let d = gmem.alloc_f32(data).expect("fits");
    let out = gmem.alloc(threads as u64 * 4).expect("fits");
    gpu_sim::exec::functional::run_grid(
        k,
        1,
        threads,
        &[d.0 as u32, out.0 as u32, scale.to_bits()],
        &mut gmem,
    )
    .expect("launch is valid");
    gmem.read_f32(out, threads as usize)
        .expect("kernel wrote every output")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Semantics preservation: unrolling (any dividing factor), LICM and
    /// address folding leave the kernel's results bit-identical on random
    /// data.
    #[test]
    fn passes_preserve_semantics(data in proptest::collection::vec(-100.0f32..100.0, 64 * 8),
                                 factor in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
                                 scale in -4.0f32..4.0) {
        let trips = 8u32;
        let threads = 64u32;
        let k = reduction_kernel(trips);
        let reference = run_reduction(&k, &data, threads, scale);

        let folded = fold_addressing(&k);
        prop_assert_eq!(&run_reduction(&folded, &data, threads, scale), &reference);

        let hoisted = licm(&k);
        prop_assert_eq!(&run_reduction(&hoisted, &data, threads, scale), &reference);

        if factor > 1 {
            let unrolled = unroll_innermost(&k, factor);
            prop_assert_eq!(&run_reduction(&unrolled, &data, threads, scale), &reference);
            let both = unroll_innermost(&licm(&k), factor);
            prop_assert_eq!(&run_reduction(&both, &data, threads, scale), &reference);
        }
    }

    /// Register demand never panics and full unroll never increases it, for
    /// any trip count in range.
    #[test]
    fn unroll_register_effect_is_stable(trips in prop_oneof![Just(2u32), Just(4), Just(8), Just(16)]) {
        let k = reduction_kernel(trips);
        let rolled = register_demand(&k).max_live;
        let unrolled = register_demand(&unroll_innermost(&k, trips)).max_live;
        prop_assert!(unrolled <= rolled, "full unroll raised pressure {rolled} -> {unrolled}");
    }
}
