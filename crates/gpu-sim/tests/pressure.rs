//! Memory-pressure properties of the device allocator: alloc/free/reset
//! round-trips preserve the sanitizer's redzone and ECC-shadow invariants,
//! and exhaustion is always the typed, recoverable `OutOfMemory` — never a
//! panic, a wrap, or partial allocator state.

use gpu_sim::fault::FaultKind;
use gpu_sim::mem::{DevicePtr, GlobalMemory, MemoryBudget, ALLOC_ALIGN, REDZONE};
use proptest::prelude::*;

/// One step of a random allocator workload.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes (zeroed, so every byte is legitimately
    /// readable and ECC-verified).
    Alloc(u64),
    /// Free the most recent live allocation, if any.
    Free,
    /// Write a word into a random live allocation (keeps ECC honest).
    Store(u64),
    /// Rewind everything.
    Reset,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Two alloc arms: allocation-heavy mixes exercise the OOM boundary.
    prop_oneof![
        (0u64..2048).prop_map(Op::Alloc),
        (0u64..512).prop_map(Op::Alloc),
        Just(Op::Free),
        (0u64..4096).prop_map(Op::Store),
        Just(Op::Reset),
    ]
}

/// The model: sizes of the live allocation stack. `GlobalMemory` must agree
/// with `footprint` of this stack at every step.
fn apply(m: &mut GlobalMemory, live: &mut Vec<(DevicePtr, u64)>, op: &Op) {
    match op {
        Op::Alloc(bytes) => {
            let predicted = {
                let mut sizes: Vec<u64> = live.iter().map(|&(_, s)| s).collect();
                sizes.push(*bytes);
                GlobalMemory::footprint(&sizes)
            };
            match m.alloc_zeroed(*bytes) {
                Ok(p) => {
                    assert!(predicted <= m.capacity());
                    assert_eq!(m.allocated(), predicted, "footprint must stay exact");
                    assert_eq!(p.addr() % ALLOC_ALIGN, 0);
                    live.push((p, *bytes));
                }
                Err(e) => {
                    assert!(
                        matches!(e.kind, FaultKind::OutOfMemory { .. }),
                        "alloc failure must be typed OOM, got {:?}",
                        e.kind
                    );
                    assert!(predicted > m.capacity(), "spurious OOM: {predicted} B fits");
                }
            }
        }
        Op::Free => match live.pop() {
            Some((p, _)) => m.free(p).expect("LIFO free of the live top succeeds"),
            None => {
                let e = m.free(DevicePtr(0)).unwrap_err();
                assert!(matches!(e.kind, FaultKind::InvalidFree { .. }));
            }
        },
        Op::Store(pick) => {
            if let Some(&(p, size)) = live.get((*pick as usize) % live.len().max(1)) {
                if size >= 4 {
                    let slot = p.addr() + (pick % (size / 4)) * 4;
                    m.store_u32(slot, (*pick as u32).wrapping_mul(0x9E37))
                        .unwrap();
                }
            }
        }
        Op::Reset => {
            m.reset();
            live.clear();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/free/store/reset workloads: the allocator's byte
    /// accounting matches the `footprint` model exactly, every live byte
    /// verifies clean under the ECC scrub, every freed or never-allocated
    /// byte faults, and redzones keep faulting between live allocations.
    #[test]
    fn alloc_free_reset_roundtrips_preserve_sanitizer_invariants(
        capacity_kb in 1u64..32,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let capacity = capacity_kb * 1024;
        let mut m = GlobalMemory::new(capacity);
        let mut live: Vec<(DevicePtr, u64)> = Vec::new();
        let mut peak = 0u64;
        for op in &ops {
            apply(&mut m, &mut live, op);
            peak = peak.max(m.allocated());

            // Accounting invariants.
            let sizes: Vec<u64> = live.iter().map(|&(_, s)| s).collect();
            prop_assert_eq!(m.allocated(), GlobalMemory::footprint(&sizes));
            prop_assert_eq!(m.live_allocations(), live.len());
            prop_assert_eq!(m.free_bytes(), capacity - m.allocated());
            prop_assert_eq!(m.high_water(), peak);

            // ECC shadow: everything live verifies clean.
            prop_assert!(m.verify_all().is_ok());

            // Redzone invariant: the REDZONE bytes before each live
            // allocation fault as redzone accesses.
            for &(p, _) in &live {
                let e = m.load_u32(p.addr() - REDZONE).unwrap_err();
                prop_assert!(matches!(
                    e.kind,
                    FaultKind::OutOfBounds { redzone: true, .. }
                ));
            }
            // Tail invariant: the first unallocated aligned word faults.
            let probe = m.allocated().next_multiple_of(4);
            if probe + 4 <= capacity {
                let e = m.load_u32(probe).unwrap_err();
                prop_assert!(matches!(e.kind, FaultKind::OutOfBounds { .. }));
            }
        }
    }

    /// A `MemoryBudget` mirrors a sequence of reserve/release decisions
    /// exactly: reserved never exceeds capacity, rejected reservations are
    /// exactly the ones that would overflow, and the high-water mark is the
    /// running max of reserved.
    #[test]
    fn budget_accounting_matches_a_reference_model(
        capacity in 1u64..100_000,
        steps in proptest::collection::vec((any::<bool>(), 0u64..50_000), 1..50),
    ) {
        let mut b = MemoryBudget::new(capacity);
        let (mut reserved, mut hw) = (0u64, 0u64);
        for (is_reserve, bytes) in steps {
            if is_reserve {
                if reserved + bytes <= capacity {
                    b.reserve(bytes).unwrap();
                    reserved += bytes;
                    hw = hw.max(reserved);
                } else {
                    let e = b.reserve(bytes).unwrap_err();
                    prop_assert!(matches!(e.kind, FaultKind::OutOfMemory { .. }));
                }
            } else {
                b.release(bytes);
                reserved = reserved.saturating_sub(bytes);
            }
            prop_assert_eq!(b.reserved(), reserved);
            prop_assert_eq!(b.remaining(), capacity - reserved);
            prop_assert_eq!(b.high_water(), hw);
        }
    }
}
