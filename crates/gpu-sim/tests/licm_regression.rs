//! Regression harness for the historical LICM multi-hoist bug: an earlier
//! revision inserted hoisted statements in *reverse* order, so a hoisted
//! instruction that consumed another hoisted instruction's result read its
//! pre-loop (zero) value. The translation validator exists to make that
//! class of bug impossible to ship — this test reintroduces the bug by
//! hand and demands a counterexample fault site, not a proof.

use gpu_sim::analyze::verify::{verify_equiv, verify_pass, PassId, VerifyConfig, VerifyResult};
use gpu_sim::ir::passes::licm;
use gpu_sim::ir::{AluOp, Kernel, KernelBuilder, MemSpace, Operand, Stmt};

/// A kernel whose loop carries two *dependent* invariants: `a = p·p` and
/// `c = a + p`. Correct LICM hoists them in order; the buggy one reversed
/// them.
fn two_invariant_kernel() -> Kernel {
    let mut b = KernelBuilder::new("licm_two_invariants");
    let out = b.param();
    let p = b.param();
    let tid = b.global_thread_index();
    let acc = b.mov(Operand::ImmF(0.0));
    b.for_loop(Operand::ImmU(0), Operand::ImmU(4), 1, |b, _j| {
        let a = b.fmul(p.into(), p.into());
        let c = b.fadd(a.into(), p.into());
        b.alu_into(acc, AluOp::FAdd, acc.into(), c.into());
    });
    let oaddr = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, oaddr, 0, vec![acc.into()]);
    b.finish()
}

/// Reapply the historical bug: run the real (fixed) LICM, then swap the two
/// hoisted statements directly before the loop — exactly the reversed
/// insertion order the buggy pass produced.
fn buggy_licm(k: &Kernel) -> Kernel {
    let mut out = licm(k);
    let for_at = out
        .body
        .iter()
        .position(|s| matches!(s, Stmt::For { .. }))
        .expect("the loop survives LICM");
    assert!(for_at >= 2, "LICM must have hoisted both invariants");
    assert!(
        matches!(out.body[for_at - 1], Stmt::I(_)) && matches!(out.body[for_at - 2], Stmt::I(_)),
        "the two statements before the loop are the hoisted invariants"
    );
    out.body.swap(for_at - 1, for_at - 2);
    out
}

#[test]
fn correct_licm_is_proved_and_the_reversed_hoist_is_refuted() {
    let k = two_invariant_kernel();
    let cfg = VerifyConfig::new(2, 32, vec![0x20_0000, 1.5f32.to_bits()]);

    // The shipped pass proves.
    let good = verify_pass(&k, PassId::Licm, &cfg);
    assert!(good.is_proved(), "fixed LICM must verify: {good}");

    // The reintroduced bug is refuted with a concrete counterexample site.
    let bad = buggy_licm(&k);
    match verify_equiv(&k, &bad, &cfg) {
        VerifyResult::Mismatch { site, detail } => {
            assert_eq!(site.kernel.as_deref(), Some("licm_two_invariants"));
            assert_eq!(site.block, Some(0), "first divergence is in block 0");
            assert_eq!(site.thread, Some(0), "…on thread 0");
            assert!(
                site.instruction.is_some(),
                "the faulting store is pinpointed"
            );
            assert!(
                detail.contains("store"),
                "the counterexample explains the diverging store: {detail}"
            );
        }
        other => panic!("the reversed multi-hoist must be refuted, got: {other}"),
    }
}

#[test]
fn the_counterexample_renders_both_symbolic_values() {
    let k = two_invariant_kernel();
    let cfg = VerifyConfig::new(1, 32, vec![0x20_0000, 1.5f32.to_bits()]);
    let bad = buggy_licm(&k);
    let VerifyResult::Mismatch { detail, .. } = verify_equiv(&k, &bad, &cfg) else {
        panic!("the reversed multi-hoist must be refuted");
    };
    // The detail names the address and shows the two diverging terms so the
    // report is actionable without re-running anything.
    assert!(
        detail.contains("0x"),
        "counterexample shows the store address: {detail}"
    );
}
