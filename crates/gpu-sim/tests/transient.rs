//! Transient-fault acceptance tests: every injection class of
//! [`gpu_sim::transient::TransientFaultPlan`] must surface as its typed
//! [`FaultKind`], attributed to the launch, and — the core safety property —
//! a chaos launch must never return *silently wrong* data: either the run
//! errors with a transient fault, or its results are bit-identical to the
//! fault-free run.

use gpu_sim::exec::functional::{run_grid, run_grid_watchdog};
use gpu_sim::exec::timed::time_resident;
use gpu_sim::ir::{Kernel, KernelBuilder, MemSpace, Operand, SpecialReg};
use gpu_sim::mem::GlobalMemory;
use gpu_sim::transient::{run_grid_chaos, FaultRates, LaunchFault, TransientFaultPlan};
use gpu_sim::{DeviceConfig, DriverModel, FaultKind, TimingParams};

/// `out[tid] = in[tid]` over one block.
fn copy_kernel() -> Kernel {
    let mut b = KernelBuilder::new("chaos_copy");
    let input = b.param();
    let out = b.param();
    let tid = b.special(SpecialReg::TidX);
    let src = b.mad_u(tid.into(), Operand::ImmU(4), input.into());
    let v = b.ld(MemSpace::Global, src, 0, 1)[0];
    let dst = b.mad_u(tid.into(), Operand::ImmU(4), out.into());
    b.st(MemSpace::Global, dst, 0, vec![v.into()]);
    b.finish()
}

fn setup(threads: u32) -> (GlobalMemory, u32, u32) {
    let mut gmem = GlobalMemory::new(1 << 16);
    let data: Vec<f32> = (0..threads).map(|i| i as f32).collect();
    let d = gmem.alloc_f32(&data).expect("input fits");
    let out = gmem.alloc_zeroed(threads as u64 * 4).expect("output fits");
    (gmem, d.0 as u32, out.0 as u32)
}

#[test]
fn injected_launch_failure_is_typed_and_attributed() {
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    let mut plan = TransientFaultPlan::new(
        3,
        FaultRates {
            bit_flip: 0.0,
            launch_failure: 1.0,
            hang: 0.0,
        },
    );
    let e = run_grid_chaos(&k, 1, 32, &[d, out], &mut gmem, &mut plan, None)
        .expect_err("launch must transiently fail");
    assert!(
        matches!(e.kind, FaultKind::TransientLaunch { .. }),
        "kind: {:?}",
        e.kind
    );
    assert!(e.kind.is_transient());
    assert_eq!(e.site.kernel.as_deref(), Some("chaos_copy"));
    // The memory was never touched: a plain retry on the same gmem succeeds.
    plan = TransientFaultPlan::quiet();
    run_grid_chaos(&k, 1, 32, &[d, out], &mut gmem, &mut plan, None).expect("retry succeeds");
}

#[test]
fn injected_hang_is_killed_by_the_watchdog() {
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    let mut plan = TransientFaultPlan::new(
        5,
        FaultRates {
            bit_flip: 0.0,
            launch_failure: 0.0,
            hang: 1.0,
        },
    );
    // Generous caller watchdog: the injected hang must still starve the run.
    let e = run_grid_chaos(&k, 1, 32, &[d, out], &mut gmem, &mut plan, Some(1 << 20))
        .expect_err("hung launch must be killed");
    match e.kind {
        FaultKind::WatchdogTimeout { budget, executed } => {
            assert!(budget <= gpu_sim::transient::HANG_BUDGET);
            assert!(
                executed >= budget,
                "the kill fires only once the budget is exhausted"
            );
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
    assert!(e.kind.is_transient());
}

/// The safety property of ECC under random strikes: across many seeded
/// single-bit upsets, every chaos launch either (a) fails with a typed
/// transient fault, or (b) returns results bit-identical to the fault-free
/// run. A strike is never allowed to leak silently wrong data.
#[test]
fn bit_flips_never_produce_silently_wrong_results() {
    let k = copy_kernel();
    let expected: Vec<f32> = (0..32).map(|i| i as f32).collect();
    let mut detected = 0;
    let mut clean = 0;
    for seed in 0..200u64 {
        let (mut gmem, d, out) = setup(32);
        let mut plan = TransientFaultPlan::new(
            seed,
            FaultRates {
                bit_flip: 1.0,
                launch_failure: 0.0,
                hang: 0.0,
            },
        );
        match run_grid_chaos(&k, 1, 32, &[d, out], &mut gmem, &mut plan, None) {
            Ok(_) => {
                // Strike hit a redzone / was healed by a full overwrite:
                // results must be exactly right.
                let got = gmem
                    .read_f32(gpu_sim::mem::DevicePtr(out as u64), 32)
                    .expect("readable");
                assert_eq!(
                    got, expected,
                    "seed {seed}: surviving run must be bit-exact"
                );
                clean += 1;
            }
            Err(e) => {
                assert!(
                    matches!(
                        e.kind,
                        FaultKind::EccMismatch { .. } | FaultKind::UninitializedRead { .. }
                    ),
                    "seed {seed}: unexpected fault {:?}",
                    e.kind
                );
                detected += 1;
            }
        }
    }
    // Both outcomes must actually occur across 200 strikes — otherwise the
    // test is vacuous.
    assert!(detected > 0, "no strike was ever detected");
    assert!(clean > 0, "no strike ever landed harmlessly");
}

#[test]
fn ecc_detection_reports_the_struck_word() {
    // Deterministically corrupt a known input word (bypassing the plan) and
    // let the chaos wrapper's post-run scrub catch it.
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    assert!(gmem.corrupt_bit(d as u64 + 5 * 4, 2));
    let mut plan = TransientFaultPlan::quiet();
    let e = run_grid_chaos(&k, 1, 32, &[d, out], &mut gmem, &mut plan, None)
        .expect_err("the strike must be detected");
    match e.kind {
        FaultKind::EccMismatch {
            addr,
            expected,
            actual,
        } => {
            assert_eq!(addr, d as u64 + 5 * 4);
            assert_ne!(expected, actual);
        }
        other => panic!("expected EccMismatch, got {other:?}"),
    }
    assert!(e.kind.is_transient());
    assert_eq!(e.site.kernel.as_deref(), Some("chaos_copy"));
}

#[test]
fn functional_watchdog_kills_runaway_and_spares_healthy_runs() {
    let k = copy_kernel();
    let (mut gmem, d, out) = setup(32);
    // A one-block copy retires a handful of warp instructions; budget 1 is
    // starvation, a large budget is not.
    let e = run_grid_watchdog(&k, 1, 32, &[d, out], &mut gmem, 1)
        .expect_err("budget 1 must starve the launch");
    match e.kind {
        FaultKind::WatchdogTimeout { budget, executed } => {
            assert_eq!(budget, 1);
            assert!(executed >= 1);
        }
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
    assert!(e.site.block.is_some(), "the stuck block is attributed");

    let (mut gmem, d, out) = setup(32);
    let run = run_grid_watchdog(&k, 1, 32, &[d, out], &mut gmem, 1 << 20)
        .expect("healthy run under a generous budget");
    // The reference run with no watchdog retires exactly as many instructions.
    let (mut gmem2, d2, out2) = setup(32);
    let reference = run_grid(&k, 1, 32, &[d2, out2], &mut gmem2).expect("reference");
    assert_eq!(run.warp_instructions, reference.warp_instructions);
}

#[test]
fn timed_engine_watchdog_kills_runaway_and_spares_healthy_runs() {
    let k = copy_kernel();
    let dev = DeviceConfig::g8800gtx();
    let driver = DriverModel::Cuda22;

    let mut tp = TimingParams::for_driver(driver);
    tp.watchdog_instructions = Some(1);
    let (mut gmem, d, out) = setup(32);
    let e = time_resident(&k, &[0], 32, 1, &[d, out], &mut gmem, &dev, driver, &tp)
        .expect_err("budget 1 must starve the timed launch");
    match e.kind {
        FaultKind::WatchdogTimeout { budget, .. } => assert_eq!(budget, 1),
        other => panic!("expected WatchdogTimeout, got {other:?}"),
    }
    assert_eq!(e.site.kernel.as_deref(), Some("chaos_copy"));

    tp.watchdog_instructions = Some(1 << 20);
    let (mut gmem, d, out) = setup(32);
    time_resident(&k, &[0], 32, 1, &[d, out], &mut gmem, &dev, driver, &tp)
        .expect("healthy run under a generous budget");
}

#[test]
fn chaos_wrapper_with_quiet_plan_matches_plain_run() {
    let k = copy_kernel();
    let (mut gmem_a, da, oa) = setup(64);
    let (mut gmem_b, db, ob) = setup(64);
    let mut plan = TransientFaultPlan::quiet();
    let a = run_grid_chaos(&k, 2, 32, &[da, oa], &mut gmem_a, &mut plan, Some(1 << 20))
        .expect("quiet chaos run");
    let b = run_grid(&k, 2, 32, &[db, ob], &mut gmem_b).expect("plain run");
    assert_eq!(a.warp_instructions, b.warp_instructions);
    let va = gmem_a
        .read_f32(gpu_sim::mem::DevicePtr(oa as u64), 64)
        .expect("readable");
    let vb = gmem_b
        .read_f32(gpu_sim::mem::DevicePtr(ob as u64), 64)
        .expect("readable");
    assert_eq!(va, vb, "the chaos wrapper is bit-transparent when quiet");
}

#[test]
fn fault_classes_serialize_round_trip() {
    // FaultReport persistence (checkpoints, chaos logs) depends on the new
    // kinds surviving JSON.
    for kind in [
        FaultKind::EccMismatch {
            addr: 4096,
            expected: 0x5A,
            actual: 0x58,
        },
        FaultKind::WatchdogTimeout {
            budget: 64,
            executed: 64,
        },
        FaultKind::TransientLaunch {
            reason: "injected spurious launch failure".into(),
        },
        FaultKind::NonFiniteResult { index: 17 },
    ] {
        assert!(kind.is_transient());
        let json = serde_json::to_string(&kind).expect("serialize");
        let back: FaultKind = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, kind);
    }
}

#[test]
fn launch_fates_partition_the_unit_interval() {
    // With rates summing to 1, no launch is ever healthy.
    let mut p = TransientFaultPlan::new(
        11,
        FaultRates {
            bit_flip: 0.4,
            launch_failure: 0.3,
            hang: 0.3,
        },
    );
    assert!((0..500).all(|_| p.next_launch() != LaunchFault::None));
}
