//! Differential validation of the IR passes on *randomly generated* affine
//! kernels: every pass (and both compositions) must leave the functional
//! executor's stores bit-identical to the original kernel's, and the
//! symbolic equivalence checker (`analyze::verify`) must independently
//! *prove* the same rewrites — so the prover is exercised far off the
//! curated workspace kernels.

use gpu_sim::analyze::verify::{verify_pass, PassId, VerifyConfig};
use gpu_sim::ir::{AluOp, Kernel, KernelBuilder, MemSpace, Operand};
use gpu_sim::mem::GlobalMemory;
use proptest::prelude::*;

/// Structure of one random affine kernel: a grid-strided loop of `trips`
/// loads at an affine address, combined into two accumulators by a random
/// op sequence, with a hoistable loop-invariant product in the body.
#[derive(Debug, Clone)]
struct Recipe {
    trips: u32,
    stride_words: u32,
    offset_words: u32,
    ops: Vec<u8>,
}

fn build(r: &Recipe) -> Kernel {
    let mut b = KernelBuilder::new(format!(
        "rand_t{}_s{}_o{}_{:x?}",
        r.trips, r.stride_words, r.offset_words, r.ops
    ));
    let data = b.param();
    let out = b.param();
    let scale = b.param();
    let tid = b.global_thread_index();
    let acc = b.mov(Operand::ImmF(0.0));
    let iacc = b.mov(Operand::ImmU(1));
    let row = r.trips * r.stride_words * 4;
    let base = b.mad_u(tid.into(), Operand::ImmU(row), data.into());
    b.for_loop(Operand::ImmU(0), Operand::ImmU(r.trips), 1, |b, j| {
        // Loop-invariant: LICM fodder.
        let inv = b.fmul(scale.into(), scale.into());
        // Affine address: fold_addressing fodder.
        let addr = b.mad_u(j.into(), Operand::ImmU(r.stride_words * 4), base.into());
        let v = b.ld(MemSpace::Global, addr, r.offset_words * 4, 1)[0];
        for &op in &r.ops {
            match op % 5 {
                0 => b.alu_into(acc, AluOp::FAdd, acc.into(), v.into()),
                1 => b.alu_into(acc, AluOp::FMul, acc.into(), inv.into()),
                2 => b.fmad_into(acc, v.into(), inv.into(), acc.into()),
                3 => b.alu_into(iacc, AluOp::IAdd, iacc.into(), v.into()),
                _ => {
                    let rs = b.frsqrt(v.into());
                    b.alu_into(acc, AluOp::FAdd, acc.into(), rs.into());
                }
            };
        }
    });
    let oaddr = b.mad_u(tid.into(), Operand::ImmU(8), out.into());
    b.st(MemSpace::Global, oaddr, 0, vec![acc.into(), iacc.into()]);
    b.finish()
}

const GRID: u32 = 2;
const BLOCK: u32 = 32;

/// Run `k` on fresh memory seeded with `data` and return the raw bytes of
/// the output region.
fn run(k: &Kernel, data: &[f32], scale: f32) -> Vec<u8> {
    let threads = GRID * BLOCK;
    let mut gmem = GlobalMemory::new(4 << 20);
    let d = gmem.alloc_f32(data).expect("data fits");
    let out = gmem.alloc_zeroed(threads as u64 * 8).expect("out fits");
    let params = [d.addr() as u32, out.addr() as u32, scale.to_bits()];
    gpu_sim::exec::functional::run_grid(k, GRID, BLOCK, &params, &mut gmem)
        .expect("random affine kernels are well-formed");
    gmem.download(out, threads as u64 * 8)
        .expect("output region readable")
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (
        prop_oneof![Just(2u32), Just(4), Just(6)],
        1u32..=4,
        0u32..=2,
        proptest::collection::vec(0u8..=4, 1..=5),
    )
        .prop_map(|(trips, stride_words, offset_words, ops)| Recipe {
            trips,
            stride_words,
            offset_words,
            ops,
        })
}

/// Every pass and composition under test, for a loop of `trips` iterations.
fn passes_for(trips: u32, factor_seed: u32) -> Vec<PassId> {
    // Pick an unroll factor that divides the trip count.
    let divisors: Vec<u32> = (1..=trips).filter(|d| trips.is_multiple_of(*d)).collect();
    let f = divisors[factor_seed as usize % divisors.len()];
    vec![
        PassId::Fold,
        PassId::Licm,
        PassId::Unroll(f),
        PassId::LicmThenUnroll(f),
        PassId::UnrollThenLicm(f),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random affine kernels: functional stores stay bit-identical under
    /// every pass, and the symbolic checker proves every application.
    #[test]
    fn random_affine_kernels_survive_every_pass(
        recipe in recipe_strategy(),
        factor_seed in 0u32..16,
        scale in 0.25f32..4.0,
        seed in any::<u64>(),
    ) {
        let k = build(&recipe);
        // Deterministic pseudo-random positive data from the seed.
        let words = (GRID * BLOCK * recipe.trips * recipe.stride_words
            + recipe.offset_words + 4) as usize;
        let data: Vec<f32> = (0..words)
            .map(|i| {
                let h = (seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).wrapping_mul(0xff51_afd7_ed55_8ccd);
                0.1 + (h % 10_000) as f32 / 101.0
            })
            .collect();
        let reference = run(&k, &data, scale);

        // Symbolic side: fake but distinct parameter values.
        let vcfg = VerifyConfig::new(
            GRID,
            BLOCK,
            vec![0x1_0000, 0x20_0000, scale.to_bits()],
        );
        for pass in passes_for(recipe.trips, factor_seed) {
            let transformed = pass.apply(&k);
            prop_assert_eq!(
                &run(&transformed, &data, scale),
                &reference,
                "functional stores diverged under {}", pass.label()
            );
            let proof = verify_pass(&k, pass, &vcfg);
            prop_assert!(
                proof.is_proved(),
                "symbolic checker failed to prove {}: {}", pass.label(), proof
            );
        }
    }
}
