//! # gpu-sim — a software model of a G80-class CUDA device
//!
//! This crate is the hardware substitute for the reproduction of
//! *"CUDA Memory Optimizations for Large Data-Structures in the Gravit
//! Simulator"* (ICPP 2009). The paper's measurements were taken on a GeForce
//! 8800 GTX under CUDA driver/compiler revisions 1.0, 1.1 and 2.2 — hardware
//! and software that no longer exist. Everything the paper observes, however,
//! is a deterministic consequence of published machine rules:
//!
//! * the **half-warp coalescing protocol** of compute capability 1.0/1.1 and
//!   the segment-based protocol of 1.2+ ([`coalesce`]),
//! * the **shared-memory bank** structure ([`banks`]),
//! * the **occupancy arithmetic** of the CUDA occupancy calculator
//!   ([`occupancy`]),
//! * instruction-issue and memory-pipeline **timing** ([`timing`], [`exec`]),
//! * and the **register/instruction effects of compiler transformations**
//!   ([`ir::passes`], [`ir::regalloc`]).
//!
//! We implement those rules directly. Kernels are written in a small
//! PTX-flavoured IR ([`ir`]) that is executed *functionally* (actual loads,
//! stores and arithmetic on a simulated global memory — validated against
//! native CPU implementations) and *temporally* (a cycle-level engine that
//! schedules resident warps on one streaming multiprocessor and pushes every
//! memory transaction through a latency/throughput pipeline).
//!
//! ## Quick tour
//!
//! ```
//! use gpu_sim::DeviceConfig;
//! use gpu_sim::occupancy::occupancy;
//!
//! let dev = DeviceConfig::g8800gtx();
//! // The paper's tuned kernel: 16 registers/thread, 128-thread blocks.
//! let occ = occupancy(&dev, 128, 16, 2048);
//! assert_eq!(occ.active_warps, 16);
//! assert!((occ.fraction() - 2.0 / 3.0).abs() < 1e-6); // the 67% in the paper
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::panic))]

pub mod analyze;
pub mod banks;
pub mod coalesce;
pub mod device;
pub mod driver;
pub mod exec;
pub mod fault;
pub mod ir;
pub mod mem;
pub mod occupancy;
pub mod pool;
pub mod texcache;
pub mod timing;
pub mod transfer;
pub mod transient;

pub use analyze::{analyze_kernel, AnalysisConfig, AnalysisReport, Diagnostic, LintKind, Severity};
pub use device::DeviceConfig;
pub use driver::DriverModel;
pub use exec::launch::LaunchConfig;
pub use fault::{
    DeviceError, DeviceResult, FaultKind, FaultPlan, FaultSite, InjectedFault, Mutation,
};
pub use ir::{Kernel, KernelBuilder};
pub use mem::GlobalMemory;
pub use pool::{DevicePool, DeviceSpec, SimDevice};
pub use timing::TimingParams;
pub use transient::{
    run_grid_chaos, run_grid_chaos_lowered, FaultRates, LaunchFault, TransientFaultPlan,
};
