//! Transient-fault (soft-error) injection: seeded, deterministic chaos for
//! the simulated device.
//!
//! PR 1's [`crate::fault::FaultPlan`] injects *permanent* faults — address
//! corruption that deterministically recurs, the signature of a layout bug.
//! This module models the other failure family of long production runs:
//! **transient** faults that vanish on retry.
//!
//! * **bit flips** — a radiation-induced single-bit upset in device memory
//!   ([`GlobalMemory::corrupt_bit`]), detected by the memory's ECC-style
//!   checksums on readback as [`FaultKind::EccMismatch`];
//! * **transient launch failures** — the spurious
//!   `CUDA_ERROR_LAUNCH_FAILED` every long-lived CUDA service learns to
//!   retry, surfaced as [`FaultKind::TransientLaunch`];
//! * **kernel hangs** — a launch that stops making progress and is killed by
//!   the step-budget watchdog as [`FaultKind::WatchdogTimeout`].
//!
//! A [`TransientFaultPlan`] draws at most one event per kernel launch from a
//! `u64` seed, so a whole chaos campaign is reproducible bit-for-bit: the
//! k-th launch of a plan with seed `s` always sees the same fate, regardless
//! of what the application does in between.

use crate::exec::functional::{run_lowered_inner, FunctionalRun};
use crate::fault::{DeviceError, DeviceResult, FaultKind};
use crate::ir::lower::{lower, Program};
use crate::ir::Kernel;
use crate::mem::GlobalMemory;
use serde::{Deserialize, Serialize};
use simcore::SplitMix64;

/// Per-launch probabilities of each transient fault class. The classes are
/// mutually exclusive within one launch (one die roll decides), so the sum
/// must not exceed 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a launch is preceded by a single-bit upset somewhere in
    /// the live device memory.
    pub bit_flip: f64,
    /// Probability the launch itself transiently fails.
    pub launch_failure: f64,
    /// Probability the kernel hangs and the watchdog kills it.
    pub hang: f64,
}

impl FaultRates {
    /// No injected faults at all.
    pub const QUIET: FaultRates = FaultRates {
        bit_flip: 0.0,
        launch_failure: 0.0,
        hang: 0.0,
    };

    /// Validate: every rate in `[0, 1]` and the sum at most 1.
    pub fn validate(&self) -> Result<(), String> {
        let rs = [self.bit_flip, self.launch_failure, self.hang];
        if rs.iter().any(|r| !(0.0..=1.0).contains(r)) {
            return Err(format!("fault rates must lie in [0, 1]: {self:?}"));
        }
        if rs.iter().sum::<f64>() > 1.0 {
            return Err(format!("fault rates must sum to at most 1: {self:?}"));
        }
        Ok(())
    }
}

/// The fate of one kernel launch under a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaunchFault {
    /// Healthy launch.
    None,
    /// A single-bit upset strikes the device memory before the launch.
    BitFlip {
        /// Strike position as a fraction of the allocated bytes.
        addr_fraction: f64,
        /// Which bit of the struck byte flips (0–7).
        bit: u8,
    },
    /// The launch transiently fails before running.
    LaunchFailure,
    /// The kernel hangs; the watchdog kills it.
    Hang,
}

/// A seeded, deterministic schedule of transient faults. The k-th call to
/// [`next_launch`](TransientFaultPlan::next_launch) of any plan with the same
/// seed and rates returns the same [`LaunchFault`] — chaos campaigns replay
/// exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientFaultPlan {
    seed: u64,
    rates: FaultRates,
    launches: u64,
}

impl TransientFaultPlan {
    /// A plan injecting faults at the given rates, deterministically from
    /// `seed`.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        rates.validate().expect("invalid fault rates");
        TransientFaultPlan {
            seed,
            rates,
            launches: 0,
        }
    }

    /// A plan that never injects anything (the fault-free reference).
    pub fn quiet() -> Self {
        Self::new(0, FaultRates::QUIET)
    }

    /// The configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Launches drawn so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Draw the fate of the next launch. Deterministic in (seed, launch
    /// index) alone: the same launch of the same plan always draws the same
    /// fate, independent of prior draws.
    pub fn next_launch(&mut self) -> LaunchFault {
        let k = self.launches;
        self.launches += 1;
        self.fate_of(k)
    }

    /// The fate of launch `k` without advancing the plan.
    pub fn fate_of(&self, k: u64) -> LaunchFault {
        let mut rng = SplitMix64::new(self.seed ^ SplitMix64::mix(k).wrapping_add(k));
        let u = next_unit(&mut rng);
        let r = self.rates;
        if u < r.bit_flip {
            LaunchFault::BitFlip {
                addr_fraction: next_unit(&mut rng),
                bit: (rng_next(&mut rng) & 7) as u8,
            }
        } else if u < r.bit_flip + r.launch_failure {
            LaunchFault::LaunchFailure
        } else if u < r.bit_flip + r.launch_failure + r.hang {
            LaunchFault::Hang
        } else {
            LaunchFault::None
        }
    }
}

fn rng_next(rng: &mut SplitMix64) -> u64 {
    use simcore::Rng64;
    rng.next_u64()
}

fn next_unit(rng: &mut SplitMix64) -> f64 {
    use simcore::Rng64;
    rng.next_f64()
}

/// Warp-instruction budget a "hung" kernel is allowed before the watchdog
/// fires. A hang means *no forward progress*, so the stricken launch is
/// allowed exactly one warp instruction — enough that the kill comes from
/// the executor's real instruction counting (and can leave partial side
/// effects behind), never enough for any multi-instruction kernel to finish.
pub const HANG_BUDGET: u64 = 1;

/// Execute a grid functionally under a transient-fault plan and a watchdog.
///
/// One event is drawn for this launch:
///
/// * `LaunchFailure` → the launch never runs; [`FaultKind::TransientLaunch`];
/// * `Hang` → the kernel runs with a starved step budget and is genuinely
///   killed mid-flight by the watchdog ([`FaultKind::WatchdogTimeout`]),
///   leaving partial side effects in `gmem` exactly as a real kill would;
/// * `BitFlip` → a bit of the live memory is flipped, then the kernel runs
///   normally; after the run (and on every later download) the memory's ECC
///   checksums are verified, surfacing the strike as
///   [`FaultKind::EccMismatch`] unless a legitimate full overwrite healed
///   the word first (in which case the results are unaffected by
///   construction);
/// * `None` → a healthy, watchdog-supervised run.
///
/// On any error the caller owns recovery: discard `gmem`, re-upload from
/// host state, and retry — which is exactly what
/// `gravit_app::backend`'s `RecoveryPolicy` does.
pub fn run_grid_chaos(
    kernel: &Kernel,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    plan: &mut TransientFaultPlan,
    watchdog: Option<u64>,
) -> DeviceResult<FunctionalRun> {
    let prog = lower(kernel);
    run_grid_chaos_lowered(&prog, grid, block, params, gmem, plan, watchdog)
}

/// [`run_grid_chaos`] over an already-lowered [`Program`]. Lets callers that
/// launch the same kernel many times (gravit's frame loop, the chaos
/// harness) pay the decode cost once.
pub fn run_grid_chaos_lowered(
    prog: &Program,
    grid: u32,
    block: u32,
    params: &[u32],
    gmem: &mut GlobalMemory,
    plan: &mut TransientFaultPlan,
    watchdog: Option<u64>,
) -> DeviceResult<FunctionalRun> {
    let fate = plan.next_launch();
    let effective_watchdog = match fate {
        LaunchFault::LaunchFailure => {
            return Err(DeviceError::new(FaultKind::TransientLaunch {
                reason: "injected spurious launch failure".into(),
            })
            .with_kernel(&prog.name));
        }
        LaunchFault::Hang => Some(HANG_BUDGET.min(watchdog.unwrap_or(HANG_BUDGET))),
        LaunchFault::BitFlip { addr_fraction, bit } => {
            let span = gmem.allocated().max(1);
            let addr = ((addr_fraction * span as f64) as u64).min(span - 1);
            gmem.corrupt_bit(addr, bit);
            watchdog
        }
        LaunchFault::None => watchdog,
    };
    let run = run_lowered_inner(prog, grid, block, params, gmem, None, effective_watchdog)?;
    // Scrub: any undetected strike in the working set fails the launch here
    // rather than leaking corrupted physics to the host.
    gmem.verify_all().map_err(|e| e.with_kernel(&prog.name))?;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> TransientFaultPlan {
        TransientFaultPlan::new(
            7,
            FaultRates {
                bit_flip: 0.2,
                launch_failure: 0.1,
                hang: 0.1,
            },
        )
    }

    #[test]
    fn plans_replay_bit_for_bit() {
        let mut a = mixed();
        let mut b = mixed();
        let fates: Vec<LaunchFault> = (0..256).map(|_| a.next_launch()).collect();
        assert!((0..256).all(|i| fates[i] == b.next_launch()));
        // And fate_of agrees without advancing.
        let c = mixed();
        assert!((0..256u64).all(|k| c.fate_of(k) == fates[k as usize]));
        assert_eq!(c.launches(), 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut p = TransientFaultPlan::new(
            99,
            FaultRates {
                bit_flip: 0.25,
                launch_failure: 0.25,
                hang: 0.25,
            },
        );
        let n = 4000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            match p.next_launch() {
                LaunchFault::BitFlip { .. } => counts[0] += 1,
                LaunchFault::LaunchFailure => counts[1] += 1,
                LaunchFault::Hang => counts[2] += 1,
                LaunchFault::None => counts[3] += 1,
            }
        }
        for (i, c) in counts.iter().enumerate() {
            let frac = *c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.05, "class {i}: {frac}");
        }
    }

    #[test]
    fn quiet_plan_never_faults() {
        let mut p = TransientFaultPlan::quiet();
        assert!((0..1000).all(|_| p.next_launch() == LaunchFault::None));
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(FaultRates {
            bit_flip: -0.1,
            launch_failure: 0.0,
            hang: 0.0
        }
        .validate()
        .is_err());
        assert!(FaultRates {
            bit_flip: 0.6,
            launch_failure: 0.6,
            hang: 0.0
        }
        .validate()
        .is_err());
        assert!(FaultRates {
            bit_flip: 0.3,
            launch_failure: 0.3,
            hang: 0.4
        }
        .validate()
        .is_ok());
    }
}
