//! Global-memory coalescing: turning a half-warp's addresses into DRAM
//! transactions.
//!
//! This module is the mechanical heart of the reproduction: Figures 3, 5, 7
//! and 9 of the paper are *diagrams of transaction counts per half-warp* for
//! the four layouts, and Figures 10–12 are downstream consequences of those
//! counts. The three protocols here follow the CUDA programming guide's
//! description of compute-capability 1.0/1.1 and 1.2 coalescing, plus the
//! line-merge hypothesis for the CUDA 1.1 driver (see [`crate::driver`]).

use crate::driver::DriverModel;
use serde::{Deserialize, Serialize};

/// Size in bytes of one per-thread access. CC-1.x coalescing is defined for
/// 32-, 64- and 128-bit words only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessWidth {
    /// 32-bit (one `float`).
    W4 = 4,
    /// 64-bit (`float2`).
    W8 = 8,
    /// 128-bit (`float4`).
    W16 = 16,
}

impl AccessWidth {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        self as u64
    }

    /// Construct from a byte width.
    pub fn from_bytes(b: u32) -> Option<AccessWidth> {
        match b {
            4 => Some(AccessWidth::W4),
            8 => Some(AccessWidth::W8),
            16 => Some(AccessWidth::W16),
            _ => None,
        }
    }
}

/// One memory transaction issued to the DRAM subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Segment-aligned start address.
    pub start: u64,
    /// Transaction size in bytes (32, 64 or 128).
    pub bytes: u32,
}

/// The result of coalescing one half-warp memory instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoalesceResult {
    /// The transactions issued, in address order.
    pub transactions: Vec<Transaction>,
    /// Whether the hardware classified the access as coalesced
    /// (only meaningful for the CC-1.0/1.1 strict rule).
    pub coalesced: bool,
}

impl CoalesceResult {
    /// Total bytes moved across the bus by this access.
    pub fn total_bytes(&self) -> u64 {
        self.transactions.iter().map(|t| t.bytes as u64).sum()
    }

    /// Number of transactions.
    pub fn count(&self) -> usize {
        self.transactions.len()
    }

    /// Useful bytes (what the threads asked for) over bus bytes — the
    /// efficiency number the paper's layout discussion is really about.
    pub fn efficiency(&self, active_lanes: usize, width: AccessWidth) -> f64 {
        let useful = active_lanes as u64 * width.bytes();
        if self.total_bytes() == 0 {
            return 1.0;
        }
        useful as f64 / self.total_bytes() as f64
    }
}

/// Coalesce one half-warp access under the given driver model.
///
/// `addrs[k]` is the byte address accessed by lane `k`, or `None` if the lane
/// is inactive (predicated off). All active lanes access `width` bytes.
/// Addresses must be naturally aligned to `width` — CUDA gives undefined
/// behaviour otherwise, we panic.
pub fn coalesce_half_warp(
    driver: DriverModel,
    addrs: &[Option<u64>],
    width: AccessWidth,
) -> CoalesceResult {
    assert!(
        addrs.len() <= 16,
        "a half-warp has at most 16 lanes, got {}",
        addrs.len()
    );
    for a in addrs.iter().flatten() {
        assert!(
            a % width.bytes() == 0,
            "misaligned {}-byte access at {:#x}",
            width.bytes(),
            a
        );
    }
    if addrs.iter().all(|a| a.is_none()) {
        return CoalesceResult {
            transactions: Vec::new(),
            coalesced: true,
        };
    }
    match driver {
        DriverModel::Cuda10 => strict_cc10(addrs, width),
        DriverModel::Cuda11 => line_merge_cc11(addrs, width),
        DriverModel::Cuda22 => segmented_cc12(addrs, width),
    }
}

/// Memo key for one half-warp access shape: per-lane byte offsets from the
/// 256-byte-aligned floor of the lowest active address (`u16::MAX` marks an
/// inactive lane), plus the access width. 256 is the coarsest alignment any
/// CC-1.x rule inspects (strict CC-1.0 requires `base % (16 * width) == 0`,
/// i.e. 256 bytes for `float4`), so two half-warps with equal keys make
/// identical protocol decisions and produce identical transaction *sizes* —
/// only the absolute segment starts differ, which the timing model never
/// reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ShapeKey {
    width: AccessWidth,
    offsets: [u16; 16],
}

impl ShapeKey {
    /// Span beyond which shapes are not memoized (scatter patterns repeat
    /// rarely and would bloat the table).
    const MAX_SPAN: u64 = 4096;

    fn of(addrs: &[Option<u64>], width: AccessWidth) -> Option<ShapeKey> {
        let min = addrs.iter().flatten().min().copied()?;
        let base = min & !255;
        let mut offsets = [u16::MAX; 16];
        for (lane, a) in addrs.iter().enumerate() {
            if let Some(a) = *a {
                let off = a - base;
                if off >= Self::MAX_SPAN {
                    return None;
                }
                offsets[lane] = off as u16;
            }
        }
        Some(ShapeKey { width, offsets })
    }
}

/// Memoized coalescing for the timed engine's hot loop: transaction *sizes*
/// per half-warp access shape under one fixed driver model. Streaming
/// kernels replay a handful of shapes millions of times; this answers the
/// repeats from a hash lookup instead of re-running the protocol.
#[derive(Debug)]
pub struct CoalesceCache {
    driver: DriverModel,
    map: std::collections::HashMap<ShapeKey, Vec<u32>>,
    /// Scratch result for shapes that bypass the memo (huge spans).
    scratch: Vec<u32>,
}

impl CoalesceCache {
    /// An empty cache for one driver model.
    pub fn new(driver: DriverModel) -> Self {
        CoalesceCache {
            driver,
            map: std::collections::HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The byte sizes of the transactions [`coalesce_half_warp`] would issue
    /// for this access — memoized by shape.
    pub fn transaction_sizes(&mut self, addrs: &[Option<u64>], width: AccessWidth) -> &[u32] {
        let driver = self.driver;
        let sizes = |addrs: &[Option<u64>]| -> Vec<u32> {
            coalesce_half_warp(driver, addrs, width)
                .transactions
                .iter()
                .map(|t| t.bytes)
                .collect()
        };
        match ShapeKey::of(addrs, width) {
            Some(key) => self.map.entry(key).or_insert_with(|| sizes(addrs)),
            None => {
                self.scratch = sizes(addrs);
                &mut self.scratch
            }
        }
    }
}

/// Is the half-warp access coalescible under the strict CC-1.0/1.1 rule?
///
/// Requirements (CUDA programming guide §5.1.2.1, 1.x):
/// * the k-th active thread accesses the k-th word of a contiguous block,
///   i.e. `addr[k] == base + k * width` for *all* lanes (inactive lanes may
///   skip their slot — divergence does not break coalescing on CC 1.0 only if
///   the addresses of active threads still match their slots);
/// * the base address is aligned to `16 * width`.
pub fn is_strictly_coalesced(addrs: &[Option<u64>], width: AccessWidth) -> bool {
    // Find the base from the first active lane's slot.
    let Some((k0, &Some(a0))) = addrs.iter().enumerate().find(|(_, a)| a.is_some()) else {
        return true;
    };
    let w = width.bytes();
    let Some(base) = a0.checked_sub(k0 as u64 * w) else {
        return false;
    };
    if base % (16 * w) != 0 {
        return false;
    }
    addrs
        .iter()
        .enumerate()
        .all(|(k, a)| a.is_none_or(|a| a == base + k as u64 * w))
}

fn strict_cc10(addrs: &[Option<u64>], width: AccessWidth) -> CoalesceResult {
    let w = width.bytes();
    if is_strictly_coalesced(addrs, width) {
        // One 64B transaction for 32-bit words, one 128B for 64-bit words,
        // two 128B for 128-bit words (a half-warp of float4 spans 256B).
        let (k0, a0) = addrs
            .iter()
            .enumerate()
            .find_map(|(k, a)| a.map(|a| (k, a)))
            .expect("at least one active lane");
        let base = a0 - k0 as u64 * w;
        let transactions = match width {
            AccessWidth::W4 => vec![Transaction {
                start: base,
                bytes: 64,
            }],
            AccessWidth::W8 => vec![Transaction {
                start: base,
                bytes: 128,
            }],
            AccessWidth::W16 => vec![
                Transaction {
                    start: base,
                    bytes: 128,
                },
                Transaction {
                    start: base + 128,
                    bytes: 128,
                },
            ],
        };
        CoalesceResult {
            transactions,
            coalesced: true,
        }
    } else {
        // Decay: one transaction per active thread. The minimum transaction
        // granularity is 32 bytes.
        let tb = (w as u32).max(32);
        let mut transactions: Vec<Transaction> = addrs
            .iter()
            .flatten()
            .map(|&a| Transaction {
                start: a - a % tb as u64,
                bytes: tb,
            })
            .collect();
        transactions.sort_by_key(|t| t.start);
        CoalesceResult {
            transactions,
            coalesced: false,
        }
    }
}

/// CUDA 1.1 model: the strict rule, but non-coalesced accesses are merged by
/// the driver per 128-byte line (our hypothesis for the paper's observation
/// that 1.1 "significantly changed how unoptimized accesses are handled").
fn line_merge_cc11(addrs: &[Option<u64>], width: AccessWidth) -> CoalesceResult {
    if is_strictly_coalesced(addrs, width) {
        return strict_cc10(addrs, width);
    }
    let mut lines: Vec<u64> = Vec::new();
    for &a in addrs.iter().flatten() {
        // An access may straddle a 128B line only if width > alignment; our
        // accesses are naturally aligned so a 4/8/16B access touches one line.
        let line = a / 128;
        if !lines.contains(&line) {
            lines.push(line);
        }
    }
    lines.sort_unstable();
    CoalesceResult {
        transactions: lines
            .iter()
            .map(|&l| Transaction {
                start: l * 128,
                bytes: 128,
            })
            .collect(),
        coalesced: false,
    }
}

/// CC-1.2 protocol (CUDA 2.2 toolchain): per half-warp, find the touched
/// segments and issue one transaction per segment, reducing the transaction
/// size when only half of a segment is used.
fn segmented_cc12(addrs: &[Option<u64>], width: AccessWidth) -> CoalesceResult {
    // Segment size: 32B for 1-byte, 64B for 2-byte, 128B for 4/8/16-byte
    // accesses. All our accesses are >= 4 bytes.
    let seg = 128u64;
    let mut remaining: Vec<u64> = addrs.iter().flatten().copied().collect();
    let mut transactions = Vec::new();
    while let Some(&lowest) = remaining.iter().min() {
        let seg_start = lowest - lowest % seg;
        let seg_end = seg_start + seg;
        // Service every lane whose access falls in this segment.
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        remaining.retain(|&a| {
            if a >= seg_start && a < seg_end {
                lo = lo.min(a);
                hi = hi.max(a + width.bytes());
                false
            } else {
                true
            }
        });
        // Reduce the transaction size while the used bytes fit in one half.
        let (mut start, mut bytes) = (seg_start, seg as u32);
        while bytes > 32 {
            let half = bytes / 2;
            if hi <= start + half as u64 {
                bytes = half;
            } else if lo >= start + half as u64 {
                start += half as u64;
                bytes = half;
            } else {
                break;
            }
        }
        transactions.push(Transaction { start, bytes });
    }
    transactions.sort_by_key(|t| t.start);
    let coalesced = transactions.len() <= 2;
    CoalesceResult {
        transactions,
        coalesced,
    }
}

/// Convenience: coalesce a full warp (32 lanes) as its two half-warps, which
/// is how CC-1.x hardware processes memory instructions.
pub fn coalesce_warp(
    driver: DriverModel,
    addrs: &[Option<u64>],
    width: AccessWidth,
) -> Vec<CoalesceResult> {
    addrs
        .chunks(16)
        .map(|half| coalesce_half_warp(driver, half, width))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(f: impl Fn(u64) -> u64) -> Vec<Option<u64>> {
        (0..16).map(|k| Some(f(k))).collect()
    }

    /// The memo must be invisible: for every driver, width and a gallery of
    /// shapes — contiguous, strided, scattered, sparse, and the same shapes
    /// translated by multiples of 256 bytes (which share a key) and by
    /// non-multiples (which do not) — the cached sizes equal a fresh
    /// protocol run.
    #[test]
    fn cache_is_equivalent_to_direct_coalescing() {
        let shapes: Vec<Vec<Option<u64>>> = vec![
            lanes(|k| 4 * k),
            lanes(|k| 28 * k),
            lanes(|k| 16 * k),
            lanes(|k| 4 * (15 - k)),
            (0..16)
                .map(|k| (k % 3 == 0).then_some(4 * k + 128))
                .collect(),
            lanes(|k| 512 * k), // span past MAX_SPAN: memo bypass path
        ];
        for driver in DriverModel::ALL {
            for width in [AccessWidth::W4, AccessWidth::W8, AccessWidth::W16] {
                let mut cache = CoalesceCache::new(driver);
                for shape in &shapes {
                    for delta in [0u64, 256, 4096, 260, 1028] {
                        let moved: Vec<Option<u64>> = shape
                            .iter()
                            .map(|a| a.map(|a| a * width.bytes() / 4 + delta * width.bytes() / 4))
                            .collect();
                        let direct: Vec<u32> = coalesce_half_warp(driver, &moved, width)
                            .transactions
                            .iter()
                            .map(|t| t.bytes)
                            .collect();
                        // Query twice: the second hit comes from the memo.
                        assert_eq!(cache.transaction_sizes(&moved, width), &direct[..]);
                        assert_eq!(
                            cache.transaction_sizes(&moved, width),
                            &direct[..],
                            "memoized result diverged for {driver:?} {width:?} +{delta}"
                        );
                    }
                }
            }
        }
    }

    // ---- Paper Figure 5: SoA — each field read is one coalesced transaction.
    #[test]
    fn soa_field_read_is_one_64b_transaction() {
        let addrs = lanes(|k| 4096 + 4 * k);
        let r = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
        assert!(r.coalesced);
        assert_eq!(
            r.transactions,
            vec![Transaction {
                start: 4096,
                bytes: 64
            }]
        );
        assert!((r.efficiency(16, AccessWidth::W4) - 1.0).abs() < 1e-12);
    }

    // ---- Paper Figure 3: AoS — 7 reads, each decaying to 16 transactions.
    #[test]
    fn aos_field_read_decays_to_16_transactions_on_cc10() {
        // 28-byte packed struct: field 0 at stride 28.
        let addrs = lanes(|k| 28 * k);
        let r = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
        assert!(!r.coalesced);
        assert_eq!(r.count(), 16);
        assert!(r.transactions.iter().all(|t| t.bytes == 32));
    }

    // ---- Paper Figure 7: AoaS — 128-bit reads at stride 32 are aligned but
    // not coalesced: 16 transactions per read.
    #[test]
    fn aoas_vec_read_is_aligned_but_uncoalesced() {
        let addrs = lanes(|k| 32 * k);
        let r = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W16);
        assert!(!r.coalesced);
        assert_eq!(r.count(), 16);
        assert!(r.transactions.iter().all(|t| t.bytes == 32));
    }

    // ---- Paper Figure 9: SoAoaS — float4 at stride 16 is two 128B
    // transactions per half-warp.
    #[test]
    fn soaoas_vec_read_is_two_128b_transactions() {
        let addrs = lanes(|k| 16 * k);
        let r = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W16);
        assert!(r.coalesced);
        assert_eq!(
            r.transactions,
            vec![
                Transaction {
                    start: 0,
                    bytes: 128
                },
                Transaction {
                    start: 128,
                    bytes: 128
                }
            ]
        );
        assert!((r.efficiency(16, AccessWidth::W16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn misaligned_base_breaks_coalescing() {
        // Consecutive but base not aligned to 64B.
        let addrs = lanes(|k| 4 + 4 * k);
        let r = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
        assert!(!r.coalesced);
        assert_eq!(r.count(), 16);
    }

    #[test]
    fn permuted_addresses_break_cc10_but_not_cc12() {
        // Threads access the right 64B block but in swapped order: CC 1.0
        // decays, CC 1.2 still issues one (reduced) transaction.
        let mut addrs = lanes(|k| 4 * k);
        addrs.swap(0, 1);
        let r10 = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
        assert!(!r10.coalesced);
        assert_eq!(r10.count(), 16);
        let r22 = coalesce_half_warp(DriverModel::Cuda22, &addrs, AccessWidth::W4);
        assert_eq!(r22.count(), 1);
        assert_eq!(r22.transactions[0].bytes, 64);
    }

    #[test]
    fn cc12_reduces_transaction_size() {
        // All 16 lanes read the same 4-byte word: one 32-byte transaction.
        let addrs = lanes(|_| 256);
        let r = coalesce_half_warp(DriverModel::Cuda22, &addrs, AccessWidth::W4);
        assert_eq!(
            r.transactions,
            vec![Transaction {
                start: 256,
                bytes: 32
            }]
        );
    }

    #[test]
    fn cc12_aos_touches_four_segments() {
        // Stride-28 field read spans 448 bytes => 4 segments of 128B.
        let addrs = lanes(|k| 28 * k);
        let r = coalesce_half_warp(DriverModel::Cuda22, &addrs, AccessWidth::W4);
        assert_eq!(r.count(), 4);
        assert!(r.total_bytes() <= 4 * 128);
    }

    #[test]
    fn cuda11_merges_lines_for_uncoalesced() {
        let addrs = lanes(|k| 28 * k);
        let r = coalesce_half_warp(DriverModel::Cuda11, &addrs, AccessWidth::W4);
        assert_eq!(
            r.count(),
            4,
            "16 lanes over 448B span 4 distinct 128B lines"
        );
        assert!(r.transactions.iter().all(|t| t.bytes == 128));
    }

    #[test]
    fn cuda11_keeps_coalesced_fast_path() {
        let addrs = lanes(|k| 4 * k);
        let r = coalesce_half_warp(DriverModel::Cuda11, &addrs, AccessWidth::W4);
        assert!(r.coalesced);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn inactive_lanes_do_not_break_coalescing() {
        let mut addrs = lanes(|k| 4 * k);
        addrs[3] = None;
        addrs[9] = None;
        let r = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
        assert!(r.coalesced);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn all_inactive_is_empty() {
        let addrs = vec![None; 16];
        let r = coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
        assert_eq!(r.count(), 0);
    }

    #[test]
    #[should_panic]
    fn misaligned_access_panics() {
        let addrs = vec![Some(2u64)];
        coalesce_half_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
    }

    #[test]
    fn warp_is_processed_as_two_half_warps() {
        let addrs: Vec<Option<u64>> = (0..32).map(|k| Some(4 * k)).collect();
        let rs = coalesce_warp(DriverModel::Cuda10, &addrs, AccessWidth::W4);
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| r.coalesced && r.count() == 1));
    }

    #[test]
    fn paper_transaction_counts_per_particle() {
        // The end-to-end counts the paper's Figs. 3/5/7/9 claim, per half-warp
        // per particle (7 floats):
        let count_for = |reads: Vec<(Vec<Option<u64>>, AccessWidth)>| -> usize {
            reads
                .into_iter()
                .map(|(a, w)| coalesce_half_warp(DriverModel::Cuda10, &a, w).count())
                .sum()
        };
        // AoS 28B packed: 7 scalar reads, stride 28.
        let aos: Vec<_> = (0..7)
            .map(|f| (lanes(|k| 28 * k + 4 * f), AccessWidth::W4))
            .collect();
        assert_eq!(count_for(aos), 7 * 16);
        // SoA: 7 scalar reads from 7 arrays.
        let soa: Vec<_> = (0..7)
            .map(|f| (lanes(|k| 100_000 * f + 4 * k), AccessWidth::W4))
            .collect();
        // 100_000 is not 64-byte aligned; align the array bases:
        let soa: Vec<_> = soa
            .into_iter()
            .enumerate()
            .map(|(f, _)| (lanes(move |k| 131_072 * f as u64 + 4 * k), AccessWidth::W4))
            .collect();
        assert_eq!(count_for(soa), 7);
        // AoaS: 2 float4 reads, stride 32.
        let aoas: Vec<_> = (0..2)
            .map(|h| (lanes(move |k| 32 * k + 16 * h), AccessWidth::W16))
            .collect();
        assert_eq!(count_for(aoas), 2 * 16);
        // SoAoaS: 2 float4 reads from 2 arrays, stride 16.
        let soaoas: Vec<_> = (0..2)
            .map(|h| (lanes(move |k| 131_072 * h + 16 * k), AccessWidth::W16))
            .collect();
        assert_eq!(count_for(soaoas), 4);
    }
}
